#include "common/table_printer.h"

#include <cstdio>

namespace odh {

void TablePrinter::Print(const std::string& title) const {
  if (!title.empty()) std::printf("\n== %s ==\n", title.c_str());
  std::vector<size_t> widths(headers_.size());
  for (size_t i = 0; i < headers_.size(); ++i) widths[i] = headers_[i].size();
  for (const auto& row : rows_) {
    for (size_t i = 0; i < row.size() && i < widths.size(); ++i) {
      if (row[i].size() > widths[i]) widths[i] = row[i].size();
    }
  }
  auto print_row = [&](const std::vector<std::string>& cells) {
    std::printf("|");
    for (size_t i = 0; i < widths.size(); ++i) {
      const std::string& c = i < cells.size() ? cells[i] : std::string();
      std::printf(" %-*s |", static_cast<int>(widths[i]), c.c_str());
    }
    std::printf("\n");
  };
  auto print_sep = [&]() {
    std::printf("+");
    for (size_t w : widths) {
      for (size_t i = 0; i < w + 2; ++i) std::printf("-");
      std::printf("+");
    }
    std::printf("\n");
  };
  print_sep();
  print_row(headers_);
  print_sep();
  for (const auto& row : rows_) print_row(row);
  print_sep();
  std::fflush(stdout);
}

std::string TablePrinter::FormatCount(double v) {
  char buf[32];
  if (v >= 1e9) {
    snprintf(buf, sizeof(buf), "%.2fG", v / 1e9);
  } else if (v >= 1e6) {
    snprintf(buf, sizeof(buf), "%.2fM", v / 1e6);
  } else if (v >= 1e3) {
    snprintf(buf, sizeof(buf), "%.1fK", v / 1e3);
  } else {
    snprintf(buf, sizeof(buf), "%.0f", v);
  }
  return buf;
}

std::string TablePrinter::FormatBytes(double bytes) {
  char buf[32];
  if (bytes >= 1024.0 * 1024 * 1024) {
    snprintf(buf, sizeof(buf), "%.2f GB", bytes / (1024.0 * 1024 * 1024));
  } else if (bytes >= 1024.0 * 1024) {
    snprintf(buf, sizeof(buf), "%.2f MB", bytes / (1024.0 * 1024));
  } else if (bytes >= 1024.0) {
    snprintf(buf, sizeof(buf), "%.1f KB", bytes / 1024.0);
  } else {
    snprintf(buf, sizeof(buf), "%.0f B", bytes);
  }
  return buf;
}

std::string TablePrinter::FormatPercent(double ratio) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%.1f%%", ratio * 100.0);
  return buf;
}

std::string TablePrinter::FormatDouble(double v, int precision) {
  char buf[48];
  snprintf(buf, sizeof(buf), "%.*f", precision, v);
  return buf;
}

}  // namespace odh
