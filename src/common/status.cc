#include "common/status.h"

namespace odh {

std::string_view StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kCorruption:
      return "Corruption";
    case StatusCode::kIoError:
      return "IoError";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kDataLoss:
      return "DataLoss";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeToString(code_));
  out += ": ";
  out += message_;
  return out;
}

}  // namespace odh
