#ifndef ODH_COMMON_THREAD_POOL_H_
#define ODH_COMMON_THREAD_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace odh::common {

/// A fixed-size work pool shared by the concurrent read path (parallel
/// ValueBlob decode) and any bench harness that wants task fan-out. Tasks
/// must not throw; error propagation is by Status captured into caller
/// state (the codebase is exception-free).
class ThreadPool {
 public:
  /// Spawns `num_threads` workers (clamped to >= 1).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  int num_threads() const { return static_cast<int>(threads_.size()); }

  /// Enqueues one task for any worker.
  void Submit(std::function<void()> fn);

  /// Runs fn(0) .. fn(n-1) across the workers and the calling thread,
  /// returning when every index has completed. Indices are claimed
  /// dynamically, so uneven task costs balance. The calling thread
  /// participates, so ParallelFor makes progress even when all workers are
  /// busy with other tasks. Must not be called from inside a pool task
  /// (the nested wait could consume every worker).
  void ParallelFor(int64_t n, const std::function<void(int64_t)>& fn);

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::function<void()>> queue_;
  bool stop_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace odh::common

#endif  // ODH_COMMON_THREAD_POOL_H_
