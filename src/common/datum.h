#ifndef ODH_COMMON_DATUM_H_
#define ODH_COMMON_DATUM_H_

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "common/types.h"

namespace odh {

/// Column data types understood by the relational and SQL layers.
/// kTimestamp is stored as microseconds since epoch (see types.h).
enum class DataType : uint8_t {
  kNull = 0,
  kBool,
  kInt64,
  kDouble,
  kString,
  kTimestamp,
};

std::string DataTypeName(DataType type);

/// A dynamically typed SQL value. NULL is represented by monostate.
class Datum {
 public:
  Datum() = default;  // NULL
  static Datum Null() { return Datum(); }
  static Datum Bool(bool v) { return Datum(Value(v)); }
  static Datum Int64(int64_t v) { return Datum(Value(v)); }
  static Datum Double(double v) { return Datum(Value(v)); }
  static Datum String(std::string v) { return Datum(Value(std::move(v))); }
  static Datum Time(Timestamp ts) {
    Datum d{Value(ts)};
    d.is_timestamp_ = true;
    return d;
  }

  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_int64() const {
    return std::holds_alternative<int64_t>(v_) && !is_timestamp_;
  }
  bool is_double() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_timestamp() const {
    return std::holds_alternative<int64_t>(v_) && is_timestamp_;
  }

  DataType type() const {
    if (is_null()) return DataType::kNull;
    if (is_bool()) return DataType::kBool;
    if (is_timestamp()) return DataType::kTimestamp;
    if (std::holds_alternative<int64_t>(v_)) return DataType::kInt64;
    if (is_double()) return DataType::kDouble;
    return DataType::kString;
  }

  bool bool_value() const { return std::get<bool>(v_); }
  int64_t int64_value() const { return std::get<int64_t>(v_); }
  double double_value() const { return std::get<double>(v_); }
  const std::string& string_value() const { return std::get<std::string>(v_); }
  Timestamp timestamp_value() const { return std::get<int64_t>(v_); }

  /// Numeric view: int64/double/timestamp/bool as double. Precondition:
  /// is_numeric().
  bool is_numeric() const {
    return is_bool() || std::holds_alternative<int64_t>(v_) || is_double();
  }
  double AsDouble() const;

  /// SQL three-valued comparison. Returns false via *null_result when either
  /// side is NULL; otherwise sets *out to <0/0/>0. Type-mismatched numeric
  /// comparisons are widened to double; string vs non-string compares are
  /// an error signalled by returning false with *null_result=false.
  bool Compare(const Datum& other, int* out, bool* null_result) const;

  /// Equality used by containers/tests: NULL == NULL here (unlike SQL).
  bool operator==(const Datum& other) const;

  std::string ToString() const;

 private:
  using Value = std::variant<std::monostate, bool, int64_t, double,
                             std::string>;
  explicit Datum(Value v) : v_(std::move(v)) {}

  Value v_;
  bool is_timestamp_ = false;
};

using Row = std::vector<Datum>;

}  // namespace odh

#endif  // ODH_COMMON_DATUM_H_
