#ifndef ODH_COMMON_BACKOFF_H_
#define ODH_COMMON_BACKOFF_H_

#include <algorithm>
#include <chrono>
#include <cstdint>

#include "common/random.h"

namespace odh::common {

/// A wall-clock budget for one operation, measured against the steady
/// clock. A default-constructed Deadline is infinite (never expires);
/// AfterMillis(ms) expires ms from now. Deadlines are values: pass them
/// down through nested I/O calls so one statement's budget covers every
/// read and write it performs.
class Deadline {
 public:
  /// Infinite: never expires.
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  /// Expires `ms` from now. ms <= 0 means "already expired" — useful for
  /// non-blocking probes. Use AfterMillisOrInfinite for the common
  /// "0 disables the deadline" options pattern.
  static Deadline AfterMillis(int64_t ms) {
    Deadline d;
    d.finite_ = true;
    d.at_ = Clock::now() + std::chrono::milliseconds(ms);
    return d;
  }

  /// The options convention: a non-positive configured timeout means "no
  /// deadline".
  static Deadline AfterMillisOrInfinite(int64_t ms) {
    return ms > 0 ? AfterMillis(ms) : Infinite();
  }

  bool infinite() const { return !finite_; }

  bool expired() const { return finite_ && Clock::now() >= at_; }

  /// Milliseconds left, clamped to >= 0; -1 when infinite (the poll(2)
  /// convention for "block forever").
  int64_t remaining_millis() const {
    if (!finite_) return -1;
    auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        at_ - Clock::now());
    return std::max<int64_t>(0, left.count());
  }

 private:
  using Clock = std::chrono::steady_clock;
  bool finite_ = false;
  Clock::time_point at_{};
};

/// Exponential backoff with full jitter, deterministically seeded: the
/// k-th delay is uniform in [0, min(max_ms, initial_ms * 2^k)]. Identical
/// seeds give identical delay sequences, so retry tests replay exactly.
/// Full jitter (vs. jittering around the midpoint) is what de-correlates
/// a thundering herd of clients reconnecting after a server blip.
class ExponentialBackoff {
 public:
  ExponentialBackoff(int64_t initial_ms, int64_t max_ms, uint64_t seed = 0)
      : initial_ms_(std::max<int64_t>(1, initial_ms)),
        max_ms_(std::max<int64_t>(1, max_ms)),
        ceiling_ms_(initial_ms_),
        rng_(seed) {}

  /// The delay to sleep before the next attempt; advances the schedule.
  int64_t NextDelayMillis() {
    int64_t cap = ceiling_ms_;
    // Double with saturation for the next call.
    ceiling_ms_ = ceiling_ms_ > max_ms_ / 2 ? max_ms_ : ceiling_ms_ * 2;
    if (cap > max_ms_) cap = max_ms_;
    return static_cast<int64_t>(
        rng_.Uniform(static_cast<uint64_t>(cap) + 1));
  }

  void Reset() { ceiling_ms_ = initial_ms_; }

  int attempts() const { return attempts_; }
  void RecordAttempt() { ++attempts_; }

 private:
  int64_t initial_ms_;
  int64_t max_ms_;
  int64_t ceiling_ms_;
  int attempts_ = 0;
  Random rng_;
};

}  // namespace odh::common

#endif  // ODH_COMMON_BACKOFF_H_
