#include "common/types.h"

#include <cstdio>
#include <ctime>

namespace odh {

std::string FormatTimestamp(Timestamp ts) {
  time_t secs = static_cast<time_t>(ts / kMicrosPerSecond);
  int64_t micros = ts % kMicrosPerSecond;
  if (micros < 0) {
    micros += kMicrosPerSecond;
    --secs;
  }
  struct tm tm_buf;
  gmtime_r(&secs, &tm_buf);
  char buf[64];
  size_t n = strftime(buf, sizeof(buf), "%Y-%m-%d %H:%M:%S", &tm_buf);
  std::string out(buf, n);
  if (micros != 0) {
    char frac[16];
    snprintf(frac, sizeof(frac), ".%06lld", static_cast<long long>(micros));
    out += frac;
  }
  return out;
}

bool ParseTimestamp(const std::string& text, Timestamp* out) {
  struct tm tm_buf = {};
  int year, month, day, hour, minute, second;
  if (sscanf(text.c_str(), "%d-%d-%d %d:%d:%d", &year, &month, &day, &hour,
             &minute, &second) != 6) {
    return false;
  }
  tm_buf.tm_year = year - 1900;
  tm_buf.tm_mon = month - 1;
  tm_buf.tm_mday = day;
  tm_buf.tm_hour = hour;
  tm_buf.tm_min = minute;
  tm_buf.tm_sec = second;
  time_t secs = timegm(&tm_buf);
  if (secs == static_cast<time_t>(-1)) return false;
  *out = static_cast<Timestamp>(secs) * kMicrosPerSecond;
  return true;
}

}  // namespace odh
