#include "common/metrics.h"

#include <algorithm>
#include <bit>
#include <utility>

namespace odh::common {

void Histogram::Observe(int64_t value) {
  if (value < 0) value = 0;
  // Bucket index = position of the highest set bit, clamped to the top
  // bucket (values <= 1 land in bucket 0).
  int bucket =
      value <= 1
          ? 0
          : std::min(kNumBuckets - 1,
                     64 - std::countl_zero(static_cast<uint64_t>(value - 1)));
  buckets_[static_cast<size_t>(bucket)].fetch_add(1,
                                                  std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
}

double Histogram::Quantile(double q) const {
  std::array<int64_t, kNumBuckets> counts;
  int64_t total = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    counts[static_cast<size_t>(b)] =
        buckets_[static_cast<size_t>(b)].load(std::memory_order_relaxed);
    total += counts[static_cast<size_t>(b)];
  }
  if (total == 0) return 0;
  q = std::clamp(q, 0.0, 1.0);
  const double target = q * static_cast<double>(total);
  double seen = 0;
  for (int b = 0; b < kNumBuckets; ++b) {
    const double in_bucket = static_cast<double>(counts[static_cast<size_t>(b)]);
    if (seen + in_bucket < target || in_bucket == 0) {
      seen += in_bucket;
      continue;
    }
    // Linear interpolation within (2^(b-1), 2^b].
    const double lo = b == 0 ? 0 : static_cast<double>(int64_t{1} << (b - 1));
    const double hi = static_cast<double>(int64_t{1} << b);
    const double frac = in_bucket > 0 ? (target - seen) / in_bucket : 0;
    return lo + frac * (hi - lo);
  }
  return static_cast<double>(int64_t{1} << (kNumBuckets - 1));
}

Counter* MetricsRegistry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = counters_[name];
  if (slot == nullptr) slot = std::make_unique<Counter>();
  return slot.get();
}

Histogram* MetricsRegistry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& slot = histograms_[name];
  if (slot == nullptr) slot = std::make_unique<Histogram>();
  return slot.get();
}

void MetricsRegistry::RegisterGauge(const std::string& name,
                                    std::function<double()> fn) {
  std::lock_guard<std::mutex> lock(mu_);
  gauges_[name] = std::move(fn);
}

std::vector<MetricSample> MetricsRegistry::Collect() const {
  std::vector<MetricSample> out;
  // Gauge callbacks sample other components and may take those components'
  // locks, while writers inside such components resolve instruments from
  // this registry. Copy the callbacks under mu_ but invoke them after
  // releasing it, so the registry lock never nests around a component lock.
  std::vector<std::pair<std::string, std::function<double()>>> gauges;
  {
    std::lock_guard<std::mutex> lock(mu_);
    out.reserve(counters_.size() + gauges_.size() + 5 * histograms_.size());
    for (const auto& [name, counter] : counters_) {
      out.push_back({name, "counter", static_cast<double>(counter->value())});
    }
    gauges.reserve(gauges_.size());
    for (const auto& [name, fn] : gauges_) {
      gauges.emplace_back(name, fn);
    }
    for (const auto& [name, hist] : histograms_) {
      out.push_back(
          {name + ".count", "histogram", static_cast<double>(hist->count())});
      out.push_back(
          {name + ".sum", "histogram", static_cast<double>(hist->sum())});
      out.push_back({name + ".p50", "histogram", hist->Quantile(0.50)});
      out.push_back({name + ".p95", "histogram", hist->Quantile(0.95)});
      out.push_back({name + ".p99", "histogram", hist->Quantile(0.99)});
    }
  }
  for (const auto& [name, fn] : gauges) {
    out.push_back({name, "gauge", fn()});
  }
  std::sort(out.begin(), out.end(),
            [](const MetricSample& a, const MetricSample& b) {
              return a.name < b.name;
            });
  return out;
}

}  // namespace odh::common
