#include "common/datum.h"

#include <cstdio>

namespace odh {

std::string DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOL";
    case DataType::kInt64:
      return "BIGINT";
    case DataType::kDouble:
      return "DOUBLE";
    case DataType::kString:
      return "VARCHAR";
    case DataType::kTimestamp:
      return "TIMESTAMP";
  }
  return "?";
}

double Datum::AsDouble() const {
  if (is_bool()) return bool_value() ? 1.0 : 0.0;
  if (std::holds_alternative<int64_t>(v_)) {
    return static_cast<double>(std::get<int64_t>(v_));
  }
  return double_value();
}

bool Datum::Compare(const Datum& other, int* out, bool* null_result) const {
  *null_result = false;
  if (is_null() || other.is_null()) {
    *null_result = true;
    return true;
  }
  if (is_string() != other.is_string()) return false;
  if (is_string()) {
    int c = string_value().compare(other.string_value());
    *out = c < 0 ? -1 : (c > 0 ? 1 : 0);
    return true;
  }
  // Fast path: both int64 (covers timestamps too).
  if (std::holds_alternative<int64_t>(v_) &&
      std::holds_alternative<int64_t>(other.v_)) {
    int64_t a = std::get<int64_t>(v_), b = std::get<int64_t>(other.v_);
    *out = a < b ? -1 : (a > b ? 1 : 0);
    return true;
  }
  double a = AsDouble(), b = other.AsDouble();
  *out = a < b ? -1 : (a > b ? 1 : 0);
  return true;
}

bool Datum::operator==(const Datum& other) const {
  if (is_null() && other.is_null()) return true;
  if (is_null() || other.is_null()) return false;
  int c;
  bool null_result;
  if (!Compare(other, &c, &null_result)) return false;
  return !null_result && c == 0;
}

std::string Datum::ToString() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return bool_value() ? "true" : "false";
    case DataType::kInt64:
      return std::to_string(int64_value());
    case DataType::kDouble: {
      char buf[32];
      snprintf(buf, sizeof(buf), "%.6g", double_value());
      return buf;
    }
    case DataType::kString:
      return string_value();
    case DataType::kTimestamp:
      return FormatTimestamp(timestamp_value());
  }
  return "?";
}

}  // namespace odh
