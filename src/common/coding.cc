#include "common/coding.h"

namespace odh {

void PutVarint32(std::string* dst, uint32_t v) {
  unsigned char buf[5];
  int i = 0;
  while (v >= 0x80) {
    buf[i++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), i);
}

void PutVarint64(std::string* dst, uint64_t v) {
  unsigned char buf[10];
  int i = 0;
  while (v >= 0x80) {
    buf[i++] = static_cast<unsigned char>(v | 0x80);
    v >>= 7;
  }
  buf[i++] = static_cast<unsigned char>(v);
  dst->append(reinterpret_cast<char*>(buf), i);
}

bool GetVarint32(Slice* input, uint32_t* value) {
  uint64_t v;
  if (!GetVarint64(input, &v) || v > UINT32_MAX) return false;
  *value = static_cast<uint32_t>(v);
  return true;
}

bool GetVarint64(Slice* input, uint64_t* value) {
  uint64_t result = 0;
  for (uint32_t shift = 0; shift <= 63 && !input->empty(); shift += 7) {
    unsigned char byte = static_cast<unsigned char>((*input)[0]);
    input->remove_prefix(1);
    if (byte & 0x80) {
      result |= (static_cast<uint64_t>(byte & 0x7f) << shift);
    } else {
      result |= (static_cast<uint64_t>(byte) << shift);
      *value = result;
      return true;
    }
  }
  return false;
}

void PutLengthPrefixed(std::string* dst, const Slice& value) {
  PutVarint32(dst, static_cast<uint32_t>(value.size()));
  dst->append(value.data(), value.size());
}

bool GetLengthPrefixed(Slice* input, Slice* result) {
  uint32_t len;
  if (!GetVarint32(input, &len) || input->size() < len) return false;
  *result = Slice(input->data(), len);
  input->remove_prefix(len);
  return true;
}

}  // namespace odh
