#include "common/stopwatch.h"

#include <sys/resource.h>

namespace odh {

double CpuMeter::Now() {
  struct rusage ru;
  getrusage(RUSAGE_SELF, &ru);
  auto to_seconds = [](const struct timeval& tv) {
    return static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec) * 1e-6;
  };
  return to_seconds(ru.ru_utime) + to_seconds(ru.ru_stime);
}

}  // namespace odh
