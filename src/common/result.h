#ifndef ODH_COMMON_RESULT_H_
#define ODH_COMMON_RESULT_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "common/status.h"

namespace odh {

/// Result<T> holds either a value of type T or a non-OK Status. It is the
/// value-returning counterpart of Status (the code base does not use
/// exceptions).
///
/// Usage:
///   Result<int> r = Parse(s);
///   if (!r.ok()) return r.status();
///   Use(r.value());
template <typename T>
class Result {
 public:
  /// Implicit construction from a value or from an error Status keeps call
  /// sites readable: `return 42;` / `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}        // NOLINT
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    if (status_.ok()) {
      // An OK status without a value is a programming error.
      status_ = Status::Internal("Result constructed from OK status");
    }
  }

  Result(const Result&) = default;
  Result& operator=(const Result&) = default;
  Result(Result&&) noexcept = default;
  Result& operator=(Result&&) noexcept = default;

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  /// Precondition: ok(). Aborts otherwise (never UB).
  const T& value() const& {
    CheckOk();
    return *value_;
  }
  T& value() & {
    CheckOk();
    return *value_;
  }
  T&& value() && {
    CheckOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  T value_or(T fallback) const {
    return ok() ? *value_ : std::move(fallback);
  }

 private:
  void CheckOk() const {
    if (!status_.ok()) std::abort();
  }

  Status status_;  // OK iff value_ is engaged.
  std::optional<T> value_;
};

}  // namespace odh

/// Assigns the value of a Result expression to `lhs`, or returns its error
/// Status from the enclosing function.
#define ODH_ASSIGN_OR_RETURN(lhs, expr)               \
  ODH_ASSIGN_OR_RETURN_IMPL_(                         \
      ODH_RESULT_CONCAT_(_odh_result, __LINE__), lhs, expr)
#define ODH_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)    \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()
#define ODH_RESULT_CONCAT_(a, b) ODH_RESULT_CONCAT_IMPL_(a, b)
#define ODH_RESULT_CONCAT_IMPL_(a, b) a##b

#endif  // ODH_COMMON_RESULT_H_
