// WAMS / PMU scenario (paper §4.1): a Wide Area Measurement System where
// thousands of Phasor Measurement Units sample AC waveform phasors at
// 25-50 Hz. Demonstrates the high-frequency RTS ingest path, real-time
// dirty reads of data still in the writer buffers, historical phasor
// retrieval, and lossy compression with an engineering error bound.
//
//   build/examples/wams_pmu [num_pmus]   (default 500)

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/odh.h"
#include "sql/session.h"

using namespace odh;        // NOLINT: example brevity.
using namespace odh::core;  // NOLINT

int main(int argc, char** argv) {
  const int64_t num_pmus = argc > 1 ? std::atoll(argv[1]) : 500;
  const double hz = 50;
  const int seconds = 20;
  std::printf("WAMS scenario: %lld PMUs at %.0f Hz for %d s "
              "(paper: 2000+ PMUs at 50 Hz)\n\n",
              static_cast<long long>(num_pmus), hz, seconds);

  // Phasors are smooth waveform envelopes: lossy linear compression with a
  // 0.01 engineering bound is appropriate.
  CompressionSpec compression;
  compression.max_error = 0.01;

  OdhOptions options;
  options.batch_size = 512;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType(
                    "pmu", {"v_mag", "v_angle", "i_mag", "i_angle"},
                    compression)
                 .value();
  const Timestamp interval = static_cast<Timestamp>(kMicrosPerSecond / hz);
  for (SourceId id = 1; id <= num_pmus; ++id) {
    ODH_CHECK_OK(odh.RegisterSource(id, type, interval, /*regular=*/true));
  }

  Stopwatch timer;
  const int64_t ticks = static_cast<int64_t>(hz) * seconds;
  for (int64_t tick = 0; tick < ticks; ++tick) {
    Timestamp ts = tick * interval;
    for (SourceId id = 1; id <= num_pmus; ++id) {
      double angle = 0.002 * static_cast<double>(tick) + 0.05 * id;
      OperationalRecord record{
          id, ts,
          {230.0 + 0.2 * std::sin(angle), angle,
           11.0 + 0.1 * std::sin(angle * 1.3), angle + 1.5708}};
      ODH_CHECK_OK(odh.Ingest(record));
    }
  }
  double ingest_seconds = timer.ElapsedSeconds();
  int64_t points = odh.writer()->stats().points_ingested;
  std::printf("Ingested %lld phasor records in %.2f s (%.2fM records/s; "
              "paper required 100K incoming points/s)\n",
              static_cast<long long>(points), ingest_seconds,
              points / ingest_seconds / 1e6);

  // Real-time monitoring: the latest samples are still in the writer
  // buffers; ODH's dirty-read isolation makes them queryable immediately.
  sql::Session session(odh.engine());
  auto live = session.Execute(
      "SELECT COUNT(*) FROM pmu_v WHERE ts > '1970-01-01 00:00:19'");
  ODH_CHECK_OK(live.status());
  std::printf("Live (partly unflushed) samples in the last second: %s\n",
              live->rows[0][0].ToString().c_str());

  ODH_CHECK_OK(odh.FlushAll());
  std::printf("RTS blobs: %lld, storage %.1f MB (%.1f bytes/record; raw "
              "record is 44 bytes)\n\n",
              static_cast<long long>(odh.writer()->stats().rts_blobs),
              odh.storage_bytes() / 1048576.0,
              static_cast<double>(odh.storage_bytes()) / points);

  // Post-event analysis: one PMU's voltage magnitude around a timestamp
  // (grid-disturbance forensics), via the tag-oriented read path.
  Stopwatch query_timer;
  auto history = session.Execute(
      "SELECT ts, v_mag FROM pmu_v WHERE id = ? AND "
      "ts BETWEEN '1970-01-01 00:00:05' AND '1970-01-01 00:00:10'",
      {Datum::Int64(42)});
  ODH_CHECK_OK(history.status());
  std::printf("PMU 42 voltage trace 05-10 s: %zu samples in %.1f ms\n",
              history->rows.size(), query_timer.ElapsedSeconds() * 1000);

  // Verify the lossy compression stayed within the engineering bound.
  auto cursor = odh.HistoricalQuery(type, 42, 0, kMaxTimestamp).value();
  OperationalRecord record;
  double max_error = 0;
  while (cursor->Next(&record).value()) {
    int64_t tick = record.ts / interval;
    double angle = 0.002 * static_cast<double>(tick) + 0.05 * 42;
    double expected = 230.0 + 0.2 * std::sin(angle);
    max_error = std::max(max_error, std::fabs(record.tags[0] - expected));
  }
  std::printf("Max deviation of stored v_mag from the waveform: %.4f "
              "(bound %.2f)\n",
              max_error, compression.max_error);
  ODH_CHECK(max_error <= compression.max_error + 1e-9);
  return 0;
}
