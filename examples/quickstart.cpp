// Quickstart: the paper's running example end-to-end.
//
// Creates an ODH instance, defines the environment-monitoring schema type
// (timestamp, id, temperature, wind), registers sensors, ingests a few
// minutes of readings through the writer API, and runs the paper's §3
// example SQL — a fusion query joining the operational virtual table with
// a plain relational sensor_info table.
//
//   build/examples/quickstart

#include <cstdio>

#include "common/logging.h"
#include "core/odh.h"
#include "sql/session.h"

using odh::Datum;
using odh::kMicrosPerSecond;
using odh::core::OdhSystem;
using odh::core::OperationalRecord;

namespace {

void PrintResult(const odh::sql::QueryResult& result) {
  for (const std::string& col : result.columns) std::printf("%-22s", col.c_str());
  std::printf("\n");
  for (const auto& row : result.rows) {
    for (const Datum& value : row) std::printf("%-22s", value.ToString().c_str());
    std::printf("\n");
  }
  std::printf("(%zu rows)\n\n", result.rows.size());
}

}  // namespace

int main() {
  OdhSystem odh;
  // All SQL goes through a Session — per-connection state with prepared
  // statements and streaming results (the engine itself only hosts the
  // catalog and shared locks).
  odh::sql::Session session(odh.engine());

  // 1. Define the schema type: every environment sensor produces
  // (timestamp, id, temperature, wind). ODH exposes it as the virtual
  // table environ_data_v(id, ts, temperature, wind).
  int type = odh.DefineSchemaType("environ_data", {"temperature", "wind"})
                 .value();

  // 2. Register data sources: four 1 Hz sensors.
  for (odh::SourceId id = 1; id <= 4; ++id) {
    ODH_CHECK_OK(odh.RegisterSource(id, type, kMicrosPerSecond,
                                    /*regular=*/true));
  }

  // 3. Relational data lives in the same database (fusion!).
  ODH_CHECK_OK(session
                   .Execute("CREATE TABLE sensor_info "
                            "(id BIGINT, area VARCHAR)")
                   .status());
  // Parameterized INSERT: `?` placeholders bind positionally.
  ODH_CHECK_OK(session
                   .Execute("INSERT INTO sensor_info VALUES "
                            "(?,?), (?,?), (?,?), (?,?)",
                            {Datum::Int64(1), Datum::String("S1"),
                             Datum::Int64(2), Datum::String("S1"),
                             Datum::Int64(3), Datum::String("S2"),
                             Datum::Int64(4), Datum::String("S2")})
                   .status());

  // 4. Ingest five minutes of readings through the writer API.
  for (int second = 0; second < 300; ++second) {
    for (odh::SourceId id = 1; id <= 4; ++id) {
      OperationalRecord record;
      record.id = id;
      record.ts = second * kMicrosPerSecond;
      record.tags = {20.0 + id + 0.01 * second, 3.0 * id};
      ODH_CHECK_OK(odh.Ingest(record));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());
  std::printf("Ingested %lld points; storage: %.1f KB\n\n",
              static_cast<long long>(odh.writer()->stats().points_ingested),
              odh.storage_bytes() / 1024.0);

  // 5. The paper's fusion query: operational + relational in one SQL.
  // Prepared once, executed with bound parameters — re-execution skips
  // parse and bind entirely.
  auto fusion_stmt = session.Prepare(
      "SELECT ts, temperature, wind "
      "FROM environ_data_v a, sensor_info b "
      "WHERE a.id = b.id AND b.area = ? "
      "AND ts BETWEEN '1970-01-01 00:00:10' AND '1970-01-01 00:00:12'");
  ODH_CHECK_OK(fusion_stmt.status());
  auto fusion = session.ExecutePrepared(*fusion_stmt, {Datum::String("S1")});
  ODH_CHECK_OK(fusion.status());
  std::printf("Fusion query (area S1, 3-second window):\n");
  PrintResult(*fusion);

  // 6. Analytics over the virtual table.
  auto stats = session.Execute(
      "SELECT id, COUNT(*), AVG(temperature), MAX(wind) "
      "FROM environ_data_v GROUP BY id ORDER BY id");
  ODH_CHECK_OK(stats.status());
  std::printf("Per-sensor statistics:\n");
  PrintResult(*stats);

  // 6b. Streaming execution: rows come off the scan one at a time and the
  // result is never materialized — how a dashboard pages through history.
  auto stream = session.ExecuteStreaming(
      "SELECT ts, temperature FROM environ_data_v WHERE id = ?",
      {Datum::Int64(3)});
  ODH_CHECK_OK(stream.status());
  odh::Row row;
  int64_t streamed = 0;
  while ((*stream)->Next(&row).value()) ++streamed;
  std::printf("Streamed %lld rows for sensor 3 (path: %s)\n\n",
              static_cast<long long>(streamed),
              (*stream)->profile().path.c_str());

  // 7. The native (SQL-bypassing) read path.
  auto cursor = odh.HistoricalQuery(type, 2, 0, odh::kMaxTimestamp).value();
  OperationalRecord record;
  int count = 0;
  while (cursor->Next(&record).value()) ++count;
  std::printf("Native historical query for sensor 2: %d records\n", count);
  return 0;
}
