// odh_serverd: the historian as a network server.
//
// Boots an ODH instance with a demo environment-monitoring workload,
// starts the TCP front door (see src/net/server.h) and serves the
// historian protocol until stdin reaches EOF. Every connection gets its
// own SQL session: prepared statements, `?` parameters and streamed
// results, with admission control above --max-sessions concurrent
// clients. Server counters are queryable in-band:
//
//   SELECT * FROM odh_metrics   -- net.sessions_open, net.frames_sent, ...
//
//   build/examples/odh_serverd [--port N] [--max-sessions N] [--demo]
//
// --demo runs a loopback client conversation (query, prepare/execute,
// stream) against the freshly started server and exits; CI-friendly.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "common/logging.h"
#include "core/odh.h"
#include "net/client.h"
#include "net/server.h"
#include "sql/session.h"

using odh::Datum;
using odh::kMicrosPerSecond;
using odh::core::OdhSystem;
using odh::core::OperationalRecord;

namespace {

/// Four 1 Hz sensors, five minutes of readings, plus a relational
/// sensor_info table — the quickstart workload, served over TCP.
void LoadDemoData(OdhSystem* odh) {
  int type =
      odh->DefineSchemaType("environ_data", {"temperature", "wind"}).value();
  for (odh::SourceId id = 1; id <= 4; ++id) {
    ODH_CHECK_OK(odh->RegisterSource(id, type, kMicrosPerSecond,
                                     /*regular=*/true));
  }
  odh::sql::Session session(odh->engine());
  ODH_CHECK_OK(
      session.Execute("CREATE TABLE sensor_info (id BIGINT, area VARCHAR)")
          .status());
  ODH_CHECK_OK(session
                   .Execute("INSERT INTO sensor_info VALUES "
                            "(1,'S1'), (2,'S1'), (3,'S2'), (4,'S2')")
                   .status());
  for (int second = 0; second < 300; ++second) {
    for (odh::SourceId id = 1; id <= 4; ++id) {
      OperationalRecord record;
      record.id = id;
      record.ts = second * kMicrosPerSecond;
      record.tags = {20.0 + id + 0.01 * second, 3.0 * id};
      ODH_CHECK_OK(odh->Ingest(record));
    }
  }
  ODH_CHECK_OK(odh->FlushAll());
}

int RunDemoClient(int port) {
  auto client = odh::net::Client::Connect("127.0.0.1", port);
  ODH_CHECK_OK(client.status());
  std::printf("demo: connected, session id %llu\n",
              static_cast<unsigned long long>((*client)->session_id()));

  // One-shot query with a parameter.
  auto result = (*client)->Query(
      "SELECT COUNT(*), AVG(temperature) FROM environ_data_v WHERE id = ?",
      {Datum::Int64(2)});
  ODH_CHECK_OK(result.status());
  std::printf("demo: sensor 2 -> count=%s avg_temp=%s (path: %s)\n",
              result->rows[0][0].ToString().c_str(),
              result->rows[0][1].ToString().c_str(),
              result->done.path.c_str());

  // Prepare once, execute per sensor.
  auto stmt = (*client)->Prepare(
      "SELECT MAX(wind) FROM environ_data_v WHERE id = ?");
  ODH_CHECK_OK(stmt.status());
  for (int id = 1; id <= 4; ++id) {
    auto run = (*client)->Execute(*stmt, {Datum::Int64(id)});
    ODH_CHECK_OK(run.status());
    std::printf("demo: sensor %d max wind %s\n", id,
                run->rows[0][0].ToString().c_str());
  }
  ODH_CHECK_OK((*client)->CloseStatement(*stmt));

  // Streamed range scan: rows arrive in batches, client holds one batch.
  auto cursor = (*client)->QueryStream(
      "SELECT ts, temperature FROM environ_data_v WHERE id = 1");
  ODH_CHECK_OK(cursor.status());
  odh::Row row;
  int64_t n = 0;
  while (true) {
    auto more = (*cursor)->Next(&row);
    ODH_CHECK_OK(more.status());
    if (!more.value()) break;
    ++n;
  }
  std::printf("demo: streamed %lld rows for sensor 1\n",
              static_cast<long long>(n));

  // The server's own counters, over the same wire.
  auto metrics = (*client)->Query(
      "SELECT name, value FROM odh_metrics WHERE name = 'net.sessions_open'");
  ODH_CHECK_OK(metrics.status());
  std::printf("demo: net.sessions_open = %s\n",
              metrics->rows[0][1].ToString().c_str());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  odh::net::ServerOptions options;
  bool demo = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--port") == 0 && i + 1 < argc) {
      options.port = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--max-sessions") == 0 && i + 1 < argc) {
      options.max_sessions = std::atoi(argv[++i]);
    } else if (std::strcmp(argv[i], "--demo") == 0) {
      demo = true;
    } else {
      std::fprintf(stderr,
                   "usage: %s [--port N] [--max-sessions N] [--demo]\n",
                   argv[0]);
      return 2;
    }
  }

  OdhSystem odh;
  LoadDemoData(&odh);

  odh::net::HistorianServer server(odh.engine(), options, odh.metrics());
  auto port = server.Start();
  ODH_CHECK_OK(port.status());
  std::printf("odh_serverd listening on 127.0.0.1:%d (max %d sessions)\n",
              *port, options.max_sessions);

  // Shutdown is graceful in both modes: Drain stops accepting and lets
  // statements already streaming finish (up to 5s) before Stop joins the
  // workers and force-closes whatever is left.
  auto shut_down = [&server] {
    ODH_CHECK_OK(server.Drain(/*timeout_ms=*/5000));
    server.Stop();
    std::printf("shutdown: %lld sessions drained, %lld force-closed\n",
                static_cast<long long>(server.drained_sessions()),
                static_cast<long long>(server.sessions_force_closed()));
  };

  if (demo) {
    int rc = RunDemoClient(*port);
    shut_down();
    std::printf("odh_serverd demo complete\n");
    return rc;
  }

  std::printf("serving until stdin closes...\n");
  std::fflush(stdout);
  while (std::getchar() != EOF) {
  }
  shut_down();
  return 0;
}
