// Connected-vehicles scenario (paper §4.3): a telematics platform where a
// vehicle fleet reports CAN-bus signals every 10 seconds. Demonstrates the
// key selling point of §4.3 — existing SQL applications keep working after
// the scale-up migration to ODH: the same fleet-management queries run
// against the virtual table, joined with a relational fleet registry.
//
//   build/examples/connected_vehicles [num_vehicles]   (default 5000)

#include <cmath>
#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/odh.h"
#include "sql/session.h"

using namespace odh;        // NOLINT: example brevity.
using namespace odh::core;  // NOLINT

int main(int argc, char** argv) {
  const int64_t num_vehicles = argc > 1 ? std::atoll(argv[1]) : 5000;
  const int ticks = 30;  // Five minutes at 10-second intervals.
  std::printf("Connected vehicles: %lld vehicles, %d reports each "
              "(paper: up to 300K vehicles per server)\n\n",
              static_cast<long long>(num_vehicles), ticks);

  OdhSystem odh;
  int type = odh.DefineSchemaType(
                    "telemetry",
                    {"speed_kmh", "rpm", "fuel_pct", "engine_temp",
                     "battery_v", "odometer_km"})
                 .value();
  for (SourceId id = 1; id <= num_vehicles; ++id) {
    ODH_CHECK_OK(odh.RegisterSource(id, type, 10 * kMicrosPerSecond,
                                    /*regular=*/true));
  }

  // The fleet registry is ordinary relational data — unchanged by the
  // migration.
  sql::Session session(odh.engine());
  ODH_CHECK_OK(session
                   .Execute("CREATE TABLE fleet (vehicle_id BIGINT, "
                            "model VARCHAR, depot VARCHAR)")
                   .status());
  ODH_CHECK_OK(session
                   .Execute("CREATE INDEX fleet_by_id ON fleet "
                            "(vehicle_id)")
                   .status());
  // One prepared INSERT, re-executed per vehicle with bound parameters —
  // parse/bind happen once for the whole registry load.
  auto insert_stmt =
      session.Prepare("INSERT INTO fleet VALUES (?, ?, ?)").value();
  for (SourceId id = 1; id <= num_vehicles; ++id) {
    char model[8], depot[8];
    snprintf(model, sizeof(model), "Model%c", "ABC"[id % 3]);
    snprintf(depot, sizeof(depot), "Depot%lld", static_cast<long long>(id % 10));
    ODH_CHECK_OK(session
                     .ExecutePrepared(insert_stmt,
                                      {Datum::Int64(id), Datum::String(model),
                                       Datum::String(depot)})
                     .status());
  }

  Stopwatch timer;
  for (int tick = 0; tick < ticks; ++tick) {
    Timestamp ts = tick * 10 * kMicrosPerSecond;
    for (SourceId id = 1; id <= num_vehicles; ++id) {
      double phase = 0.1 * tick + 0.01 * id;
      OperationalRecord record{
          id, ts,
          {60 + 40 * std::sin(phase), 1800 + 900 * std::sin(phase * 1.1),
           90.0 - 0.05 * tick, 88 + 4 * std::sin(phase * 0.3),
           13.6 + 0.2 * std::sin(phase * 2), 120000.0 + 0.2 * tick}};
      ODH_CHECK_OK(odh.Ingest(record));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());
  int64_t points = odh.writer()->stats().points_ingested;
  std::printf("Ingested %lld telemetry records (%.2fM records/s), "
              "storage %.1f MB\n\n",
              static_cast<long long>(points),
              points / timer.ElapsedSeconds() / 1e6,
              odh.storage_bytes() / 1048576.0);

  // The pre-migration SQL application keeps working: depot dashboard.
  auto dashboard = session.Execute(
      "SELECT depot, COUNT(*) AS samples, AVG(speed_kmh) AS avg_speed, "
      "MAX(engine_temp) AS max_temp "
      "FROM telemetry_v t, fleet f "
      "WHERE f.vehicle_id = t.id AND ts > '1970-01-01 00:04:00' "
      "GROUP BY depot ORDER BY depot LIMIT 5");
  ODH_CHECK_OK(dashboard.status());
  std::printf("Depot dashboard (last minute), first 5 depots:\n");
  for (const auto& row : dashboard->rows) {
    std::printf("  %-8s samples=%-6s avg_speed=%-8s max_temp=%s\n",
                row[0].ToString().c_str(), row[1].ToString().c_str(),
                row[2].ToString().c_str(), row[3].ToString().c_str());
  }

  // Per-vehicle diagnostics: one vehicle's battery trace.
  auto trace = session.Execute(
      "SELECT ts, battery_v FROM telemetry_v WHERE id = ? ORDER BY ts "
      "LIMIT 5",
      {Datum::Int64(77)});
  ODH_CHECK_OK(trace.status());
  std::printf("\nVehicle 77 battery trace (first 5 samples):\n");
  for (const auto& row : trace->rows) {
    std::printf("  %s  %s V\n", row[0].ToString().c_str(),
                row[1].ToString().c_str());
  }

  // Fleet-wide anomaly scan on a single tag (tag-oriented decode).
  Stopwatch scan_timer;
  auto hot = session.Execute(
      "SELECT COUNT(*) FROM telemetry_v WHERE engine_temp > 91.5");
  ODH_CHECK_OK(hot.status());
  std::printf("\nOverheating samples fleet-wide: %s (single-tag scan of %lld "
              "records in %.0f ms)\n",
              hot->rows[0][0].ToString().c_str(),
              static_cast<long long>(points),
              scan_timer.ElapsedSeconds() * 1000);
  return 0;
}
