// Smart-meter AMI scenario (paper §4.2): a province-scale Advanced Meter
// Infrastructure where millions of low-frequency meters report every 15
// minutes. Demonstrates the Mixed Grouping (MG) ingest path, slice queries
// for real-time consumption reporting, the MG -> RTS reorganization that
// serves historical per-meter queries, and the storage saving vs a
// relational baseline.
//
//   build/examples/smart_meter_ami [num_meters]   (default 20000)

#include <cstdio>
#include <cstdlib>

#include "common/logging.h"
#include "common/stopwatch.h"
#include "core/odh.h"
#include "relational/database.h"
#include "sql/session.h"

using namespace odh;            // NOLINT: example brevity.
using namespace odh::core;      // NOLINT

int main(int argc, char** argv) {
  const int64_t num_meters = argc > 1 ? std::atoll(argv[1]) : 20000;
  const int readings = 8;  // Two hours at 15-minute intervals.
  std::printf("AMI scenario: %lld meters, %d readings each "
              "(paper: 35M meters)\n\n",
              static_cast<long long>(num_meters), readings);

  OdhOptions options;
  options.mg_group_size = 1024;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("meters", {"kwh", "voltage"}).value();
  for (SourceId id = 1; id <= num_meters; ++id) {
    ODH_CHECK_OK(odh.RegisterSource(id, type, 15 * kMicrosPerMinute,
                                    /*regular=*/true));
  }

  // Ingest: every 15 minutes all meters report (the national-standard
  // cadence the paper's Company B had to reach).
  Stopwatch ingest_timer;
  for (int reading = 0; reading < readings; ++reading) {
    Timestamp ts = reading * 15 * kMicrosPerMinute;
    for (SourceId id = 1; id <= num_meters; ++id) {
      double kwh = 0.2 * reading + 0.001 * static_cast<double>(id % 97);
      OperationalRecord record{id, ts, {kwh, 229.5 + (id % 7) * 0.1}};
      ODH_CHECK_OK(odh.Ingest(record));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());
  double seconds = ingest_timer.ElapsedSeconds();
  int64_t points = odh.writer()->stats().points_ingested;
  std::printf("Ingested %lld meter readings in %.2f s (%.0f records/s)\n",
              static_cast<long long>(points), seconds, points / seconds);
  std::printf("MG blobs written: %lld, storage: %.1f MB\n\n",
              static_cast<long long>(odh.writer()->stats().mg_blobs),
              odh.storage_bytes() / 1048576.0);

  // Slice query: one reading round across every meter (the paper's
  // "real-time power consumption reporting"; it took 150-200 s for 35M
  // meters on the customer's hardware).
  sql::Session session(odh.engine());
  Stopwatch slice_timer;
  auto slice = session.Execute(
      "SELECT COUNT(*), SUM(kwh) FROM meters_v "
      "WHERE ts = '1970-01-01 01:00:00'");
  ODH_CHECK_OK(slice.status());
  std::printf("Slice query over all meters at 01:00: count=%s total_kwh=%s "
              "(%.1f ms)\n",
              slice->rows[0][0].ToString().c_str(),
              slice->rows[0][1].ToString().c_str(),
              slice_timer.ElapsedSeconds() * 1000);

  // Reorganize: MG ingest form -> per-meter RTS series for history.
  auto report = odh.Reorganize(type, kMaxTimestamp).value();
  std::printf("Reorganized %lld points into %lld RTS blobs\n",
              static_cast<long long>(report.points_moved),
              static_cast<long long>(report.rts_blobs_written));

  // Historical query on one meter (billing-style read).
  const long long sample_meter = num_meters / 2 + 1;
  auto history = session.Execute(
      "SELECT ts, kwh FROM meters_v WHERE id = ? ORDER BY ts",
      {Datum::Int64(sample_meter)});
  ODH_CHECK_OK(history.status());
  std::printf("Meter %lld history: %zu readings, first=%s last=%s\n\n",
              sample_meter,
              history->rows.size(),
              history->rows.front()[1].ToString().c_str(),
              history->rows.back()[1].ToString().c_str());

  // Storage comparison vs a relational baseline with the paper's indexes.
  relational::Database rdb(relational::EngineProfile::Rdb());
  auto* table = rdb.CreateTable(
                       "meters", relational::Schema(
                                     {{"ts", DataType::kTimestamp},
                                      {"id", DataType::kInt64},
                                      {"kwh", DataType::kDouble},
                                      {"voltage", DataType::kDouble}}))
                    .value();
  ODH_CHECK_OK(table->AddIndex({"by_ts", {0}}));
  ODH_CHECK_OK(table->AddIndex({"by_id", {1}}));
  for (int reading = 0; reading < readings; ++reading) {
    Timestamp ts = reading * 15 * kMicrosPerMinute;
    for (SourceId id = 1; id <= num_meters; ++id) {
      double kwh = 0.2 * reading + 0.001 * static_cast<double>(id % 97);
      table->Insert({Datum::Time(ts), Datum::Int64(id), Datum::Double(kwh),
                     Datum::Double(229.5 + (id % 7) * 0.1)})
          .value();
    }
  }
  ODH_CHECK_OK(table->Commit());
  std::printf("Storage: ODH %.1f MB vs relational %.1f MB (%.1fx smaller)\n",
              odh.storage_bytes() / 1048576.0,
              rdb.TotalBytesStored() / 1048576.0,
              static_cast<double>(rdb.TotalBytesStored()) /
                  static_cast<double>(odh.storage_bytes()));
  return 0;
}
