// Observability smoke: ingests a small workload, then drives every
// observability surface — the odh_metrics / odh_queries / odh_storage
// system tables and EXPLAIN PROFILE — and exits non-zero if any of them
// comes back empty or inconsistent with the workload it just ran.
// CI runs this on release builds; it is also the shortest tour of how to
// monitor a live historian from plain SQL.

#include <cstdio>
#include <string>

#include "core/odh.h"
#include "sql/session.h"

using odh::Datum;
using odh::core::OdhOptions;
using odh::core::OdhSystem;
using odh::kMicrosPerSecond;
using odh::sql::QueryResult;
using odh::sql::Session;

namespace {

int g_failures = 0;

void Check(bool ok, const std::string& what) {
  std::printf("%s  %s\n", ok ? "[ok]" : "[FAIL]", what.c_str());
  if (!ok) ++g_failures;
}

/// Runs a statement, prints it with its row count, and fails the smoke if
/// it errors or returns no rows.
QueryResult MustQuery(Session* session, const std::string& sql) {
  auto r = session->Execute(sql);
  if (!r.ok()) {
    Check(false, sql + " -> " + r.status().ToString());
    return {};
  }
  Check(!r->rows.empty(), sql + " (" + std::to_string(r->rows.size()) +
                              " rows)");
  return std::move(*r);
}

double MetricValue(const QueryResult& metrics, const std::string& name) {
  for (const odh::Row& row : metrics.rows) {
    if (row[0] == Datum::String(name) && row[2].is_double()) {
      return row[2].double_value();
    }
  }
  return -1.0;
}

}  // namespace

int main() {
  OdhOptions options;
  options.batch_size = 100;
  OdhSystem odh(options);
  const int type = odh.DefineSchemaType("env", {"temp", "wind"}).value();
  constexpr int kSources = 4;
  constexpr int kPoints = 1000;
  for (int s = 1; s <= kSources; ++s) {
    if (!odh.RegisterSource(s, type, kMicrosPerSecond, true).ok()) return 2;
  }
  for (int i = 0; i < kPoints; ++i) {
    for (int s = 1; s <= kSources; ++s) {
      if (!odh.Ingest({s, i * kMicrosPerSecond, {20.0 + s, 0.5 * i}}).ok()) {
        return 2;
      }
    }
  }
  if (!odh.FlushAll().ok()) return 2;
  Session session(odh.engine());

  // A query with a known answer, so odh_queries has something to show.
  auto agg = MustQuery(
      &session, "SELECT COUNT(*), AVG(temp) FROM env_v WHERE id = 1");
  Check(!agg.rows.empty() && agg.rows[0][0] == Datum::Int64(kPoints),
        "aggregate answers COUNT(*) = " + std::to_string(kPoints));

  // odh_metrics: the writer gauge must account for every ingested point.
  auto metrics = MustQuery(&session, "SELECT * FROM odh_metrics");
  Check(MetricValue(metrics, "odh.writer.points_ingested") ==
            static_cast<double>(kSources * kPoints),
        "odh.writer.points_ingested == " +
            std::to_string(kSources * kPoints));
  Check(MetricValue(metrics, "odh.writer.flush_micros.count") > 0,
        "flush latency histogram has observations");

  // odh_storage: the RTS partition holds all points, compressed.
  auto storage = MustQuery(
      &session, "SELECT * FROM odh_storage WHERE container = 'rts'");
  Check(!storage.rows.empty() &&
            storage.rows[0][4] == Datum::Int64(kSources * kPoints),
        "odh_storage rts point_count == " +
            std::to_string(kSources * kPoints));
  Check(!storage.rows.empty() && storage.rows[0][7].is_double() &&
            storage.rows[0][7].double_value() > 1.0,
        "rts compression_ratio > 1");

  // odh_queries: the aggregate above is in the ring with its path label.
  auto queries = MustQuery(&session,
                           "SELECT statement, path FROM odh_queries");
  bool logged = false;
  for (const odh::Row& row : queries.rows) {
    if (row[0] == Datum::String(
                      "SELECT COUNT(*), AVG(temp) FROM env_v WHERE id = 1")) {
      logged = row[1] == Datum::String("summary-pushdown");
    }
  }
  Check(logged, "odh_queries logged the aggregate as summary-pushdown");

  // EXPLAIN PROFILE: metric rows, path first.
  auto profile = MustQuery(
      &session, "EXPLAIN PROFILE SELECT COUNT(*) FROM env_v WHERE id = 2");
  Check(!profile.rows.empty() && profile.rows[0][0] == Datum::String("path"),
        "EXPLAIN PROFILE leads with the executed path");

  // Session-level observability: preparing the same text twice hits the
  // statement cache, and the second execution skips parse/bind.
  auto p1 = session.Prepare("SELECT COUNT(*) FROM env_v WHERE id = ?");
  auto p2 = session.Prepare("SELECT COUNT(*) FROM env_v WHERE id = ?");
  Check(p1.ok() && p2.ok() && session.stats().prepare_cache_hits == 1,
        "prepared-statement cache reports a hit on re-prepare");
  auto prepared_run =
      session.ExecutePrepared(*p2, {Datum::Int64(3)});
  Check(prepared_run.ok() && prepared_run->profile.prepared,
        "prepared execution is flagged in its query profile");

  if (g_failures > 0) {
    std::printf("observability smoke: %d failure(s)\n", g_failures);
    return 1;
  }
  std::printf("observability smoke: all checks passed\n");
  return 0;
}
