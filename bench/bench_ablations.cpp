// Ablations for the design choices DESIGN.md calls out:
//
//  A. Zone maps (paper §6 future work: "adding proper indexing to reduce
//     BLOB scanning for queries on attribute values") — on/off, measuring
//     blob decodes and query throughput for tag-predicate queries.
//  B. Data-router mode — the paper's SQL-metadata router vs the proposed
//     in-memory lookup, measuring small historical queries (the LQ1
//     bottleneck the paper promises to fix "in a future version").
//  C. Batch size b — the data model's central parameter: ingest
//     throughput, storage size and historical-query latency vs b.

#include <cmath>

#include "bench/bench_util.h"
#include "common/logging.h"
#include "common/random.h"
#include "core/odh.h"

namespace odh::bench {
namespace {

using core::OdhOptions;
using core::OdhSystem;
using core::OperationalRecord;

constexpr int kSensors = 50;
constexpr int kSeconds = 10240;  // ~10 blobs of 1024 points per sensor.

/// Builds an ODH instance with `options` and one 1 Hz schema type fully
/// loaded with a deterministic smooth-ish workload.
std::unique_ptr<OdhSystem> Load(OdhOptions options) {
  auto odh = std::make_unique<OdhSystem>(options);
  int type = odh->DefineSchemaType("m", {"temp", "load", "rpm"}).value();
  for (SourceId id = 1; id <= kSensors; ++id) {
    ODH_CHECK_OK(odh->RegisterSource(id, type, kMicrosPerSecond, true));
  }
  for (int i = 0; i < kSeconds; ++i) {
    for (SourceId id = 1; id <= kSensors; ++id) {
      ODH_CHECK_OK(odh->Ingest(
          {id,
           i * kMicrosPerSecond,
           {20.0 + id + 0.05 * i, 50 + 10 * std::sin(0.1 * i),
            1500.0 + id}}));
    }
  }
  ODH_CHECK_OK(odh->FlushAll());
  return odh;
}

void AblationZoneMaps() {
  TablePrinter table({"Config", "Queries/s", "Blobs decoded", "Blobs pruned",
                      "Storage"});
  for (bool enabled : {true, false}) {
    OdhOptions options;
    options.batch_size = 1024;
    options.sql_metadata_router = false;
    options.enable_zone_maps = enabled;
    auto odh = Load(options);
    odh->reader()->ResetStats();
    // Selective tag-predicate queries: each sensor's temp ramps, so a
    // narrow temp window matches few blobs.
    Random rng(5);
    Stopwatch timer;
    const int kQueries = 200;
    for (int q = 0; q < kQueries; ++q) {
      SourceId id = 1 + rng.Uniform(kSensors);
      double lo = 20.0 + static_cast<double>(id) +
                  0.05 * rng.Uniform(kSeconds - 100);
      char sql[160];
      snprintf(sql, sizeof(sql),
               "SELECT COUNT(*) FROM m_v WHERE id = %lld AND "
               "temp BETWEEN %.2f AND %.2f",
               static_cast<long long>(id), lo, lo + 2.0);
      ODH_CHECK_OK(odh->engine()->Execute(sql).status());
    }
    double seconds = timer.ElapsedSeconds();
    // One atomic snapshot+reset: a load-then-reset pair can lose counts
    // from scans racing in between.
    const core::ReadStats stats = odh->reader()->SnapshotAndResetStats();
    table.AddRow({enabled ? "zone maps ON" : "zone maps OFF",
                  Fmt("%.0f", kQueries / seconds),
                  std::to_string(stats.blobs_decoded),
                  std::to_string(stats.blobs_pruned),
                  TablePrinter::FormatBytes(
                      static_cast<double>(odh->storage_bytes()))});
  }
  table.Print("Ablation A — zone maps (tag-predicate historical queries)");
}

void AblationRouterMode() {
  TablePrinter table({"Router", "Small queries/s", "Router lookups"});
  for (bool sql_mode : {true, false}) {
    OdhOptions options;
    options.batch_size = 1024;
    options.sql_metadata_router = sql_mode;
    auto odh = Load(options);
    Random rng(6);
    Stopwatch timer;
    const int kQueries = 300;
    for (int q = 0; q < kQueries; ++q) {
      SourceId id = 1 + rng.Uniform(kSensors);
      char sql[160];
      // Near-empty result (paper LQ1 regime): the query cost is parse +
      // plan + route + an index probe that finds nothing, which is where
      // the router's own SQL round trip shows up.
      snprintf(sql, sizeof(sql),
               "SELECT * FROM m_v WHERE id = %lld AND ts = "
               "'1980-01-01 00:00:00'",
               static_cast<long long>(id));
      ODH_CHECK_OK(odh->engine()->Execute(sql).status());
    }
    double seconds = timer.ElapsedSeconds();
    table.AddRow({sql_mode ? "SQL metadata (paper)" : "direct (proposed fix)",
                  Fmt("%.0f", kQueries / seconds),
                  std::to_string(odh->router()->lookups())});
  }
  table.Print("Ablation B — data-router mode (LQ1-style small queries)");
}

void AblationBatchSize() {
  TablePrinter table({"Batch size b", "Ingest rec/s", "Storage",
                      "Historical query ms"});
  for (int b : {16, 64, 256, 1024}) {
    OdhOptions options;
    options.batch_size = b;
    options.sql_metadata_router = false;
    Stopwatch ingest_timer;
    auto odh = Load(options);
    double ingest_seconds = ingest_timer.ElapsedSeconds();
    Stopwatch query_timer;
    const int kQueries = 100;
    Random rng(7);
    for (int q = 0; q < kQueries; ++q) {
      SourceId id = 1 + rng.Uniform(kSensors);
      auto cursor =
          odh->HistoricalQuery(0, id, 0, kMaxTimestamp).value();
      OperationalRecord record;
      while (cursor->Next(&record).value()) {
      }
    }
    table.AddRow({std::to_string(b),
                  TablePrinter::FormatCount(kSensors * kSeconds /
                                            ingest_seconds),
                  TablePrinter::FormatBytes(
                      static_cast<double>(odh->storage_bytes())),
                  Fmt("%.2f", query_timer.ElapsedSeconds() * 1000 /
                                  kQueries)});
  }
  table.Print("Ablation C — batch size b (the data model's parameter)");
}

int Run(int argc, char** argv) {
  PrintHeader("ODH design ablations",
              "DESIGN.md ablation index (zone maps, router mode, batch size)",
              "50 sensors x ~10k s at 1 Hz; deterministic workload.");
  AblationZoneMaps();
  AblationRouterMode();
  AblationBatchSize();
  std::printf(
      "\nExpected shapes: zone maps cut blob decodes by ~10x on selective\n"
      "tag predicates at zero result change and negligible storage cost;\n"
      "the direct router beats the paper's SQL-metadata router on tiny\n"
      "queries; larger b improves ingest throughput and storage while\n"
      "mildly increasing per-query decode work.\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
