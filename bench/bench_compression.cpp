// Reproduces the paper's §5.3 compression result: "applying linear
// compression on LD(1) with a maximum deviation of 0.1 from the original
// value ... led to ... an overall compression factor of more than 35
// compared to the sizes produced by the relational databases", and §3's
// claimed 10-100x overall compression with acceptable error bounds.
//
// Three ODH configurations ingest the same LD(1)-scaled dataset: lossless,
// lossy with max deviation 0.1, and lossy 0.5; RDB provides the relational
// reference size. The measured maximum absolute error is verified against
// the bound by re-reading every stored point.

#include <cmath>
#include <map>

#include "bench/bench_util.h"
#include "benchfw/ld_generator.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::LdConfig;
using benchfw::LdGenerator;
using benchfw::RelationalTarget;
using core::CompressionSpec;
using core::OdhOptions;
using core::OdhSystem;

/// Ingests the stream into an OdhSystem with the given compression spec;
/// returns storage bytes and (via *max_error) the measured worst deviation.
uint64_t RunOdh(const LdConfig& config, CompressionSpec spec,
                double* max_error) {
  OdhOptions options;
  options.batch_size = 256;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  LdGenerator stream(config);
  const auto& info = stream.info();
  int type = odh.DefineSchemaType(info.name, info.tag_names, spec).value();
  for (int64_t s = 0; s < info.num_sources; ++s) {
    ODH_CHECK_OK(odh.RegisterSource(info.first_source_id + s, type,
                                    info.sample_interval, info.regular));
  }
  core::OperationalRecord record;
  while (stream.Next(&record)) ODH_CHECK_OK(odh.Ingest(record));
  ODH_CHECK_OK(odh.FlushAll());
  // Long-term storage state: the reorganizer converts the MG ingest form
  // into per-source RTS/IRTS series, where the paper's linear compression
  // applies (smooth per-sensor signals; MG columns interleave sensors).
  ODH_CHECK_OK(odh.Reorganize(type, kMaxTimestamp).status());

  // Verify the error bound by comparing every stored point against the
  // regenerated original.
  *max_error = 0;
  stream.Reset();
  std::map<std::pair<SourceId, Timestamp>, std::vector<double>> original;
  while (stream.Next(&record)) {
    original[{record.id, record.ts}] = record.tags;
  }
  auto cursor = odh.SliceQuery(type, 0, kMaxTimestamp).value();
  int64_t points = 0;
  while (cursor->Next(&record).value()) {
    auto it = original.find({record.id, record.ts});
    ODH_CHECK(it != original.end());
    for (size_t t = 0; t < record.tags.size(); ++t) {
      bool stored_nan = std::isnan(record.tags[t]);
      bool orig_nan = std::isnan(it->second[t]);
      ODH_CHECK(stored_nan == orig_nan);
      if (!stored_nan) {
        double err = std::fabs(record.tags[t] - it->second[t]);
        if (err > *max_error) *max_error = err;
        ++points;
      }
    }
  }
  ODH_CHECK(points > 0);
  return odh.storage_bytes();
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  PrintHeader(
      "ODH compression on LD(1)",
      "Section 5.3 compression note (linear, max deviation 0.1 -> >35x) "
      "and Section 3 (10-100x overall)",
      "LD(1) scaled to 500 sensors x ~100 readings; storage measured "
      "after reorganization; errors re-verified against the originals.");

  // 500 sensors over ~38 simulated minutes: ~100 readings per sensor, the
  // same per-sensor history depth as the paper's LD(1) (2 h at 1/23 s).
  LdConfig config = LdConfig::Of(1, static_cast<int64_t>(500 * scale),
                                 /*duration_seconds=*/2300);

  uint64_t rdb_bytes;
  {
    RelationalTarget rdb(relational::EngineProfile::Rdb(), 1000);
    LdGenerator stream(config);
    ODH_CHECK_OK(rdb.Setup(stream.info()));
    ODH_CHECK_OK(benchfw::RunIngest(&stream, &rdb).status());
    rdb_bytes = rdb.StorageBytes();
  }

  struct Config {
    const char* label;
    CompressionSpec spec;
  };
  CompressionSpec lossless;
  CompressionSpec lossy01;
  lossy01.max_error = 0.1;
  CompressionSpec lossy05;
  lossy05.max_error = 0.5;
  const Config configs[] = {{"ODH lossless", lossless},
                            {"ODH lossy e=0.1", lossy01},
                            {"ODH lossy e=0.5", lossy05}};

  TablePrinter table({"Candidate", "Storage", "vs RDB", "Max abs error"});
  table.AddRow({"RDB", TablePrinter::FormatBytes(
                            static_cast<double>(rdb_bytes)),
                "1.0x", "0 (row storage)"});
  for (const Config& c : configs) {
    double max_error = 0;
    uint64_t bytes = RunOdh(config, c.spec, &max_error);
    ODH_CHECK(max_error <= c.spec.max_error + 1e-9);
    table.AddRow({c.label,
                  TablePrinter::FormatBytes(static_cast<double>(bytes)),
                  Fmt("%.1fx", static_cast<double>(rdb_bytes) /
                                   static_cast<double>(bytes)),
                  Fmt("%.4f", max_error)});
  }
  table.Print("Compression on LD(1) (scaled)");
  std::printf(
      "\nExpected shape: lossless ODH already ~3-4x smaller than RDB (the\n"
      "data-model compression of Table 7); lossy linear compression lands\n"
      "in the paper's 10-100x band (its LD(1) run reached >35x; our\n"
      "synthetic signals carry more timestamp jitter entropy), with the\n"
      "measured max error exactly at the configured bound.\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
