// Reproduces paper Table 1: "The batch structures vs. data sources and
// operations" — not a performance table but the data-model contract. This
// bench ingests each of the four source classes, then reports which batch
// structure actually served ingestion, a slice query and a historical
// query (after reorganization for the low-frequency rows).

#include "bench/bench_util.h"
#include "common/logging.h"
#include "core/odh.h"

namespace odh::bench {
namespace {

using core::OdhOptions;
using core::OdhSystem;
using core::OperationalRecord;

struct ClassSetup {
  const char* label;
  Timestamp interval;
  bool regular;
  double jitter_fraction;  // Relative timestamp jitter.
};

int Run(int argc, char** argv) {
  PrintHeader("ODH data model: batch structure selection",
              "Table 1 (batch structures vs data sources and operations)",
              "Each source class ingested, flushed and reorganized; the "
              "structures that hold its data are reported.");

  const ClassSetup classes[] = {
      {"Regular high frequency", kMicrosPerSecond / 50, true, 0.0},
      {"Irregular high frequency", kMicrosPerSecond / 50, false, 0.5},
      {"Regular low frequency", 15 * kMicrosPerMinute, true, 0.0},
      {"Irregular low frequency", 23 * kMicrosPerMinute, false, 0.5},
  };

  TablePrinter table(
      {"Data Source", "Ingestion", "Slice Query", "Historical Query"});
  for (const ClassSetup& setup : classes) {
    OdhOptions options;
    options.batch_size = 32;
    options.sql_metadata_router = false;
    OdhSystem odh(options);
    int type = odh.DefineSchemaType("t", {"v"}).value();
    ODH_CHECK_OK(odh.RegisterSource(1, type, setup.interval, setup.regular));

    Timestamp ts = 0;
    uint64_t state = 12345;
    for (int i = 0; i < 64; ++i) {
      state = state * 6364136223846793005ULL + 1442695040888963407ULL;
      double jitter = setup.jitter_fraction *
                      (static_cast<double>(state >> 40) / (1 << 24) - 0.5);
      ts += static_cast<Timestamp>(
          static_cast<double>(setup.interval) * (1.0 + jitter));
      ODH_CHECK_OK(odh.Ingest(OperationalRecord{1, ts, {1.0 * i}}));
    }
    ODH_CHECK_OK(odh.FlushAll());

    auto structure_holding_data = [&]() -> std::string {
      std::string out;
      if (odh.store()->rts_stats(type).point_count > 0) out += "RTS ";
      if (odh.store()->irts_stats(type).point_count > 0) out += "IRTS ";
      if (odh.store()->mg_stats(type).point_count > 0) out += "MG ";
      if (!out.empty()) out.pop_back();
      return out;
    };

    std::string ingestion = structure_holding_data();
    std::string slice = ingestion;  // Slice queries read what ingest wrote.
    // Historical queries on low-frequency sources read per-source
    // structures after the reorganizer runs (paper Table 1).
    ODH_CHECK_OK(odh.Reorganize(type, kMaxTimestamp).status());
    std::string historical = structure_holding_data();

    table.AddRow({setup.label, ingestion, slice, historical});
  }
  table.Print("Table 1 — structures used per source class");
  std::printf(
      "\nExpected: high-frequency rows stay RTS/IRTS throughout;\n"
      "low-frequency rows ingest and slice from MG and read history from\n"
      "RTS (regular) or IRTS (irregular) after reorganization.\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
