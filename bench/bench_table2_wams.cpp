// Reproduces paper Table 2: "Performance Test on WAMS under different PMU
// Settings" — ODH ingesting PMU streams at three settings, reporting average
// and maximum CPU load normalized to the setting's core count.
//
// Scaling: this bench runs the paper's full PMU counts (2000/3000/5000 at
// 25/50 Hz) for a few simulated seconds and normalizes CPU load to the
// paper's core counts (32/32/8), so the expected *shape* is CPU load
// growing roughly linearly with offered points/s and the 8-core row
// disproportionally higher.

#include <cmath>

#include "bench/bench_util.h"
#include "benchfw/td_generator.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::IngestMetrics;
using benchfw::IngestRunOptions;
using benchfw::OdhTarget;
using benchfw::RecordStream;
using benchfw::StreamInfo;

/// PMU stream: `num_pmus` regular sources at `hz`, 4 phasor tags each.
class PmuStream : public benchfw::RecordStream {
 public:
  PmuStream(int num_pmus, double hz, double duration_seconds) {
    info_.name = "WAMS";
    info_.tag_names = {"v_magnitude", "v_angle", "i_magnitude", "i_angle"};
    info_.num_sources = num_pmus;
    info_.first_source_id = 1;
    info_.sample_interval =
        static_cast<Timestamp>(kMicrosPerSecond / hz);
    info_.regular = true;
    info_.offered_points_per_second = num_pmus * hz;
    info_.expected_records =
        static_cast<int64_t>(num_pmus * hz * duration_seconds);
    interval_ = info_.sample_interval;
  }

  const StreamInfo& info() const override { return info_; }

  bool Next(core::OperationalRecord* record) override {
    if (next_ >= info_.expected_records) return false;
    int64_t k = next_++;
    int64_t pmu = k % info_.num_sources;
    int64_t tick = k / info_.num_sources;
    record->id = 1 + pmu;
    record->ts = tick * interval_;  // Exactly regular: RTS path.
    double angle = 0.001 * static_cast<double>(tick) + 0.01 * pmu;
    record->tags = {230.0 + 0.05 * std::sin(angle), angle,
                    10.0 + 0.01 * std::sin(angle * 1.1), angle + 1.57};
    return true;
  }

  void Reset() override { next_ = 0; }

 private:
  StreamInfo info_;
  Timestamp interval_ = 0;
  int64_t next_ = 0;
};

struct Setting {
  const char* label;
  int pmus;          // Scaled 1/10 of the paper.
  double hz;
  int cores;         // Simulated core count from the paper row.
};

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  PrintHeader("IoT-X / ODH: WAMS PMU ingestion",
              "Table 2 (PMU settings vs CPU load)",
              "Paper-scale PMU counts; CPU load normalized to the paper's "
              "simulated core counts.");

  const Setting settings[] = {
      {"2000@25 Hz", 2000, 25, 32},
      {"3000@50 Hz", 3000, 50, 32},
      {"5000@50 Hz", 5000, 50, 8},
  };

  TablePrinter table({"#", "PMU Setting", "# Cores", "Offered dp/s",
                      "Avg CPU Load", "Max CPU Load", "Throughput dp/s"});
  int row = 1;
  for (const Setting& s : settings) {
    int pmus = static_cast<int>(s.pmus * scale);
    PmuStream stream(pmus, s.hz, /*duration_seconds=*/4);
    OdhTarget target;
    ODH_CHECK_OK(target.Setup(stream.info()));
    IngestRunOptions options;
    options.simulated_cores = s.cores;
    auto metrics = benchfw::RunIngest(&stream, &target, options);
    ODH_CHECK_OK(metrics.status());
    table.AddRow({std::to_string(row++), s.label, std::to_string(s.cores),
                  TablePrinter::FormatCount(
                      metrics->offered_points_per_second),
                  Fmt("%.2f%%", metrics->AvgCpuLoad() * 100),
                  Fmt("%.2f%%", metrics->MaxCpuLoad() * 100),
                  TablePrinter::FormatCount(metrics->Throughput())});
  }
  table.Print("Table 2 — WAMS PMU settings");
  std::printf(
      "\nExpected shape: CPU load grows ~linearly with offered dp/s; the\n"
      "8-core row shows the disproportionally higher load (paper: 0.6%% /\n"
      "2.2%% on 32 cores, 16.8%% on 8 cores).\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
