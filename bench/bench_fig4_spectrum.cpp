// Reproduces paper Figure 4: "The Spectrum for Big Operational Data in IoT"
// — the (number of data sources) x (sampling frequency) plane classified by
// offered data points per second. The paper draws the big-operational-data
// region above 100 K dp/s (below that, "traditional relational databases"
// suffice) and places the case studies (WAMS, AMI, vehicles) on it.

#include <cstdio>

#include "bench/bench_util.h"

namespace odh::bench {
namespace {

int Run(int argc, char** argv) {
  PrintHeader("The big operational data spectrum",
              "Figure 4 (sources x frequency -> dp/s regime)",
              "Cells show offered dp/s; '.' < 100K (relational DB is "
              "enough), 'o' 100K-1M (ODH), 'O' > 1M (ODH, upper bound).");

  const double frequencies[] = {1.0 / (24 * 3600), 1.0 / 900, 1.0 / 60,
                                1.0, 25, 50, 100, 500};
  const char* freq_labels[] = {"1/day", "1/15min", "1/min", "1 Hz",
                               "25 Hz", "50 Hz",  "100 Hz", "500 Hz"};
  const double source_counts[] = {1e2, 1e3, 1e4, 1e5, 1e6, 1e7, 5e7};
  const char* source_labels[] = {"100",  "1K",  "10K", "100K",
                                 "1M",   "10M", "50M"};

  std::printf("\n%-10s", "sources\\f");
  for (const char* f : freq_labels) std::printf("%10s", f);
  std::printf("\n");
  for (size_t s = 0; s < std::size(source_counts); ++s) {
    std::printf("%-10s", source_labels[s]);
    for (size_t f = 0; f < std::size(frequencies); ++f) {
      double dps = source_counts[s] * frequencies[f];
      char mark = dps < 1e5 ? '.' : (dps < 1e6 ? 'o' : 'O');
      std::printf("   %c %s", mark,
                  TablePrinter::FormatCount(dps).c_str());
    }
    std::printf("\n");
  }

  std::printf(
      "\nPaper case studies on this spectrum:\n"
      "  WAMS (Table 2):      2000-5000 sources @ 25-50 Hz  -> 50K-250K dp/s\n"
      "  AMI (4.2):           35M meters @ 1/15min          -> ~39K rec/s "
      "(many tags -> >100K dp/s)\n"
      "  Vehicles (Table 3):  100K-300K @ 1/10s             -> 2.2M-5.6M dp/s\n"
      "  IoT-X TD datasets:   1K-5K sources @ 20-100 Hz     -> 20K-500K dp/s\n"
      "  IoT-X LD datasets:   1M-10M sources @ 1/23min      -> 0.7K-7.2K "
      "rec/s x 17 tags\n"
      "\nBelow 100K dp/s (marked '.') the paper considers relational\n"
      "databases sufficient; ODH's benchmarked upper bound was 1-1.5M dp/s\n"
      "per server (marked 'O' region).\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
