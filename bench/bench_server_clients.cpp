// Client/server query throughput: N concurrent TCP clients hammer one
// historian server with prepared statements over the wire protocol, for
// client counts 1 / 4 / 16 / 64 and three query shapes:
//
//   point      one-sample lookup (id + exact ts)        -- latency-bound
//   range      one source's recent window               -- streaming-bound
//   aggregate  COUNT/AVG over one source (pushdown)     -- summary-bound
//
// Reported per (clients, shape): QPS and p50/p95/p99 latency. This is the
// concurrency story the paper's historian needs beyond single-process
// embedding: session admission, per-connection prepared statements and
// chunked result streaming, all through odh_serverd's server library.
//
//   build/bench/bench_server_clients [scale] [--smoke]
//
// Writes BENCH_server.json. `--smoke` (CI) shrinks the dataset and stops
// at 4 clients.

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_util.h"
#include "benchfw/json_report.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/odh.h"
#include "core/replica.h"
#include "net/client.h"
#include "net/replication.h"
#include "net/server.h"

namespace odh::bench {
namespace {

using benchfw::JsonWriter;

constexpr int kSources = 32;

struct QueryShape {
  const char* name;
  const char* sql;  // One `?` parameter: the source id.
};

constexpr QueryShape kShapes[] = {
    {"point",
     "SELECT temperature FROM env_v WHERE id = ? AND ts = "
     "'1970-01-01 00:01:00'"},
    {"range",
     "SELECT ts, temperature, wind FROM env_v WHERE id = ? AND "
     "ts BETWEEN '1970-01-01 00:00:30' AND '1970-01-01 00:01:30'"},
    {"aggregate",
     "SELECT COUNT(*), AVG(temperature), MAX(wind) FROM env_v "
     "WHERE id = ?"},
};

struct ShapeResult {
  double qps = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;
  int64_t queries = 0;
  int64_t errors = 0;
};

double PercentileMs(std::vector<double>* micros, double p) {
  if (micros->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(micros->size()));
  if (idx >= micros->size()) idx = micros->size() - 1;
  std::nth_element(micros->begin(), micros->begin() + idx, micros->end());
  return (*micros)[idx] / 1000.0;
}

/// `clients` threads, each with its own connection and prepared handle,
/// each running `per_client` executions round-robin over the sources.
ShapeResult RunShape(int port, const QueryShape& shape, int clients,
                     int per_client,
                     const net::ClientOptions& copts = {}) {
  std::vector<std::vector<double>> latencies(clients);
  std::atomic<int64_t> errors{0};
  Stopwatch wall;
  std::vector<std::thread> threads;
  threads.reserve(clients);
  for (int t = 0; t < clients; ++t) {
    threads.emplace_back([t, port, &shape, per_client, &latencies, &errors,
                          &copts] {
      auto client = net::Client::Connect("127.0.0.1", port, copts);
      if (!client.ok()) {
        errors += per_client;
        return;
      }
      auto stmt = (*client)->Prepare(shape.sql);
      if (!stmt.ok()) {
        errors += per_client;
        return;
      }
      latencies[t].reserve(per_client);
      for (int q = 0; q < per_client; ++q) {
        int64_t id = 1 + (t + q) % kSources;
        Stopwatch timer;
        auto result = (*client)->Execute(*stmt, {Datum::Int64(id)});
        if (!result.ok()) {
          ++errors;
          continue;
        }
        latencies[t].push_back(static_cast<double>(timer.ElapsedMicros()));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  double seconds = wall.ElapsedSeconds();

  std::vector<double> merged;
  for (const auto& per_thread : latencies) {
    merged.insert(merged.end(), per_thread.begin(), per_thread.end());
  }
  ShapeResult r;
  r.queries = static_cast<int64_t>(merged.size());
  r.errors = errors.load();
  r.qps = seconds > 0 ? static_cast<double>(merged.size()) / seconds : 0;
  r.p50_ms = PercentileMs(&merged, 0.50);
  r.p95_ms = PercentileMs(&merged, 0.95);
  r.p99_ms = PercentileMs(&merged, 0.99);
  return r;
}

/// Fault-mode leg: the same workload twice, with zero injected faults.
/// "off" disables every deadline and the retry machinery outright; "armed"
/// runs the defaults plus an attached-but-quiet FaultPolicy, so each
/// socket op pays the full hook + deadline bookkeeping. The QPS delta is
/// the price of the fault-tolerance plumbing on the fault-free fast path.
void RunFaultModeSection(core::OdhSystem* odh, JsonWriter* json, bool smoke) {
  const int clients = smoke ? 2 : 4;
  const int per_client = smoke ? 40 : 200;
  const QueryShape& shape = kShapes[1];  // range: streaming-bound.

  auto run_once = [&](const net::ServerOptions& sopts,
                      const net::ClientOptions& copts) {
    net::HistorianServer server(odh->engine(), sopts);
    auto port = server.Start();
    ODH_CHECK_OK(port.status());
    ShapeResult r = RunShape(*port, shape, clients, per_client, copts);
    server.Stop();
    return r;
  };

  net::ServerOptions server_off;
  server_off.handshake_deadline_ms = 0;
  server_off.read_deadline_ms = 0;
  server_off.write_deadline_ms = 0;
  net::ClientOptions client_off;
  client_off.connect_timeout_ms = 0;
  client_off.rpc_deadline_ms = 0;
  client_off.auto_retry = false;

  net::FaultPolicy quiet(/*seed=*/1);  // Consulted every op; never fires.
  net::ServerOptions server_armed;     // Default deadlines.
  server_armed.fault_policy = &quiet;
  net::ClientOptions client_armed;     // Default deadlines + retry policy.
  client_armed.fault_policy = &quiet;

  ShapeResult base = run_once(server_off, client_off);
  ShapeResult armed = run_once(server_armed, client_armed);
  double overhead_pct =
      base.qps > 0 ? (base.qps - armed.qps) / base.qps * 100.0 : 0.0;

  TablePrinter table({"mode", "QPS", "p50 ms", "p99 ms", "errors"});
  table.AddRow({"deadlines off", TablePrinter::FormatCount(base.qps),
                TablePrinter::FormatDouble(base.p50_ms, 2),
                TablePrinter::FormatDouble(base.p99_ms, 2),
                std::to_string(base.errors)});
  table.AddRow({"armed, 0 faults", TablePrinter::FormatCount(armed.qps),
                TablePrinter::FormatDouble(armed.p50_ms, 2),
                TablePrinter::FormatDouble(armed.p99_ms, 2),
                std::to_string(armed.errors)});
  table.Print("Timeout machinery overhead (range shape, zero faults)");
  std::printf("Fault-machinery overhead: %.1f%% QPS\n\n", overhead_pct);

  json->Key("fault_mode");
  json->BeginObject();
  json->KeyValue("clients", static_cast<int64_t>(clients));
  json->KeyValue("queries_per_client", static_cast<int64_t>(per_client));
  json->KeyValue("shape", shape.name);
  json->KeyValue("qps_deadlines_off", base.qps);
  json->KeyValue("qps_armed_zero_faults", armed.qps);
  json->KeyValue("overhead_pct", overhead_pct);
  json->KeyValue("injected_faults", static_cast<int64_t>(0));
  json->EndObject();
}

/// Read-replica scale-out leg: one primary keeps ingesting while 1/2/4
/// replicas tail its WAL and serve the aggregate shape read-only. Reported
/// per replica count: aggregate QPS across all replicas (the scale-out
/// curve) and the staleness distribution sampled from the replicas' lag
/// watermarks during the run.
void RunReplicationSection(core::OdhSystem* primary, int points,
                           JsonWriter* json, bool smoke) {
  const std::vector<int> replica_counts =
      smoke ? std::vector<int>{1, 2} : std::vector<int>{1, 2, 4};
  const int clients_per_replica = 2;
  const int per_client = smoke ? 30 : 150;
  const QueryShape& shape = kShapes[2];  // aggregate: replica-friendly.

  net::ReplicationSource source(primary->store());
  net::ServerOptions primary_options;
  primary_options.role = net::ServerRole::kPrimary;
  primary_options.replication = &source;
  net::HistorianServer primary_server(primary->engine(), primary_options);
  auto primary_port = primary_server.Start();
  ODH_CHECK_OK(primary_port.status());

  TablePrinter table({"replicas", "agg QPS", "stale p50 us", "stale p95 us",
                      "stale p99 us", "errors"});
  json->Key("replication");
  json->BeginArray();
  for (int replicas : replica_counts) {
    // Build the fleet: replica system + applier + tailing client + server.
    struct Replica {
      std::unique_ptr<core::OdhSystem> odh;
      std::unique_ptr<core::ReplicaApplier> applier;
      std::unique_ptr<net::ReplicationClient> tail;
      std::unique_ptr<net::HistorianServer> server;
      int port = 0;
    };
    std::vector<Replica> fleet(replicas);
    for (Replica& r : fleet) {
      r.odh = std::make_unique<core::OdhSystem>();
      int type =
          r.odh->DefineSchemaType("env", {"temperature", "wind"}).value();
      for (SourceId id = 1; id <= kSources; ++id) {
        ODH_CHECK_OK(r.odh->RegisterSource(id, type, kMicrosPerSecond,
                                           /*regular=*/true));
      }
      r.applier = std::make_unique<core::ReplicaApplier>(r.odh->store());
      r.tail = std::make_unique<net::ReplicationClient>(
          "127.0.0.1", *primary_port, r.applier.get());
      ODH_CHECK_OK(r.tail->Start());
      net::ExposeReplicationLag(r.applier.get(), r.odh->engine());
      net::ServerOptions ro;
      ro.role = net::ServerRole::kReplica;
      r.server = std::make_unique<net::HistorianServer>(r.odh->engine(), ro);
      auto port = r.server->Start();
      ODH_CHECK_OK(port.status());
      r.port = *port;
      // Bootstrap before the clock starts: the leg measures steady-state
      // read scale-out, not snapshot shipping.
      while (!r.tail->WaitForLsn(primary->store()->durable_lsn(), 100)) {
      }
    }

    // Writes keep flowing while the read fleet is hammered, so the
    // staleness samples reflect a live system, not a quiesced one.
    std::atomic<bool> stop_ingest{false};
    std::thread ingester([&] {
      // Resume past everything already ingested (earlier sections and
      // earlier fleet sizes share this primary): per-source timestamps
      // must be non-decreasing.
      int64_t i =
          primary->store()->MaxIngestedTimestamp() / kMicrosPerSecond + 1;
      while (!stop_ingest.load(std::memory_order_relaxed)) {
        for (SourceId id = 1; id <= kSources; ++id) {
          ODH_CHECK_OK(primary->Ingest({id, i * kMicrosPerSecond,
                                        {20.0 + id + 0.01 * i, 0.5 * id}}));
        }
        ODH_CHECK_OK(primary->FlushAll());
        ++i;
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });
    std::atomic<bool> stop_sampling{false};
    std::vector<double> staleness_us;
    std::thread sampler([&] {
      while (!stop_sampling.load(std::memory_order_relaxed)) {
        for (const Replica& r : fleet) {
          staleness_us.push_back(
              static_cast<double>(r.applier->staleness_micros()));
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }
    });

    // One RunShape per replica, concurrently: aggregate QPS is total
    // queries over the longest replica's wall time (the fleet's rate).
    std::vector<ShapeResult> results(replicas);
    Stopwatch wall;
    std::vector<std::thread> runners;
    for (int i = 0; i < replicas; ++i) {
      runners.emplace_back([&, i] {
        results[i] = RunShape(fleet[i].port, shape, clients_per_replica,
                              per_client);
      });
    }
    for (std::thread& t : runners) t.join();
    const double seconds = wall.ElapsedSeconds();
    stop_sampling.store(true, std::memory_order_relaxed);
    stop_ingest.store(true, std::memory_order_relaxed);
    sampler.join();
    ingester.join();

    int64_t queries = 0, errors = 0;
    for (const ShapeResult& r : results) {
      queries += r.queries;
      errors += r.errors;
    }
    const double agg_qps =
        seconds > 0 ? static_cast<double>(queries) / seconds : 0;
    // PercentileMs reports milliseconds; staleness stays in microseconds.
    const double p50 = PercentileMs(&staleness_us, 0.50) * 1000.0;
    const double p95 = PercentileMs(&staleness_us, 0.95) * 1000.0;
    const double p99 = PercentileMs(&staleness_us, 0.99) * 1000.0;

    table.AddRow({std::to_string(replicas), TablePrinter::FormatCount(agg_qps),
                  TablePrinter::FormatCount(p50), TablePrinter::FormatCount(p95),
                  TablePrinter::FormatCount(p99), std::to_string(errors)});
    json->BeginObject();
    json->KeyValue("replicas", static_cast<int64_t>(replicas));
    json->KeyValue("clients_per_replica",
                   static_cast<int64_t>(clients_per_replica));
    json->KeyValue("shape", shape.name);
    json->KeyValue("aggregate_qps", agg_qps);
    json->KeyValue("staleness_p50_us", p50);
    json->KeyValue("staleness_p95_us", p95);
    json->KeyValue("staleness_p99_us", p99);
    json->KeyValue("queries", queries);
    json->KeyValue("errors", errors);
    json->EndObject();

    for (Replica& r : fleet) {
      r.tail->Stop();
      r.server->Stop();
    }
  }
  json->EndArray();
  table.Print("Read-replica scale-out (aggregate shape, live ingest)");
  primary_server.Stop();
}

int Run(int argc, char** argv) {
  const double scale = ScaleFromArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  PrintHeader("Historian server: concurrent client scaling",
              "client/server extension (paper deploys ODH inside Informix; "
              "this measures the standalone server front door)",
              smoke ? "Smoke mode: tiny dataset, 1-4 clients."
                    : "32 sources; prepared statements over TCP; "
                      "QPS and latency percentiles per client count.");

  // One historian: 32 sensors at 1 Hz. Scale stretches the recorded span.
  const int points =
      std::max(120, static_cast<int>((smoke ? 240 : 1800) * scale));
  core::OdhSystem odh;
  int type = odh.DefineSchemaType("env", {"temperature", "wind"}).value();
  for (SourceId id = 1; id <= kSources; ++id) {
    ODH_CHECK_OK(odh.RegisterSource(id, type, kMicrosPerSecond,
                                    /*regular=*/true));
  }
  for (int i = 0; i < points; ++i) {
    for (SourceId id = 1; id <= kSources; ++id) {
      ODH_CHECK_OK(odh.Ingest({id, i * kMicrosPerSecond,
                               {20.0 + id + 0.01 * i, 0.5 * id}}));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());
  std::printf("Dataset: %d sources x %d points\n\n", kSources, points);

  net::ServerOptions options;
  options.max_sessions = 96;
  net::HistorianServer server(odh.engine(), options, odh.metrics());
  auto port = server.Start();
  ODH_CHECK_OK(port.status());

  const std::vector<int> client_counts =
      smoke ? std::vector<int>{1, 4} : std::vector<int>{1, 4, 16, 64};
  const int queries_per_client = smoke ? 20 : 100;

  TablePrinter table(
      {"clients", "shape", "QPS", "p50 ms", "p95 ms", "p99 ms", "errors"});
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "server_clients");
  json.KeyValue("smoke", smoke);
  json.KeyValue("sources", static_cast<int64_t>(kSources));
  json.KeyValue("points_per_source", static_cast<int64_t>(points));
  json.Key("runs");
  json.BeginArray();
  for (int clients : client_counts) {
    for (const QueryShape& shape : kShapes) {
      ShapeResult r = RunShape(*port, shape, clients, queries_per_client);
      table.AddRow({std::to_string(clients), shape.name,
                    TablePrinter::FormatCount(r.qps),
                    TablePrinter::FormatDouble(r.p50_ms, 2),
                    TablePrinter::FormatDouble(r.p95_ms, 2),
                    TablePrinter::FormatDouble(r.p99_ms, 2),
                    std::to_string(r.errors)});
      json.BeginObject();
      json.KeyValue("clients", static_cast<int64_t>(clients));
      json.KeyValue("shape", shape.name);
      json.KeyValue("qps", r.qps);
      json.KeyValue("p50_ms", r.p50_ms);
      json.KeyValue("p95_ms", r.p95_ms);
      json.KeyValue("p99_ms", r.p99_ms);
      json.KeyValue("queries", r.queries);
      json.KeyValue("errors", r.errors);
      json.EndObject();
      if (r.errors > 0) {
        std::printf("WARNING: %lld errors at %d clients / %s\n",
                    static_cast<long long>(r.errors), clients, shape.name);
      }
    }
  }
  json.EndArray();
  json.KeyValue("sessions_rejected", server.sessions_rejected());
  table.Print("Prepared-statement QPS over TCP vs concurrent clients");
  server.Stop();

  // Fault-mode leg: measures what the deadline/fault plumbing costs when
  // nothing goes wrong (the acceptance bar is <= 5% QPS).
  RunFaultModeSection(&odh, &json, smoke);

  // Replica scale-out leg: aggregate QPS at 1/2/4 replicas plus staleness
  // percentiles under live ingest.
  RunReplicationSection(&odh, points, &json, smoke);
  json.EndObject();
  if (json.WriteFile("BENCH_server.json")) {
    std::printf("Server data written to BENCH_server.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
