// Micro-benchmarks (google-benchmark) for the ODH codecs behind the paper's
// §3 claims: value compression (linear / quantization / XOR), timestamp
// delta-of-delta coding and whole-ValueBlob encode/decode. These quantify
// the per-point CPU cost that the macro benches (Figures 5/6) aggregate.

#include <benchmark/benchmark.h>

#include <cmath>
#include <vector>

#include "common/random.h"
#include "core/value_blob.h"

namespace odh::core {
namespace {

std::vector<double> SmoothSignal(size_t n) {
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = 20 + 5 * std::sin(0.01 * i);
  return v;
}

std::vector<double> NoisySignal(size_t n) {
  Random rng(99);
  std::vector<double> v(n);
  for (size_t i = 0; i < n; ++i) v[i] = rng.UniformDouble(0, 100);
  return v;
}

CompressionSpec Forced(ValueCodec codec, double e) {
  CompressionSpec spec;
  spec.force = true;
  spec.forced_codec = codec;
  spec.max_error = e;
  return spec;
}

void BM_EncodeColumn(benchmark::State& state, ValueCodec codec, double e,
                     bool smooth) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> v = smooth ? SmoothSignal(n) : NoisySignal(n);
  CompressionSpec spec = Forced(codec, e);
  size_t encoded_bytes = 0;
  for (auto _ : state) {
    std::string out;
    benchmark::DoNotOptimize(EncodeColumn(v.data(), n, spec, &out));
    encoded_bytes = out.size();
  }
  state.SetItemsProcessed(state.iterations() * n);
  state.counters["compression_x"] =
      static_cast<double>(n * 8) / static_cast<double>(encoded_bytes);
}

void BM_DecodeColumn(benchmark::State& state, ValueCodec codec, double e,
                     bool smooth) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<double> v = smooth ? SmoothSignal(n) : NoisySignal(n);
  std::string encoded;
  (void)EncodeColumn(v.data(), n, Forced(codec, e), &encoded);
  std::vector<double> out;
  for (auto _ : state) {
    benchmark::DoNotOptimize(DecodeColumn(Slice(encoded), n, &out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_TimestampCodec(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  std::vector<Timestamp> ts(n);
  for (size_t i = 0; i < n; ++i) ts[i] = static_cast<Timestamp>(i) * 20000;
  for (auto _ : state) {
    std::string out;
    EncodeTimestamps(ts.data(), n, ts[0], &out);
    Slice in(out);
    std::vector<Timestamp> decoded;
    benchmark::DoNotOptimize(DecodeTimestamps(&in, n, ts[0], &decoded));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

void BM_RtsBlobRoundTrip(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const int tags = 4;
  SeriesBatch batch;
  batch.id = 1;
  batch.columns.resize(tags);
  for (size_t i = 0; i < n; ++i) {
    batch.timestamps.push_back(static_cast<Timestamp>(i) * 20000);
    for (int t = 0; t < tags; ++t) {
      batch.columns[t].push_back(20 + t + 5 * std::sin(0.01 * i));
    }
  }
  ValueBlobCodec codec{CompressionSpec{}};
  for (auto _ : state) {
    std::string blob;
    benchmark::DoNotOptimize(codec.EncodeRts(batch, 20000, &blob));
    SeriesBatch out;
    benchmark::DoNotOptimize(
        codec.DecodeRts(Slice(blob), 1, 0, 20000, {}, tags, &out));
  }
  state.SetItemsProcessed(state.iterations() * n * tags);
}

void BM_TagOrientedDecode(benchmark::State& state) {
  // Decoding 1 of 16 tags vs all 16: the tag-oriented directory saving.
  const size_t n = 256;
  const int tags = 16;
  const bool partial = state.range(0) == 1;
  SeriesBatch batch;
  batch.id = 1;
  batch.columns.resize(tags);
  for (size_t i = 0; i < n; ++i) {
    batch.timestamps.push_back(static_cast<Timestamp>(i) * 20000);
    for (int t = 0; t < tags; ++t) {
      batch.columns[t].push_back(t + std::sin(0.01 * i));
    }
  }
  ValueBlobCodec codec{CompressionSpec{}};
  std::string blob;
  (void)codec.EncodeRts(batch, 20000, &blob);
  std::vector<int> wanted = partial ? std::vector<int>{3}
                                    : std::vector<int>{};
  for (auto _ : state) {
    SeriesBatch out;
    benchmark::DoNotOptimize(
        codec.DecodeRts(Slice(blob), 1, 0, 20000, wanted, tags, &out));
  }
  state.SetItemsProcessed(state.iterations() * n);
}

BENCHMARK_CAPTURE(BM_EncodeColumn, xor_smooth, ValueCodec::kXor, 0.0, true)
    ->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_EncodeColumn, linear_smooth, ValueCodec::kLinear, 0.1,
                  true)
    ->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_EncodeColumn, quant_noisy, ValueCodec::kQuantized, 0.1,
                  false)
    ->Arg(256)->Arg(1024);
BENCHMARK_CAPTURE(BM_DecodeColumn, xor_smooth, ValueCodec::kXor, 0.0, true)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_DecodeColumn, linear_smooth, ValueCodec::kLinear, 0.1,
                  true)
    ->Arg(1024);
BENCHMARK_CAPTURE(BM_DecodeColumn, quant_noisy, ValueCodec::kQuantized, 0.1,
                  false)
    ->Arg(1024);
BENCHMARK(BM_TimestampCodec)->Arg(1024);
BENCHMARK(BM_RtsBlobRoundTrip)->Arg(256)->Arg(1024);
BENCHMARK(BM_TagOrientedDecode)->Arg(0)->Arg(1);

}  // namespace
}  // namespace odh::core

BENCHMARK_MAIN();
