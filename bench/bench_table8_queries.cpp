// Reproduces paper Table 8: "Query performance for the three candidates" —
// the WS2 read workloads TQ1-TQ4 (on TD(5,2)) and LQ1-LQ4 (on LD(5)) against
// ODH, RDB and MySQL, reporting throughput in returned data points per
// second and CPU rate.
//
// Scaling: TD account unit 20 / 20 s, LD sensor unit 600 / 120 s; 100
// queries per template (paper: 100). Expected shape: the relational
// candidates win the full-row templates (TQ1/TQ2/LQ1/LQ2 — ODH pays VTI row
// assembly plus the SQL metadata router, which dominates the tiny LQ1
// queries), while ODH wins the single-tag fused templates (TQ3/TQ4/LQ4)
// thanks to tag-oriented blob decoding.

#include <algorithm>
#include <cmath>
#include <thread>

#include "bench/bench_util.h"
#include "benchfw/dataset.h"
#include "benchfw/json_report.h"
#include "common/logging.h"
#include "common/random.h"

namespace odh::bench {
namespace {

using benchfw::JsonWriter;
using benchfw::LdConfig;
using benchfw::LdGenerator;
using benchfw::OdhTarget;
using benchfw::QueryMetrics;
using benchfw::RelationalTarget;
using benchfw::TdConfig;
using benchfw::TdGenerator;

constexpr int kQueriesPerTemplate = 100;
constexpr int kSimulatedCores = 8;

/// One system under test, fully loaded with both datasets.
struct Candidate {
  std::string name;
  std::unique_ptr<OdhTarget> odh;              // Set for ODH.
  std::unique_ptr<RelationalTarget> td_rel;    // Set for RDB/MySQL.
  std::unique_ptr<RelationalTarget> ld_rel;
  std::unique_ptr<sql::SqlEngine> td_engine;   // Engines for RDB/MySQL.
  std::unique_ptr<sql::SqlEngine> ld_engine;

  sql::SqlEngine* TdEngine() {
    return odh != nullptr ? odh->odh()->engine() : td_engine.get();
  }
  sql::SqlEngine* LdEngine() {
    return odh != nullptr ? odh->odh()->engine() : ld_engine.get();
  }
  std::string TdTable() const { return odh != nullptr ? "TD_v" : "TD"; }
  std::string LdTable() const { return odh != nullptr ? "LD_v" : "LD"; }
};

template <typename Stream>
void Ingest(Stream stream, benchfw::IngestTarget* target) {
  ODH_CHECK_OK(target->Setup(stream.info()));
  ODH_CHECK_OK(benchfw::RunIngest(&stream, target).status());
}

Candidate MakeOdh(const TdConfig& td, const LdConfig& ld) {
  Candidate c;
  c.name = "ODH";
  c.odh = std::make_unique<OdhTarget>();
  Ingest(TdGenerator(td), c.odh.get());
  // The second schema type shares the same OdhSystem.
  {
    LdGenerator stream(ld);
    ODH_CHECK_OK(c.odh->Setup(stream.info()));
    ODH_CHECK_OK(benchfw::RunIngest(&stream, c.odh.get()).status());
  }
  // Historical LD data is queried in its reorganized (per-source RTS/IRTS)
  // form, as in a steady-state historian; recent data would stay in MG.
  int ld_type = c.odh->odh()->config()->FindSchemaType("LD").value();
  ODH_CHECK_OK(c.odh->odh()->Reorganize(ld_type, kMaxTimestamp).status());
  ODH_CHECK_OK(
      benchfw::LoadTdRelational(TdGenerator(td), c.odh->odh()->database()));
  ODH_CHECK_OK(
      benchfw::LoadLdRelational(LdGenerator(ld), c.odh->odh()->database()));
  for (const char* t : {"customer", "account", "linkedsensor"}) {
    ODH_CHECK_OK(c.odh->odh()->engine()->catalog()->Analyze(t));
  }
  return c;
}

Candidate MakeRelational(const relational::EngineProfile& profile,
                         const TdConfig& td, const LdConfig& ld) {
  Candidate c;
  c.name = profile.name;
  c.td_rel = std::make_unique<RelationalTarget>(profile, 1000);
  Ingest(TdGenerator(td), c.td_rel.get());
  ODH_CHECK_OK(
      benchfw::LoadTdRelational(TdGenerator(td), c.td_rel->database()));
  c.td_engine = std::make_unique<sql::SqlEngine>(c.td_rel->database());
  for (const char* t : {"customer", "account", "TD"}) {
    ODH_CHECK_OK(c.td_engine->catalog()->Analyze(t));
  }

  c.ld_rel = std::make_unique<RelationalTarget>(profile, 1000);
  Ingest(LdGenerator(ld), c.ld_rel.get());
  ODH_CHECK_OK(
      benchfw::LoadLdRelational(LdGenerator(ld), c.ld_rel->database()));
  c.ld_engine = std::make_unique<sql::SqlEngine>(c.ld_rel->database());
  for (const char* t : {"linkedsensor", "LD"}) {
    ODH_CHECK_OK(c.ld_engine->catalog()->Analyze(t));
  }
  return c;
}

std::string TsLiteral(Timestamp ts) {
  // Built with append rather than operator+ to sidestep a GCC 12 -Wrestrict
  // false positive (PR105329) that -Werror builds would otherwise trip on.
  std::string out = "'";
  out.append(FormatTimestamp(ts));
  out.push_back('\'');
  return out;
}

/// `--smoke`: CI quick mode — tiny dataset, ODH only, aggregate section
/// only. Keeps the vectorized/pushdown paths exercised end to end without
/// the multi-candidate Table 8 sweep.
bool SmokeFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

/// NULL-safe near-equality for cross-mode result verification. Doubles get
/// a relative epsilon: the three modes may legally differ in accumulation
/// order (summary merge vs per-row adds).
bool DatumsClose(const Datum& a, const Datum& b) {
  if (a == b) return true;
  if (!a.is_double() || !b.is_double()) return false;
  double x = a.double_value(), y = b.double_value();
  double tol = 1e-9 * std::max({1.0, std::fabs(x), std::fabs(y)});
  return std::fabs(x - y) <= tol;
}

/// Before/after comparison for the vectorized scan + aggregate pushdown
/// work: the same aggregate query list under (a) row-at-a-time scans,
/// (b) vectorized batch scans, (c) batch scans + summary pushdown.
/// Verifies identical results across modes and reports reader counters
/// (rows scanned, blobs decoded, blobs answered from summaries alone).
void RunAggregateComparison(core::OdhSystem* odh, int64_t num_accounts,
                            Timestamp td_span, int queries_per_template,
                            JsonWriter* json) {
  struct Template {
    std::string name;
    std::vector<std::string> queries;
  };
  std::vector<Template> templates(3);
  Random rng(0xA66A);
  // AQ1: full-history aggregates over one account — every blob is interior,
  // so the pushdown path answers entirely from zone-map summaries.
  templates[0].name = "AQ1";
  for (int i = 0; i < queries_per_template; ++i) {
    templates[0].queries.push_back(
        "SELECT COUNT(*), AVG(t_chrg), MIN(t_chrg), MAX(t_chrg) FROM TD_v "
        "WHERE id = " +
        std::to_string(1 + rng.Uniform(num_accounts)));
  }
  // AQ2: windowed aggregates — boundary blobs decode, interior blobs skip.
  templates[1].name = "AQ2";
  for (int i = 0; i < queries_per_template; ++i) {
    Timestamp dt = rng.UniformRange(5, 15) * kMicrosPerSecond;
    Timestamp t = rng.UniformRange(0, td_span - dt);
    templates[1].queries.push_back(
        "SELECT COUNT(*), SUM(t_chrg) FROM TD_v WHERE id = " +
        std::to_string(1 + rng.Uniform(num_accounts)) + " AND ts BETWEEN " +
        TsLiteral(t) + " AND " + TsLiteral(t + dt));
  }
  // AQ3: cross-source slice aggregates.
  templates[2].name = "AQ3";
  for (int i = 0; i < queries_per_template; ++i) {
    Timestamp dt = rng.UniformRange(2, 8) * kMicrosPerSecond;
    Timestamp t = rng.UniformRange(0, td_span - dt);
    templates[2].queries.push_back(
        "SELECT COUNT(*), SUM(t_chrg), MAX(t_chrg) FROM TD_v WHERE "
        "ts BETWEEN " +
        TsLiteral(t) + " AND " + TsLiteral(t + dt));
  }

  struct Mode {
    const char* name;
    bool vectorized;
    bool pushdown;
  };
  const Mode modes[] = {{"row", false, false},
                        {"vectorized", true, false},
                        {"pushdown", true, true}};

  TablePrinter table({"Query", "Scan mode", "queries/s", "Speedup vs row",
                      "Rows scanned", "Blobs decoded", "Summary-only"});
  json->Key("aggregate_pushdown");
  json->BeginObject();
  json->KeyValue("queries_per_template",
                 static_cast<int64_t>(queries_per_template));
  json->Key("templates");
  json->BeginArray();

  int64_t mismatches = 0;
  for (const Template& tpl : templates) {
    json->BeginObject();
    json->KeyValue("name", tpl.name);
    json->Key("modes");
    json->BeginArray();
    std::vector<std::vector<Row>> baseline;
    double base_wall = 0;
    for (const Mode& mode : modes) {
      odh->config()->SetScanPathOptions(mode.vectorized, mode.pushdown);
      odh->reader()->ResetStats();
      Stopwatch timer;
      std::vector<std::vector<Row>> results;
      results.reserve(tpl.queries.size());
      for (const std::string& q : tpl.queries) {
        auto r = odh->engine()->Execute(q);
        ODH_CHECK_OK(r.status());
        results.push_back(std::move(r->rows));
      }
      double wall = timer.ElapsedSeconds();
      const core::ReadStats stats = odh->reader()->SnapshotAndResetStats();

      if (baseline.empty()) {
        baseline = std::move(results);
        base_wall = wall;
      } else {
        for (size_t q = 0; q < tpl.queries.size(); ++q) {
          if (results[q].size() != baseline[q].size()) {
            ++mismatches;
            continue;
          }
          for (size_t r = 0; r < results[q].size(); ++r) {
            for (size_t c = 0; c < results[q][r].size(); ++c) {
              if (!DatumsClose(results[q][r][c], baseline[q][r][c])) {
                ++mismatches;
                std::fprintf(
                    stderr,
                    "MISMATCH (%s vs row) query %zu col %zu: %s vs %s\n"
                    "  %s\n",
                    mode.name, q, c, results[q][r][c].ToString().c_str(),
                    baseline[q][r][c].ToString().c_str(),
                    tpl.queries[q].c_str());
              }
            }
          }
        }
      }

      double qps =
          wall > 0 ? static_cast<double>(tpl.queries.size()) / wall : 0;
      double speedup = wall > 0 ? base_wall / wall : 0;
      table.AddRow({tpl.name, mode.name, TablePrinter::FormatCount(qps),
                    Fmt("%.2fx", speedup),
                    std::to_string(stats.records_emitted),
                    std::to_string(stats.blobs_decoded),
                    std::to_string(stats.blobs_skipped_by_summary)});
      json->BeginObject();
      json->KeyValue("name", mode.name);
      json->KeyValue("wall_seconds", wall);
      json->KeyValue("queries_per_second", qps);
      json->KeyValue("speedup_vs_row", speedup);
      json->KeyValue("rows_scanned", stats.records_emitted);
      json->KeyValue("blobs_decoded", stats.blobs_decoded);
      json->KeyValue("blobs_pruned", stats.blobs_pruned);
      json->KeyValue("blobs_skipped_by_summary",
                     stats.blobs_skipped_by_summary);
      json->EndObject();
    }
    json->EndArray();
    json->EndObject();
  }
  json->EndArray();
  json->KeyValue("results_match", mismatches == 0);
  json->EndObject();
  odh->config()->SetScanPathOptions(true, true);  // Restore defaults.

  table.Print("Aggregate pushdown — before/after (AQ1-AQ3 on TD)");
  if (mismatches > 0) {
    std::fprintf(stderr,
                 "FATAL: %lld aggregate result mismatches across scan modes\n",
                 static_cast<long long>(mismatches));
    std::exit(1);
  }
  std::printf("Aggregate results identical across all three scan modes.\n");
}

/// Read-path scaling: the same TD dataset queried with the reader's
/// parallel blob decode at 1, 2, 4, ... worker threads. Queries run from
/// one thread (the SQL engine is single-threaded); the parallelism is
/// inside each scan, where candidate blobs fan out to the decode pool.
void RunReadScalingCurve(int max_threads, double scale, JsonWriter* json) {
  std::vector<int> curve;
  for (int t = 1; t < max_threads; t *= 2) curve.push_back(t);
  curve.push_back(max_threads);

  const int64_t account_unit = static_cast<int64_t>(20 * scale);
  TdConfig td = TdConfig::Of(5, 2, account_unit, /*duration_seconds=*/20);
  const int64_t num_accounts = td.num_accounts;

  TablePrinter table({"Decode threads", "dp/s", "p50 ms", "p95 ms",
                      "p99 ms", "Speedup vs 1T"});
  json->Key("read_scaling");
  json->BeginArray();
  double base_rate = 0;
  for (int threads : curve) {
    core::OdhOptions options = OdhTarget::DefaultOptions();
    options.read_parallelism = threads;
    OdhTarget odh(options);
    {
      TdGenerator stream(td);
      ODH_CHECK_OK(odh.Setup(stream.info()));
      ODH_CHECK_OK(benchfw::RunIngest(&stream, &odh).status());
    }
    Random rng(0xD0D0);
    auto metrics = benchfw::RunQueryWorkload(
        odh.odh()->engine(), kQueriesPerTemplate, [&](int) {
          return "SELECT * FROM TD_v WHERE id = " +
                 std::to_string(1 + rng.Uniform(num_accounts));
        });
    ODH_CHECK_OK(metrics.status());
    double rate = metrics->DataPointsPerSecond();
    if (threads == 1) base_rate = rate;
    double speedup = base_rate > 0 ? rate / base_rate : 0;
    table.AddRow({std::to_string(threads), TablePrinter::FormatCount(rate),
                  Fmt("%.3f", metrics->P50LatencyMs()),
                  Fmt("%.3f", metrics->P95LatencyMs()),
                  Fmt("%.3f", metrics->P99LatencyMs()),
                  Fmt("%.2fx", speedup)});
    json->BeginObject();
    json->KeyValue("decode_threads", threads);
    json->KeyValue("data_points_per_second", rate);
    json->KeyValue("p50_ms", metrics->P50LatencyMs());
    json->KeyValue("p95_ms", metrics->P95LatencyMs());
    json->KeyValue("p99_ms", metrics->P99LatencyMs());
    json->KeyValue("speedup_vs_1_thread", speedup);
    json->EndObject();
  }
  json->EndArray();
  table.Print("Parallel blob-decode scaling (TQ1 on TD(5,2))");
}

/// Segment-parallel scans and the decoded-blob cache on one multi-segment
/// TD dataset (8 segments of 5 s): serial vs parallel latency at 1/2/4/8
/// segments of history depth with exact result verification, then cold vs
/// warm latency and hit rate with the cache enabled. Parallel speedup is
/// hardware-dependent (it needs real cores: the fan-out is capped by the
/// shared decode pool); the cache comparison holds on any machine.
void RunParallelCacheSection(double scale, int queries_per_depth,
                             JsonWriter* json) {
  const int64_t account_unit =
      std::max<int64_t>(1, static_cast<int64_t>(20 * scale));
  constexpr double kDurationSeconds = 40;
  constexpr Timestamp kSegmentSpan = 5 * kMicrosPerSecond;
  TdConfig td = TdConfig::Of(5, 2, account_unit, kDurationSeconds);
  const int64_t num_accounts = td.num_accounts;
  const Timestamp end_ts =
      static_cast<Timestamp>(kDurationSeconds * kMicrosPerSecond);

  json->Key("parallel_cache");
  json->BeginObject();
  json->KeyValue("segment_span_seconds", 5);
  json->KeyValue("num_segments", 8);

  // Serial vs parallel at increasing history depth, cache off.
  core::OdhOptions options = OdhTarget::DefaultOptions();
  options.segment_span = kSegmentSpan;
  options.query_parallelism = 8;
  OdhTarget odh(options);
  {
    TdGenerator stream(td);
    ODH_CHECK_OK(odh.Setup(stream.info()));
    ODH_CHECK_OK(benchfw::RunIngest(&stream, &odh).status());
  }
  core::OdhSystem* sys = odh.odh();
  ODH_CHECK_OK(sys->FlushAll());

  TablePrinter table({"Segments", "Serial p50 ms", "Parallel p50 ms",
                      "Speedup", "Parallel tasks"});
  json->Key("parallel_scan");
  json->BeginArray();
  for (int depth : {1, 2, 4, 8}) {
    const Timestamp lo = end_ts - depth * kSegmentSpan;
    // Parallel answers must equal serial exactly — same rows, same order.
    const std::string probe =
        "SELECT * FROM TD_v WHERE id = 1 AND ts >= " + TsLiteral(lo);
    sys->config()->SetQueryParallelism(0);
    auto serial_probe = sys->engine()->Execute(probe);
    sys->config()->SetQueryParallelism(8);
    auto parallel_probe = sys->engine()->Execute(probe);
    ODH_CHECK_OK(serial_probe.status());
    ODH_CHECK_OK(parallel_probe.status());
    bool same = serial_probe->rows.size() == parallel_probe->rows.size();
    for (size_t r = 0; same && r < serial_probe->rows.size(); ++r) {
      for (size_t c = 0; same && c < serial_probe->rows[r].size(); ++c) {
        same = DatumsClose(serial_probe->rows[r][c],
                           parallel_probe->rows[r][c]);
      }
    }
    if (!same) {
      std::fprintf(stderr,
                   "FATAL: parallel scan mismatch at depth %d segments\n",
                   depth);
      std::exit(1);
    }

    auto run_pass = [&](int parallelism) {
      sys->config()->SetQueryParallelism(parallelism);
      Random rng(0xBEEF);
      return benchfw::RunQueryWorkload(
          sys->engine(), queries_per_depth, [&](int) {
            return "SELECT * FROM TD_v WHERE id = " +
                   std::to_string(1 + rng.Uniform(num_accounts)) +
                   " AND ts >= " + TsLiteral(lo);
          });
    };
    auto serial = run_pass(0);
    ODH_CHECK_OK(serial.status());
    sys->reader()->ResetStats();
    auto parallel = run_pass(8);
    ODH_CHECK_OK(parallel.status());
    const core::ReadStats stats = sys->reader()->SnapshotAndResetStats();
    const double speedup = parallel->P50LatencyMs() > 0
                               ? serial->P50LatencyMs() /
                                     parallel->P50LatencyMs()
                               : 0;
    table.AddRow({std::to_string(depth),
                  Fmt("%.3f", serial->P50LatencyMs()),
                  Fmt("%.3f", parallel->P50LatencyMs()),
                  Fmt("%.2fx", speedup),
                  std::to_string(stats.parallel_tasks)});
    json->BeginObject();
    json->KeyValue("segments", depth);
    json->KeyValue("serial_p50_ms", serial->P50LatencyMs());
    json->KeyValue("parallel_p50_ms", parallel->P50LatencyMs());
    json->KeyValue("serial_p95_ms", serial->P95LatencyMs());
    json->KeyValue("parallel_p95_ms", parallel->P95LatencyMs());
    json->KeyValue("speedup", speedup);
    json->KeyValue("parallel_tasks", stats.parallel_tasks);
    json->KeyValue("segments_scanned_parallel",
                   stats.segments_scanned_parallel);
    json->EndObject();
  }
  json->EndArray();
  table.Print("Segment-parallel scan — serial vs parallel by history depth");

  // Cold vs warm with the decoded-blob cache on (fresh instance so the
  // timing section above stayed cache-free).
  core::OdhOptions cache_options = OdhTarget::DefaultOptions();
  cache_options.segment_span = kSegmentSpan;
  cache_options.query_parallelism = 8;
  cache_options.blob_cache_bytes = 64u << 20;
  OdhTarget cached(cache_options);
  {
    TdGenerator stream(td);
    ODH_CHECK_OK(cached.Setup(stream.info()));
    ODH_CHECK_OK(benchfw::RunIngest(&stream, &cached).status());
  }
  core::OdhSystem* csys = cached.odh();
  ODH_CHECK_OK(csys->FlushAll());
  auto cache_pass = [&]() {
    Random rng(0xFEED);  // Same seed each pass: the warm pass repeats the
                         // cold pass's query set so every blob re-occurs.
    return benchfw::RunQueryWorkload(
        csys->engine(), queries_per_depth, [&](int) {
          return "SELECT * FROM TD_v WHERE id = " +
                 std::to_string(1 + rng.Uniform(num_accounts));
        });
  };
  csys->reader()->ResetStats();
  auto cold = cache_pass();
  ODH_CHECK_OK(cold.status());
  const core::ReadStats cold_stats = csys->reader()->SnapshotAndResetStats();
  auto warm = cache_pass();
  ODH_CHECK_OK(warm.status());
  const core::ReadStats warm_stats = csys->reader()->SnapshotAndResetStats();
  const double warm_lookups = static_cast<double>(
      warm_stats.blob_cache_hits + warm_stats.blobs_decoded);
  const double hit_rate =
      warm_lookups > 0 ? warm_stats.blob_cache_hits / warm_lookups : 0;
  const double cache_speedup = warm->P50LatencyMs() > 0
                                   ? cold->P50LatencyMs() /
                                         warm->P50LatencyMs()
                                   : 0;
  TablePrinter cache_table({"Pass", "p50 ms", "dp/s", "Blobs decoded",
                            "Cache hits", "Hit rate"});
  cache_table.AddRow({"cold", Fmt("%.3f", cold->P50LatencyMs()),
                      TablePrinter::FormatCount(cold->DataPointsPerSecond()),
                      std::to_string(cold_stats.blobs_decoded),
                      std::to_string(cold_stats.blob_cache_hits), "-"});
  cache_table.AddRow({"warm", Fmt("%.3f", warm->P50LatencyMs()),
                      TablePrinter::FormatCount(warm->DataPointsPerSecond()),
                      std::to_string(warm_stats.blobs_decoded),
                      std::to_string(warm_stats.blob_cache_hits),
                      TablePrinter::FormatPercent(hit_rate)});
  cache_table.Print("Decoded-blob cache — cold vs warm (TQ1 over 8 segments)");
  json->Key("cache");
  json->BeginObject();
  json->KeyValue("capacity_bytes",
                 static_cast<int64_t>(cache_options.blob_cache_bytes));
  json->KeyValue("cold_p50_ms", cold->P50LatencyMs());
  json->KeyValue("warm_p50_ms", warm->P50LatencyMs());
  json->KeyValue("cold_blobs_decoded", cold_stats.blobs_decoded);
  json->KeyValue("warm_blobs_decoded", warm_stats.blobs_decoded);
  json->KeyValue("warm_cache_hits", warm_stats.blob_cache_hits);
  json->KeyValue("warm_hit_rate", hit_rate);
  json->KeyValue("warm_speedup", cache_speedup);
  json->EndObject();
  json->EndObject();
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  int max_threads = ThreadsFromArgs(argc, argv, 1);
  const bool smoke = SmokeFromArgs(argc, argv);
  if (smoke) scale = std::min(scale, 0.25);
  PrintHeader("IoT-X WS2: query performance",
              "Table 8 (TQ1-TQ4 on TD(5,2), LQ1-LQ4 on LD(5))",
              smoke ? "Smoke mode: tiny TD dataset, ODH aggregate paths only."
                    : "Scaled datasets; 100 queries per template; throughput "
                      "in returned data points per second.");

  if (smoke) {
    const int64_t accounts = std::max<int64_t>(4, static_cast<int64_t>(
                                                      20 * scale));
    TdConfig td = TdConfig::Of(5, 2, accounts, /*duration_seconds=*/20);
    LdConfig ld = LdConfig::Of(5, 8, /*duration_seconds=*/30);
    ld.first_id = 10000001;
    Candidate odh = MakeOdh(td, ld);
    JsonWriter json;
    json.BeginObject();
    json.KeyValue("bench", "table8_queries");
    json.KeyValue("smoke", true);
    RunAggregateComparison(
        odh.odh->odh(), td.num_accounts,
        static_cast<Timestamp>(td.duration_seconds * kMicrosPerSecond),
        /*queries_per_template=*/5, &json);
    RunParallelCacheSection(scale, /*queries_per_depth=*/5, &json);
    json.EndObject();
    if (json.WriteFile("BENCH_queries.json")) {
      std::printf("Query data written to BENCH_queries.json\n");
    }
    return 0;
  }

  const int64_t account_unit = static_cast<int64_t>(20 * scale);
  const int64_t sensor_unit = static_cast<int64_t>(600 * scale);
  TdConfig td = TdConfig::Of(5, 2, account_unit, /*duration_seconds=*/20);
  LdConfig ld = LdConfig::Of(5, sensor_unit, /*duration_seconds=*/120);
  ld.first_id = 10000001;  // Keep LD source ids disjoint from TD accounts.
  const int64_t num_accounts = td.num_accounts;
  const int64_t num_sensors = ld.num_sensors;
  const Timestamp td_span =
      static_cast<Timestamp>(td.duration_seconds * kMicrosPerSecond);
  const Timestamp ld_span =
      static_cast<Timestamp>(ld.duration_seconds * kMicrosPerSecond);

  std::printf("Loading candidates (TD(5,2): %lld accounts x 40 Hz x 20 s; "
              "LD(5): %lld sensors)...\n",
              static_cast<long long>(num_accounts),
              static_cast<long long>(num_sensors));
  std::vector<Candidate> candidates;
  candidates.push_back(MakeOdh(td, ld));
  candidates.push_back(
      MakeRelational(relational::EngineProfile::Rdb(), td, ld));
  candidates.push_back(
      MakeRelational(relational::EngineProfile::MySql(), td, ld));

  struct TemplateResult {
    std::string name;
    std::vector<QueryMetrics> per_candidate;
  };
  std::vector<TemplateResult> results;

  auto run_template =
      [&](const std::string& name, bool ld_side,
          const std::function<std::string(const Candidate&, Random&)>& make) {
        TemplateResult result;
        result.name = name;
        for (Candidate& c : candidates) {
          Random rng(0xBEEF ^ std::hash<std::string>{}(name));
          sql::SqlEngine* engine = ld_side ? c.LdEngine() : c.TdEngine();
          auto metrics =
              benchfw::RunQueryWorkload(engine, kQueriesPerTemplate,
                                        [&](int) { return make(c, rng); });
          ODH_CHECK_OK(metrics.status());
          result.per_candidate.push_back(*metrics);
        }
        results.push_back(std::move(result));
        std::printf("  %s done\n", name.c_str());
        std::fflush(stdout);
      };

  // TQ1: historical query.
  run_template("TQ1", false, [&](const Candidate& c, Random& rng) {
    return "SELECT * FROM " + c.TdTable() + " WHERE id = " +
           std::to_string(1 + rng.Uniform(num_accounts));
  });
  // TQ2: slice query.
  run_template("TQ2", false, [&](const Candidate& c, Random& rng) {
    Timestamp dt = rng.UniformRange(1, 3) * kMicrosPerSecond;
    Timestamp t = rng.UniformRange(0, td_span - dt);
    return "SELECT * FROM " + c.TdTable() + " WHERE ts BETWEEN " +
           TsLiteral(t) + " AND " + TsLiteral(t + dt);
  });
  // TQ3: fuse with the account table, single data source.
  run_template("TQ3", false, [&](const Candidate& c, Random& rng) {
    return "SELECT ts, t_chrg FROM " + c.TdTable() +
           " t, account a WHERE a.ca_id = t.id AND a.ca_name = 'ACCT" +
           std::to_string(1 + rng.Uniform(num_accounts)) + "'";
  });
  // TQ4: fuse with account and customer, multiple data sources.
  run_template("TQ4", false, [&](const Candidate& c, Random& rng) {
    Timestamp t1 = static_cast<Timestamp>(
        (-30.0 + 40.0 * rng.NextDouble()) * 365.25 * 86400.0 *
        kMicrosPerSecond);
    Timestamp t2 =
        t1 + static_cast<Timestamp>(2.0 * 365.25 * 86400.0 *
                                    kMicrosPerSecond);
    return "SELECT ca_name, ts, t_chrg FROM " + c.TdTable() +
           " t, account a, customer c WHERE a.ca_id = t.id AND "
           "a.ca_c_id = c.c_id AND c_dob BETWEEN " +
           TsLiteral(t1) + " AND " + TsLiteral(t2);
  });
  // LQ1: historical query on a low-frequency sensor.
  run_template("LQ1", true, [&](const Candidate& c, Random& rng) {
    return "SELECT * FROM " + c.LdTable() + " WHERE id = " +
           std::to_string(ld.first_id +
                          static_cast<SourceId>(rng.Uniform(num_sensors)));
  });
  // LQ2: slice query projecting one tag.
  run_template("LQ2", true, [&](const Candidate& c, Random& rng) {
    Timestamp dt = rng.UniformRange(1, 10) * kMicrosPerSecond;
    Timestamp t = rng.UniformRange(0, ld_span - dt);
    return "SELECT ts, id, airtemperature FROM " + c.LdTable() +
           " WHERE ts BETWEEN " + TsLiteral(t) + " AND " + TsLiteral(t + dt);
  });
  // LQ3: fuse with linkedsensor by name, single data source.
  run_template("LQ3", true, [&](const Candidate& c, Random& rng) {
    return "SELECT ts, o.id, airtemperature FROM " + c.LdTable() +
           " o, linkedsensor l WHERE l.sensorid = o.id AND sensorname = 'A" +
           std::to_string(ld.first_id +
                          static_cast<SourceId>(rng.Uniform(num_sensors))) +
           "'";
  });
  // LQ4: fuse by geographic box, multiple data sources.
  run_template("LQ4", true, [&](const Candidate& c, Random& rng) {
    double la1 = 25.0 + 20.0 * rng.NextDouble();
    double la2 = la1 + 2.0;
    double lo1 = -125.0 + 50.0 * rng.NextDouble();
    double lo2 = lo1 + 5.0;
    return "SELECT ts, o.id, airtemperature FROM " + c.LdTable() +
           " o, linkedsensor l WHERE l.sensorid = o.id AND latitude > " +
           Fmt("%.4f", la1) + " AND latitude < " + Fmt("%.4f", la2) +
           " AND longitude > " + Fmt("%.4f", lo1) + " AND longitude < " +
           Fmt("%.4f", lo2);
  });

  TablePrinter table({"Query", "ODH dp/s", "ODH CPU", "RDB dp/s", "RDB CPU",
                      "MySQL dp/s", "MySQL CPU"});
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "table8_queries");
  json.KeyValue(
      "hardware_concurrency",
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.KeyValue("queries_per_template", kQueriesPerTemplate);
  json.Key("templates");
  json.BeginArray();
  for (const TemplateResult& result : results) {
    std::vector<std::string> row = {result.name};
    json.BeginObject();
    json.KeyValue("name", result.name);
    json.Key("candidates");
    json.BeginArray();
    for (size_t ci = 0; ci < result.per_candidate.size(); ++ci) {
      const QueryMetrics& m = result.per_candidate[ci];
      row.push_back(TablePrinter::FormatCount(m.DataPointsPerSecond()));
      row.push_back(TablePrinter::FormatPercent(
          m.wall_seconds > 0
              ? m.cpu_seconds / m.wall_seconds / kSimulatedCores
              : 0));
      json.BeginObject();
      json.KeyValue("name", candidates[ci].name);
      json.KeyValue("data_points_per_second", m.DataPointsPerSecond());
      json.KeyValue("avg_latency_ms", m.AvgLatencyMs());
      json.KeyValue("p50_ms", m.P50LatencyMs());
      json.KeyValue("p95_ms", m.P95LatencyMs());
      json.KeyValue("p99_ms", m.P99LatencyMs());
      json.EndObject();
    }
    json.EndArray();
    json.EndObject();
    table.AddRow(row);
  }
  json.EndArray();
  table.Print("Table 8 — query performance (scaled datasets)");

  TablePrinter latency_table({"Query", "ODH p50/p95/p99 ms",
                              "RDB p50/p95/p99 ms",
                              "MySQL p50/p95/p99 ms"});
  for (const TemplateResult& result : results) {
    std::vector<std::string> row = {result.name};
    for (const QueryMetrics& m : result.per_candidate) {
      row.push_back(Fmt("%.3f", m.P50LatencyMs()) + "/" +
                    Fmt("%.3f", m.P95LatencyMs()) + "/" +
                    Fmt("%.3f", m.P99LatencyMs()));
    }
    latency_table.AddRow(row);
  }
  latency_table.Print("Table 8 — per-query latency percentiles");

  RunAggregateComparison(candidates[0].odh->odh(), num_accounts, td_span,
                         kQueriesPerTemplate, &json);
  RunReadScalingCurve(max_threads, scale, &json);
  RunParallelCacheSection(scale, kQueriesPerTemplate, &json);
  json.EndObject();
  if (json.WriteFile("BENCH_queries.json")) {
    std::printf("Query data written to BENCH_queries.json\n");
  }
  std::printf(
      "\nExpected shape: RDB/MySQL ahead on TQ1/TQ2/LQ1/LQ2 (ODH pays VTI\n"
      "row assembly + SQL metadata router; LQ1's tiny results make the\n"
      "router dominate); ODH ahead on the single-tag fused templates\n"
      "TQ3/TQ4/LQ4 (tag-oriented blob decode).\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
