// Reproduces paper Table 3: "ODH test for connected vehicles" — a single
// ODH server ingesting telematics records from 100k/200k/300k vehicles at
// 10-second intervals, reporting insert throughput (data points/s), I/O
// throughput (bytes/s), CPU load and total MB written.
//
// Scaling: vehicle counts are 1/10 of the paper's; each vehicle record
// carries 22 CAN-bus style signals (the paper's dp/record ratio implies a
// few hundred signals per record; 22 keeps runs short while preserving the
// trend). Expected shape: throughput, I/O and MB written scale ~linearly
// with the vehicle count, CPU load grows with it.

#include <cmath>

#include "bench/bench_util.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::IngestRunOptions;
using benchfw::OdhTarget;
using benchfw::StreamInfo;

constexpr int kSignals = 22;

class VehicleStream : public benchfw::RecordStream {
 public:
  VehicleStream(int64_t vehicles, double duration_seconds) {
    info_.name = "vehicles";
    for (int s = 0; s < kSignals; ++s) {
      info_.tag_names.push_back("signal" + std::to_string(s));
    }
    info_.num_sources = vehicles;
    info_.first_source_id = 1;
    info_.sample_interval = 10 * kMicrosPerSecond;
    info_.regular = true;
    // Points = records * signals (every signal reported).
    info_.offered_points_per_second =
        static_cast<double>(vehicles) / 10.0 * kSignals;
    info_.expected_records =
        static_cast<int64_t>(vehicles * duration_seconds / 10.0);
  }

  const StreamInfo& info() const override { return info_; }

  bool Next(core::OperationalRecord* record) override {
    if (next_ >= info_.expected_records) return false;
    int64_t k = next_++;
    int64_t vehicle = k % info_.num_sources;
    int64_t tick = k / info_.num_sources;
    record->id = 1 + vehicle;
    record->ts = tick * info_.sample_interval;
    record->tags.resize(kSignals);
    double speed = 50 + 30 * std::sin(0.01 * tick + vehicle * 0.1);
    for (int s = 0; s < kSignals; ++s) {
      record->tags[s] = speed + s;  // Correlated smooth signals.
    }
    return true;
  }

  void Reset() override { next_ = 0; }

 private:
  StreamInfo info_;
  int64_t next_ = 0;
};

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  PrintHeader("IoT-X / ODH: connected vehicles",
              "Table 3 (vehicle counts vs throughput/IO/CPU/MB)",
              "Vehicle counts scaled 1/10; 22 signals per record; 16-core "
              "machine simulated (paper: IBM P750).");

  const int64_t vehicle_settings[] = {10000, 20000, 30000};
  TablePrinter table({"#", "Vehicle Number", "Avg Insert Throu. (dp/s)",
                      "Avg IO Throu. (bytes/s)", "Avg CPU Load",
                      "Total MB written"});
  int row = 1;
  for (int64_t base : vehicle_settings) {
    int64_t vehicles = static_cast<int64_t>(base * scale);
    VehicleStream stream(vehicles, /*duration_seconds=*/200);
    OdhTarget target;
    ODH_CHECK_OK(target.Setup(stream.info()));
    target.odh()->ResetIoStats();  // Exclude registration I/O.
    IngestRunOptions options;
    options.simulated_cores = 16;
    auto metrics = benchfw::RunIngest(&stream, &target, options);
    ODH_CHECK_OK(metrics.status());
    // Data points = records * signals.
    double dp_per_second = metrics->Throughput() * kSignals;
    table.AddRow(
        {std::to_string(row++),
         std::to_string(vehicles) + " (paper: " + std::to_string(base * 10) +
             ")",
         TablePrinter::FormatCount(dp_per_second),
         TablePrinter::FormatCount(metrics->IoBytesPerSecond()),
         Fmt("%.2f%%", metrics->AvgCpuLoad() * 100),
         Fmt("%.1f", static_cast<double>(metrics->bytes_written) /
                         (1024.0 * 1024.0))});
  }
  table.Print("Table 3 — connected vehicles (scaled 1/10)");
  std::printf(
      "\nExpected shape: insert/IO throughput and MB written scale\n"
      "~linearly with the vehicle count; CPU load grows with it (paper:\n"
      "2.2M/4.4M/5.6M dp/s, 8.6%%/19.1%%/41.2%% CPU).\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
