// Reproduces paper Figure 6: insert throughput (a) and CPU rate (b) for the
// 10 LD(i) datasets (sparse low-frequency weather sensors), candidates
// ODH / RDB / MySQL.
//
// Scaling: sensor unit 20000 (paper: 1,000,000), 60 s of simulated data
// per dataset (the paper's 60x-sped-up streams truncated to two hours).
// Expected shape: ODH sustains the offered rate everywhere via MG batching;
// the relational candidates' throughput is higher than on TD (bigger
// records, paper §5.3) but still falls behind ODH and below the offered
// line at large i.

#include <algorithm>
#include <cmath>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "benchfw/json_report.h"
#include "benchfw/ld_generator.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::IngestMetrics;
using benchfw::IngestRunOptions;
using benchfw::JsonWriter;
using benchfw::LdConfig;
using benchfw::LdGenerator;
using benchfw::OdhTarget;
using benchfw::RelationalTarget;

IngestMetrics RunOne(const LdConfig& config, benchfw::IngestTarget* target,
                     double wall_limit) {
  LdGenerator stream(config);
  ODH_CHECK_OK(target->Setup(stream.info()));
  IngestRunOptions options;
  options.simulated_cores = 8;
  options.wall_time_limit_seconds = wall_limit;
  options.window_seconds = 5.0;
  auto metrics = benchfw::RunIngest(&stream, target, options);
  ODH_CHECK_OK(metrics.status());
  return *metrics;
}

/// Average non-NULL tag values per record (the dp multiplier: the paper
/// counts data points, not records).
double DpPerRecord(const LdConfig& config) {
  LdGenerator gen(config);
  core::OperationalRecord record;
  int64_t present = 0, records = 0;
  while (records < 200 && gen.Next(&record)) {
    for (double v : record.tags) {
      if (!std::isnan(v)) ++present;
    }
    ++records;
  }
  return records > 0 ? static_cast<double>(present) / records : 0;
}

/// Multi-core scaling on the low-frequency (MG-grouped) write path: LD(5)
/// split into disjoint sensor-id partitions, one ingest thread each. Group
/// buffers at partition boundaries may be shared by two threads — the
/// sharded writer serializes them per group, which is exactly the
/// contention this curve exercises.
void RunScalingCurve(int max_threads, int64_t sensor_unit) {
  std::vector<int> curve;
  for (int t = 1; t < max_threads; t *= 2) curve.push_back(t);
  curve.push_back(max_threads);
  const double duration = 60;
  const int64_t total_sensors = sensor_unit * 5;  // LD(5) shape.

  TablePrinter table(
      {"Threads", "Points", "Wall s", "rec/s", "Speedup vs 1T"});
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "fig6_ld_ingest_threads");
  json.KeyValue("dataset", "LD(5)");
  json.KeyValue("total_sensors", total_sensors);
  json.KeyValue(
      "hardware_concurrency",
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Key("runs");
  json.BeginArray();
  double base_rate = 0;
  for (int threads : curve) {
    const int64_t per_thread =
        std::max<int64_t>(1, total_sensors / threads);
    std::vector<std::unique_ptr<LdGenerator>> streams;
    std::vector<benchfw::RecordStream*> stream_ptrs;
    for (int t = 0; t < threads; ++t) {
      LdConfig part;
      part.num_sensors = per_thread;
      part.duration_seconds = duration;
      part.seed = static_cast<uint64_t>(9005 + t);
      part.first_id = 1 + t * per_thread;
      streams.push_back(std::make_unique<LdGenerator>(part));
      stream_ptrs.push_back(streams.back().get());
    }
    OdhTarget odh;
    {
      LdConfig all;
      all.num_sensors = per_thread * threads;
      all.duration_seconds = duration;
      ODH_CHECK_OK(odh.Setup(LdGenerator(all).info()));
    }
    IngestRunOptions options;
    options.simulated_cores = 8;
    auto metrics = benchfw::RunIngestThreads(stream_ptrs, &odh, options);
    ODH_CHECK_OK(metrics.status());
    double rate = metrics->Throughput();
    if (threads == 1) base_rate = rate;
    double speedup = base_rate > 0 ? rate / base_rate : 0;
    table.AddRow(
        {std::to_string(threads),
         TablePrinter::FormatCount(static_cast<double>(metrics->points)),
         Fmt("%.3f", metrics->wall_seconds),
         TablePrinter::FormatCount(rate), Fmt("%.2fx", speedup)});
    json.BeginObject();
    json.KeyValue("threads", threads);
    json.KeyValue("points", metrics->points);
    json.KeyValue("wall_seconds", metrics->wall_seconds);
    json.KeyValue("cpu_seconds", metrics->cpu_seconds);
    json.KeyValue("records_per_second", rate);
    json.KeyValue("speedup_vs_1_thread", speedup);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  table.Print("Multi-core LD ingest scaling (MG write path)");
  if (json.WriteFile("BENCH_ld_ingest.json")) {
    std::printf("Scaling data written to BENCH_ld_ingest.json\n");
  }
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  int max_threads = ThreadsFromArgs(argc, argv, 1);
  PrintHeader(
      "IoT-X WS1: LD insert throughput and CPU rate",
      "Figure 6 (a: throughput, b: CPU rate) over LD(i), i=1..10",
      "Sensor unit scaled to 20000 (paper: 1,000,000); 60 s of simulated "
      "data; dp/s counts non-NULL tag values per record.");

  const int64_t sensor_unit = static_cast<int64_t>(20000 * scale);
  TablePrinter table({"Dataset", "# Sensors", "Offered dp/s", "ODH dp/s",
                      "ODH CPU", "ODH RT?", "RDB dp/s", "RDB CPU", "RDB RT?",
                      "MySQL dp/s", "MySQL CPU", "MySQL RT?"});
  for (int i = 1; i <= 10; ++i) {
    LdConfig config = LdConfig::Of(i, sensor_unit, /*duration_seconds=*/60);
    double dp_mult = DpPerRecord(config);

    OdhTarget odh;
    IngestMetrics m_odh = RunOne(config, &odh, /*wall_limit=*/0);
    RelationalTarget rdb(relational::EngineProfile::Rdb(), 1000);
    IngestMetrics m_rdb = RunOne(config, &rdb, /*wall_limit=*/3);
    RelationalTarget mysql(relational::EngineProfile::MySql(), 1000);
    IngestMetrics m_mysql = RunOne(config, &mysql, /*wall_limit=*/3);

    auto rt = [](const IngestMetrics& m) {
      return m.RealTimeFeasible() ? std::string("yes") : std::string("NO");
    };
    table.AddRow(
        {"LD(" + std::to_string(i) + ")",
         TablePrinter::FormatCount(static_cast<double>(config.num_sensors)),
         TablePrinter::FormatCount(m_odh.offered_points_per_second * dp_mult),
         TablePrinter::FormatCount(m_odh.Throughput() * dp_mult),
         Fmt("%.2f%%", m_odh.AvgCpuLoad() * 100), rt(m_odh),
         TablePrinter::FormatCount(m_rdb.Throughput() * dp_mult),
         Fmt("%.2f%%", m_rdb.AvgCpuLoad() * 100), rt(m_rdb),
         TablePrinter::FormatCount(m_mysql.Throughput() * dp_mult),
         Fmt("%.2f%%", m_mysql.AvgCpuLoad() * 100), rt(m_mysql)});
  }
  table.Print("Figure 6 — LD(i) insert throughput & CPU (8 cores sim.)");
  RunScalingCurve(max_threads, sensor_unit / 10);
  std::printf(
      "\nExpected shape: ODH ahead of the relational candidates, but by a\n"
      "smaller factor than on TD (larger records amortize the per-record\n"
      "B-tree cost -- the paper's \"RDB performed surprisingly well on\n"
      "LD\"). At this 1/50 scale the offered rates stay below every\n"
      "candidate's ceiling, so RT stays 'yes'; at paper scale the offered\n"
      "line crosses the relational ceilings first.\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
