// Reproduces paper Table 7: "Storage Cost for Selected Datasets (in MB)" —
// bytes stored by ODH, RDB and MySQL after fully ingesting TD(1,1), TD(1,2),
// TD(1,4), TD(2,1), LD(1) and LD(2).
//
// Scaling: account unit 40 / sensor unit 2000, durations 30 s (TD) and
// 120 s (LD). Expected shape: ODH storage smaller than the relational
// candidates by a factor > 3 (paper), MySQL slightly larger than RDB, and
// size growing ~linearly with frequency and source count.
//
// Plus the segment-lifecycle section: a deep-history recent-window query
// on a flat (segment_span = 0) store versus a time-partitioned one (the
// pruned store's page reads track the window, not the history), and the
// compaction before/after footprint. `--smoke` runs a tiny ODH-only
// version for CI. Results land in BENCH_storage.json either way.

#include <algorithm>
#include <cstring>
#include <string>

#include "bench/bench_util.h"
#include "benchfw/json_report.h"
#include "benchfw/ld_generator.h"
#include "benchfw/td_generator.h"
#include "common/logging.h"
#include "sql/session.h"

namespace odh::bench {
namespace {

using benchfw::IngestMetrics;
using benchfw::JsonWriter;
using benchfw::LdConfig;
using benchfw::LdGenerator;
using benchfw::OdhTarget;
using benchfw::RelationalTarget;
using benchfw::TdConfig;
using benchfw::TdGenerator;

bool SmokeFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) return true;
  }
  return false;
}

template <typename Stream>
uint64_t StorageAfterIngest(Stream stream, benchfw::IngestTarget* target) {
  ODH_CHECK_OK(target->Setup(stream.info()));
  auto metrics = benchfw::RunIngest(&stream, target);
  ODH_CHECK_OK(metrics.status());
  return metrics->storage_bytes;
}

struct DatasetRow {
  std::string label;
  uint64_t odh, rdb, mysql;
};

template <typename MakeStream>
DatasetRow MeasureDataset(const std::string& label,
                          const MakeStream& make_stream) {
  DatasetRow row;
  row.label = label;
  {
    OdhTarget target;
    row.odh = StorageAfterIngest(make_stream(), &target);
  }
  {
    RelationalTarget target(relational::EngineProfile::Rdb(), 1000);
    row.rdb = StorageAfterIngest(make_stream(), &target);
  }
  {
    RelationalTarget target(relational::EngineProfile::MySql(), 1000);
    row.mysql = StorageAfterIngest(make_stream(), &target);
  }
  return row;
}

/// Streams `sql` to exhaustion; returns the row count.
int64_t DrainQuery(core::OdhSystem* sys, const std::string& sql) {
  sql::Session session(sys->engine());
  auto stream = session.ExecuteStreaming(sql);
  ODH_CHECK_OK(stream.status());
  Row row;
  int64_t n = 0;
  while ((*stream)->Next(&row).value()) ++n;
  return n;
}

int64_t ProfiledSegmentsPruned(core::OdhSystem* sys, const std::string& sql) {
  auto r = sys->engine()->Execute("EXPLAIN PROFILE " + sql);
  ODH_CHECK_OK(r.status());
  for (const Row& row : r->rows) {
    if (row[0] == Datum::String("segments_pruned")) {
      return row[1].int64_value();
    }
  }
  return 0;
}

/// Deep-history flat-vs-segmented comparison plus compaction
/// before/after. A recent-window slice query (no source predicate, so the
/// flat layout must stream every blob row) against a store whose history
/// is 20x the window: the segmented store answers from one segment and
/// O(segments) manifest checks.
void RunSegmentSection(double scale, JsonWriter* json) {
  const int seconds =
      std::max(400, static_cast<int>(4000 * scale));
  const int num_sources = 8;
  // 10 segments over the history, each holding several 25-point blobs per
  // source (so compaction has contiguous runs to merge).
  const Timestamp span = (seconds / 10) * kMicrosPerSecond;

  auto build = [&](Timestamp segment_span) {
    core::OdhOptions options;
    options.batch_size = 25;
    options.pool_pages = 64;  // History must not fit in the pool.
    options.segment_span = segment_span;
    auto sys = std::make_unique<core::OdhSystem>(options);
    int type = sys->DefineSchemaType("deep", {"v"}).value();
    for (SourceId id = 1; id <= num_sources; ++id) {
      ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, true));
    }
    for (int i = 0; i < seconds; ++i) {
      for (SourceId id = 1; id <= num_sources; ++id) {
        // Hash noise: incompressible, so the deep history is real pages.
        double v = static_cast<double>((i * 1103515245u + id * 48271u) %
                                       100000);
        ODH_CHECK_OK(sys->Ingest(
            {id, static_cast<Timestamp>(i) * kMicrosPerSecond, {v}}));
      }
    }
    ODH_CHECK_OK(sys->FlushAll());
    return sys;
  };

  const Timestamp window_lo =
      static_cast<Timestamp>(seconds - seconds / 20) * kMicrosPerSecond;
  const std::string recent =
      "SELECT ts, v FROM deep_v WHERE ts >= " + std::to_string(window_lo);
  const std::string full_scan = "SELECT ts, v FROM deep_v";

  struct Measured {
    double micros = 0;
    uint64_t page_reads = 0;
    int64_t rows = 0;
  };
  auto measure = [](core::OdhSystem* sys, const std::string& sql) {
    Measured m;
    sys->ResetIoStats();
    Stopwatch timer;
    m.rows = DrainQuery(sys, sql);
    m.micros = static_cast<double>(timer.ElapsedMicros());
    m.page_reads = sys->io_stats().page_reads;
    return m;
  };

  auto flat = build(0);
  auto segmented = build(span);

  const Measured flat_recent = measure(flat.get(), recent);
  const Measured seg_recent = measure(segmented.get(), recent);
  ODH_CHECK(flat_recent.rows == seg_recent.rows);
  const int64_t pruned = ProfiledSegmentsPruned(segmented.get(), recent);

  TablePrinter table({"Layout", "recent-window micros", "page reads",
                      "segments pruned"});
  table.AddRow({"flat", Fmt("%.0f", flat_recent.micros),
                std::to_string(flat_recent.page_reads), "0"});
  table.AddRow({"segmented", Fmt("%.0f", seg_recent.micros),
                std::to_string(seg_recent.page_reads),
                std::to_string(pruned)});
  table.Print("Deep history (" + std::to_string(seconds) +
              " s), recent-window slice query (last 5%)");

  // Compaction: footprint and full-scan cost, before and after.
  const Measured scan_before = measure(segmented.get(), full_scan);
  const uint64_t storage_before = segmented->storage_bytes();
  auto report = segmented->CompactSegments(0);
  ODH_CHECK_OK(report.status());
  const Measured scan_after = measure(segmented.get(), full_scan);
  ODH_CHECK(scan_before.rows == scan_after.rows);

  TablePrinter compaction({"", "blobs", "blob bytes", "full-scan micros"});
  compaction.AddRow({"before", std::to_string(report->blobs_before),
                     std::to_string(report->bytes_before),
                     Fmt("%.0f", scan_before.micros)});
  compaction.AddRow({"after", std::to_string(report->blobs_after),
                     std::to_string(report->bytes_after),
                     Fmt("%.0f", scan_after.micros)});
  compaction.Print("Compaction (" +
                   std::to_string(report->segments_compacted) +
                   " sealed segments rewritten)");

  json->Key("segments");
  json->BeginObject();
  json->KeyValue("history_seconds", seconds);
  json->KeyValue("segment_span_micros", span);
  json->KeyValue("flat_recent_micros", flat_recent.micros);
  json->KeyValue("flat_recent_page_reads", flat_recent.page_reads);
  json->KeyValue("segmented_recent_micros", seg_recent.micros);
  json->KeyValue("segmented_recent_page_reads", seg_recent.page_reads);
  json->KeyValue("segments_pruned", pruned);
  json->Key("compaction");
  json->BeginObject();
  json->KeyValue("segments_compacted", report->segments_compacted);
  json->KeyValue("blobs_before", report->blobs_before);
  json->KeyValue("blobs_after", report->blobs_after);
  json->KeyValue("bytes_before", report->bytes_before);
  json->KeyValue("bytes_after", report->bytes_after);
  json->KeyValue("storage_bytes_before", storage_before);
  json->KeyValue("storage_bytes_after", segmented->storage_bytes());
  json->KeyValue("full_scan_micros_before", scan_before.micros);
  json->KeyValue("full_scan_micros_after", scan_after.micros);
  json->EndObject();
  json->EndObject();
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  const bool smoke = SmokeFromArgs(argc, argv);
  if (smoke) scale = std::min(scale, 0.1);
  PrintHeader("IoT-X: storage cost for selected datasets",
              "Table 7 (storage in MB for TD/LD datasets)",
              smoke ? "Smoke mode: segment lifecycle section only, tiny "
                      "deep-history dataset."
                    : "Account unit 40, sensor unit 2000 (scaled); full "
                      "ingest, then bytes stored (heap + indexes + WAL).");

  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "table7_storage");
  json.KeyValue("smoke", smoke);
  if (smoke) {
    RunSegmentSection(scale, &json);
    json.EndObject();
    if (json.WriteFile("BENCH_storage.json")) {
      std::printf("Storage data written to BENCH_storage.json\n");
    }
    return 0;
  }

  const int64_t account_unit = static_cast<int64_t>(40 * scale);
  const int64_t sensor_unit = static_cast<int64_t>(2000 * scale);
  const double td_duration = 30, ld_duration = 120;

  std::vector<DatasetRow> rows;
  for (auto [i, j] : {std::pair{1, 1}, {1, 2}, {1, 4}, {2, 1}}) {
    rows.push_back(MeasureDataset(
        "TD(" + std::to_string(i) + "," + std::to_string(j) + ")",
        [&, i = i, j = j] {
          return TdGenerator(TdConfig::Of(i, j, account_unit, td_duration));
        }));
  }
  for (int i : {1, 2}) {
    rows.push_back(MeasureDataset("LD(" + std::to_string(i) + ")", [&] {
      return LdGenerator(LdConfig::Of(i, sensor_unit, ld_duration));
    }));
  }

  TablePrinter table({"Candidate", rows[0].label, rows[1].label,
                      rows[2].label, rows[3].label, rows[4].label,
                      rows[5].label});
  auto mb = [](uint64_t bytes) {
    return Fmt("%.1f", static_cast<double>(bytes) / (1024.0 * 1024.0));
  };
  std::vector<std::string> odh_row = {"ODH"}, rdb_row = {"RDB"},
                           mysql_row = {"MySQL"}, ratio_row = {"RDB/ODH"};
  for (const DatasetRow& row : rows) {
    odh_row.push_back(mb(row.odh));
    rdb_row.push_back(mb(row.rdb));
    mysql_row.push_back(mb(row.mysql));
    ratio_row.push_back(
        Fmt("%.1fx", static_cast<double>(row.rdb) /
                         static_cast<double>(row.odh)));
  }
  table.AddRow(odh_row);
  table.AddRow(rdb_row);
  table.AddRow(mysql_row);
  table.AddRow(ratio_row);
  table.Print("Table 7 — storage cost (MB, scaled datasets)");
  std::printf(
      "\nExpected shape: ODH smaller than RDB/MySQL by > 3x; MySQL slightly\n"
      "larger than RDB; size ~linear in frequency (TD(1,1)->TD(1,2)->\n"
      "TD(1,4)) and in source count (TD(1,1)->TD(2,1), LD(1)->LD(2)).\n");

  json.Key("table7");
  json.BeginArray();
  for (const DatasetRow& row : rows) {
    json.BeginObject();
    json.KeyValue("dataset", row.label);
    json.KeyValue("odh_bytes", row.odh);
    json.KeyValue("rdb_bytes", row.rdb);
    json.KeyValue("mysql_bytes", row.mysql);
    json.EndObject();
  }
  json.EndArray();

  RunSegmentSection(scale, &json);
  json.EndObject();
  if (json.WriteFile("BENCH_storage.json")) {
    std::printf("Storage data written to BENCH_storage.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
