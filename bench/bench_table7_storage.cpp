// Reproduces paper Table 7: "Storage Cost for Selected Datasets (in MB)" —
// bytes stored by ODH, RDB and MySQL after fully ingesting TD(1,1), TD(1,2),
// TD(1,4), TD(2,1), LD(1) and LD(2).
//
// Scaling: account unit 40 / sensor unit 2000, durations 30 s (TD) and
// 120 s (LD). Expected shape: ODH storage smaller than the relational
// candidates by a factor > 3 (paper), MySQL slightly larger than RDB, and
// size growing ~linearly with frequency and source count.

#include "bench/bench_util.h"
#include "benchfw/ld_generator.h"
#include "benchfw/td_generator.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::IngestMetrics;
using benchfw::LdConfig;
using benchfw::LdGenerator;
using benchfw::OdhTarget;
using benchfw::RelationalTarget;
using benchfw::TdConfig;
using benchfw::TdGenerator;

template <typename Stream>
uint64_t StorageAfterIngest(Stream stream, benchfw::IngestTarget* target) {
  ODH_CHECK_OK(target->Setup(stream.info()));
  auto metrics = benchfw::RunIngest(&stream, target);
  ODH_CHECK_OK(metrics.status());
  return metrics->storage_bytes;
}

struct DatasetRow {
  std::string label;
  uint64_t odh, rdb, mysql;
};

template <typename MakeStream>
DatasetRow MeasureDataset(const std::string& label,
                          const MakeStream& make_stream) {
  DatasetRow row;
  row.label = label;
  {
    OdhTarget target;
    row.odh = StorageAfterIngest(make_stream(), &target);
  }
  {
    RelationalTarget target(relational::EngineProfile::Rdb(), 1000);
    row.rdb = StorageAfterIngest(make_stream(), &target);
  }
  {
    RelationalTarget target(relational::EngineProfile::MySql(), 1000);
    row.mysql = StorageAfterIngest(make_stream(), &target);
  }
  return row;
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  PrintHeader("IoT-X: storage cost for selected datasets",
              "Table 7 (storage in MB for TD/LD datasets)",
              "Account unit 40, sensor unit 2000 (scaled); full ingest, "
              "then bytes stored (heap + indexes + WAL).");

  const int64_t account_unit = static_cast<int64_t>(40 * scale);
  const int64_t sensor_unit = static_cast<int64_t>(2000 * scale);
  const double td_duration = 30, ld_duration = 120;

  std::vector<DatasetRow> rows;
  for (auto [i, j] : {std::pair{1, 1}, {1, 2}, {1, 4}, {2, 1}}) {
    rows.push_back(MeasureDataset(
        "TD(" + std::to_string(i) + "," + std::to_string(j) + ")",
        [&, i = i, j = j] {
          return TdGenerator(TdConfig::Of(i, j, account_unit, td_duration));
        }));
  }
  for (int i : {1, 2}) {
    rows.push_back(MeasureDataset("LD(" + std::to_string(i) + ")", [&] {
      return LdGenerator(LdConfig::Of(i, sensor_unit, ld_duration));
    }));
  }

  TablePrinter table({"Candidate", rows[0].label, rows[1].label,
                      rows[2].label, rows[3].label, rows[4].label,
                      rows[5].label});
  auto mb = [](uint64_t bytes) {
    return Fmt("%.1f", static_cast<double>(bytes) / (1024.0 * 1024.0));
  };
  std::vector<std::string> odh_row = {"ODH"}, rdb_row = {"RDB"},
                           mysql_row = {"MySQL"}, ratio_row = {"RDB/ODH"};
  for (const DatasetRow& row : rows) {
    odh_row.push_back(mb(row.odh));
    rdb_row.push_back(mb(row.rdb));
    mysql_row.push_back(mb(row.mysql));
    ratio_row.push_back(
        Fmt("%.1fx", static_cast<double>(row.rdb) /
                         static_cast<double>(row.odh)));
  }
  table.AddRow(odh_row);
  table.AddRow(rdb_row);
  table.AddRow(mysql_row);
  table.AddRow(ratio_row);
  table.Print("Table 7 — storage cost (MB, scaled datasets)");
  std::printf(
      "\nExpected shape: ODH smaller than RDB/MySQL by > 3x; MySQL slightly\n"
      "larger than RDB; size ~linear in frequency (TD(1,1)->TD(1,2)->\n"
      "TD(1,4)) and in source count (TD(1,1)->TD(2,1), LD(1)->LD(2)).\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
