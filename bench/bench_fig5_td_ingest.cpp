// Reproduces paper Figure 5: insert throughput (a) and CPU rate (b) for the
// 25 TD(i, j) datasets, candidates ODH / RDB / MySQL. The red dashed line of
// the paper (offered rate of the data sources) is printed per row; a
// candidate that cannot reach it within the wall-time budget "fails
// real-time" exactly as the paper's force-terminated runs did.
//
// Scaling: account unit 200 (paper: 1000), 2 simulated seconds per dataset,
// relational candidates use executeBatch(1000). Expected shape: ODH beats
// both relational candidates by >= an order of magnitude on throughput and
// stays real-time feasible everywhere; MySQL trails RDB.

#include <algorithm>
#include <memory>
#include <thread>

#include "bench/bench_util.h"
#include "benchfw/json_report.h"
#include "benchfw/td_generator.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::IngestMetrics;
using benchfw::IngestRunOptions;
using benchfw::JsonWriter;
using benchfw::OdhTarget;
using benchfw::RelationalTarget;
using benchfw::TdConfig;
using benchfw::TdGenerator;

IngestMetrics RunOne(const TdConfig& config, benchfw::IngestTarget* target,
                     double wall_limit) {
  TdGenerator stream(config);
  ODH_CHECK_OK(target->Setup(stream.info()));
  IngestRunOptions options;
  options.simulated_cores = 8;  // Paper's benchmark box: 8-core Power PC.
  options.wall_time_limit_seconds = wall_limit;
  auto metrics = benchfw::RunIngest(&stream, target, options);
  ODH_CHECK_OK(metrics.status());
  return *metrics;
}

/// Multi-core scaling curve: the TD(5,5) dataset split into `threads`
/// disjoint account partitions, one generator (and one ingest thread) per
/// partition, all feeding one OdhSystem through the sharded writer.
IngestMetrics RunThreaded(int threads, int64_t total_accounts,
                          double duration) {
  const int64_t per_thread = std::max<int64_t>(1, total_accounts / threads);
  std::vector<std::unique_ptr<TdGenerator>> streams;
  std::vector<benchfw::RecordStream*> stream_ptrs;
  for (int t = 0; t < threads; ++t) {
    TdConfig part;
    part.num_accounts = per_thread;
    part.per_account_hz = 100;  // j = 5.
    part.duration_seconds = duration;
    part.seed = static_cast<uint64_t>(5005 + t);
    part.first_source_id = 1 + t * per_thread;
    streams.push_back(std::make_unique<TdGenerator>(part));
    stream_ptrs.push_back(streams.back().get());
  }

  OdhTarget odh;
  // Register every partition's sources up front (one schema type; Setup
  // defines it, the rest only add sources).
  {
    TdConfig all;
    all.num_accounts = per_thread * threads;
    all.per_account_hz = 100;
    all.duration_seconds = duration;
    ODH_CHECK_OK(odh.Setup(TdGenerator(all).info()));
  }
  IngestRunOptions options;
  options.simulated_cores = 8;
  auto metrics = benchfw::RunIngestThreads(stream_ptrs, &odh, options);
  ODH_CHECK_OK(metrics.status());
  return *metrics;
}

/// Observability cost on the ingest path: TD(5,5) with the metrics layer
/// wired (default) vs. OdhOptions::enable_metrics = false. Instruments
/// observe at flush/sync granularity, so the budget is <= 3% throughput.
struct OverheadResult {
  double rate_metrics_on = 0;
  double rate_metrics_off = 0;
  double overhead_percent = 0;
};

OverheadResult RunMetricsOverhead(int64_t account_unit, double duration) {
  const TdConfig config = TdConfig::Of(5, 5, account_unit, duration);
  OverheadResult out;
  // Alternate arms and keep each arm's best rate: best-of filters
  // scheduler noise better than averaging on a shared machine.
  for (int rep = 0; rep < 3; ++rep) {
    {
      OdhTarget on(OdhTarget::DefaultOptions());
      out.rate_metrics_on = std::max(
          out.rate_metrics_on, RunOne(config, &on, 0).Throughput());
    }
    {
      core::OdhOptions opts = OdhTarget::DefaultOptions();
      opts.enable_metrics = false;
      OdhTarget off(opts);
      out.rate_metrics_off = std::max(
          out.rate_metrics_off, RunOne(config, &off, 0).Throughput());
    }
  }
  out.overhead_percent =
      out.rate_metrics_off > 0
          ? (out.rate_metrics_off - out.rate_metrics_on) /
                out.rate_metrics_off * 100.0
          : 0.0;
  std::printf(
      "\nObservability overhead, TD(5,5): %s rec/s instrumented vs %s "
      "rec/s bare -> %.2f%% (budget 3%%) %s\n",
      TablePrinter::FormatCount(out.rate_metrics_on).c_str(),
      TablePrinter::FormatCount(out.rate_metrics_off).c_str(),
      out.overhead_percent,
      out.overhead_percent <= 3.0 ? "[within budget]" : "[OVER BUDGET]");
  return out;
}

void RunScalingCurve(int max_threads, int64_t account_unit, double duration,
                     const OverheadResult& overhead) {
  std::vector<int> curve;
  for (int t = 1; t < max_threads; t *= 2) curve.push_back(t);
  curve.push_back(max_threads);
  const int64_t total_accounts = account_unit * 5;  // TD(5,5) shape.

  TablePrinter table(
      {"Threads", "Points", "Wall s", "rec/s", "Speedup vs 1T"});
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "fig5_td_ingest_threads");
  json.KeyValue("dataset", "TD(5,5)");
  json.KeyValue("total_accounts", total_accounts);
  json.KeyValue(
      "hardware_concurrency",
      static_cast<int64_t>(std::thread::hardware_concurrency()));
  json.Key("observability_overhead");
  json.BeginObject();
  json.KeyValue("rate_metrics_on", overhead.rate_metrics_on);
  json.KeyValue("rate_metrics_off", overhead.rate_metrics_off);
  json.KeyValue("overhead_percent", overhead.overhead_percent);
  json.KeyValue("budget_percent", 3.0);
  json.EndObject();
  json.Key("runs");
  json.BeginArray();
  double base_rate = 0;
  for (int threads : curve) {
    IngestMetrics m = RunThreaded(threads, total_accounts, duration);
    double rate = m.Throughput();
    if (threads == 1) base_rate = rate;
    double speedup = base_rate > 0 ? rate / base_rate : 0;
    table.AddRow({std::to_string(threads),
                  TablePrinter::FormatCount(static_cast<double>(m.points)),
                  Fmt("%.3f", m.wall_seconds), TablePrinter::FormatCount(rate),
                  Fmt("%.2fx", speedup)});
    json.BeginObject();
    json.KeyValue("threads", threads);
    json.KeyValue("points", m.points);
    json.KeyValue("wall_seconds", m.wall_seconds);
    json.KeyValue("cpu_seconds", m.cpu_seconds);
    json.KeyValue("records_per_second", rate);
    json.KeyValue("speedup_vs_1_thread", speedup);
    json.EndObject();
  }
  json.EndArray();
  json.EndObject();
  table.Print("Multi-core ingest scaling (sharded writer, one OdhSystem)");
  if (json.WriteFile("BENCH_ingest.json")) {
    std::printf("Scaling data written to BENCH_ingest.json\n");
  }
  std::printf(
      "Note: speedup tops out at the machine's core count "
      "(hardware_concurrency=%u); on a single-core host the curve is flat\n"
      "and only demonstrates correctness under concurrency.\n",
      std::thread::hardware_concurrency());
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  int max_threads = ThreadsFromArgs(argc, argv, 1);
  PrintHeader(
      "IoT-X WS1: TD insert throughput and CPU rate",
      "Figure 5 (a: throughput, b: CPU rate) over TD(i,j), i,j=1..5",
      "Account unit scaled to 200 (paper: 1000); 2 s of simulated data "
      "per dataset; relational candidates commit every 1000 rows.");

  const int64_t account_unit = static_cast<int64_t>(200 * scale);
  const double duration = 2.0;
  const double wall_limit = 1.5;

  TablePrinter table({"Dataset", "Offered rec/s", "ODH rec/s", "ODH CPU",
                      "ODH RT?", "RDB rec/s", "RDB CPU", "RDB RT?",
                      "MySQL rec/s", "MySQL CPU", "MySQL RT?"});
  IngestMetrics last_odh;
  for (int i = 1; i <= 5; ++i) {
    for (int j = 1; j <= 5; ++j) {
      TdConfig config = TdConfig::Of(i, j, account_unit, duration);
      OdhTarget odh;
      IngestMetrics m_odh = RunOne(config, &odh, /*wall_limit=*/0);
      last_odh = m_odh;
      RelationalTarget rdb(relational::EngineProfile::Rdb(), 1000);
      IngestMetrics m_rdb = RunOne(config, &rdb, wall_limit);
      RelationalTarget mysql(relational::EngineProfile::MySql(), 1000);
      IngestMetrics m_mysql = RunOne(config, &mysql, wall_limit);

      auto rt = [](const IngestMetrics& m) {
        return m.RealTimeFeasible() ? std::string("yes") : std::string("NO");
      };
      table.AddRow({"TD(" + std::to_string(i) + "," + std::to_string(j) + ")",
                    TablePrinter::FormatCount(
                        m_odh.offered_points_per_second),
                    TablePrinter::FormatCount(m_odh.Throughput()),
                    Fmt("%.2f%%", m_odh.AvgCpuLoad() * 100),
                    rt(m_odh),
                    TablePrinter::FormatCount(m_rdb.Throughput()),
                    Fmt("%.2f%%", m_rdb.AvgCpuLoad() * 100),
                    rt(m_rdb),
                    TablePrinter::FormatCount(m_mysql.Throughput()),
                    Fmt("%.2f%%", m_mysql.AvgCpuLoad() * 100),
                    rt(m_mysql)});
    }
  }
  table.Print("Figure 5 — TD(i,j) insert throughput & CPU (8 cores sim.)");
  // The durability layer (page CRC32C + store WAL) postdates the paper's
  // numbers; report its cost on the heaviest dataset so regressions show.
  PrintDurability("TD(5,5) ODH", last_odh, CalibrateCrc32cBytesPerSecond());
  const OverheadResult overhead = RunMetricsOverhead(account_unit, duration);
  RunScalingCurve(max_threads, account_unit, duration, overhead);
  std::printf(
      "\nExpected shape: ODH throughput exceeds RDB/MySQL by >= 10x; the\n"
      "relational candidates drop below the offered line (RT? = NO) as i,j\n"
      "grow; CPU load rises ~linearly with the offered rate.\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
