// Reproduces paper Figure 5: insert throughput (a) and CPU rate (b) for the
// 25 TD(i, j) datasets, candidates ODH / RDB / MySQL. The red dashed line of
// the paper (offered rate of the data sources) is printed per row; a
// candidate that cannot reach it within the wall-time budget "fails
// real-time" exactly as the paper's force-terminated runs did.
//
// Scaling: account unit 200 (paper: 1000), 2 simulated seconds per dataset,
// relational candidates use executeBatch(1000). Expected shape: ODH beats
// both relational candidates by >= an order of magnitude on throughput and
// stays real-time feasible everywhere; MySQL trails RDB.

#include "bench/bench_util.h"
#include "benchfw/td_generator.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::IngestMetrics;
using benchfw::IngestRunOptions;
using benchfw::OdhTarget;
using benchfw::RelationalTarget;
using benchfw::TdConfig;
using benchfw::TdGenerator;

IngestMetrics RunOne(const TdConfig& config, benchfw::IngestTarget* target,
                     double wall_limit) {
  TdGenerator stream(config);
  ODH_CHECK_OK(target->Setup(stream.info()));
  IngestRunOptions options;
  options.simulated_cores = 8;  // Paper's benchmark box: 8-core Power PC.
  options.wall_time_limit_seconds = wall_limit;
  auto metrics = benchfw::RunIngest(&stream, target, options);
  ODH_CHECK_OK(metrics.status());
  return *metrics;
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  PrintHeader(
      "IoT-X WS1: TD insert throughput and CPU rate",
      "Figure 5 (a: throughput, b: CPU rate) over TD(i,j), i,j=1..5",
      "Account unit scaled to 200 (paper: 1000); 2 s of simulated data "
      "per dataset; relational candidates commit every 1000 rows.");

  const int64_t account_unit = static_cast<int64_t>(200 * scale);
  const double duration = 2.0;
  const double wall_limit = 1.5;

  TablePrinter table({"Dataset", "Offered rec/s", "ODH rec/s", "ODH CPU",
                      "ODH RT?", "RDB rec/s", "RDB CPU", "RDB RT?",
                      "MySQL rec/s", "MySQL CPU", "MySQL RT?"});
  IngestMetrics last_odh;
  for (int i = 1; i <= 5; ++i) {
    for (int j = 1; j <= 5; ++j) {
      TdConfig config = TdConfig::Of(i, j, account_unit, duration);
      OdhTarget odh;
      IngestMetrics m_odh = RunOne(config, &odh, /*wall_limit=*/0);
      last_odh = m_odh;
      RelationalTarget rdb(relational::EngineProfile::Rdb(), 1000);
      IngestMetrics m_rdb = RunOne(config, &rdb, wall_limit);
      RelationalTarget mysql(relational::EngineProfile::MySql(), 1000);
      IngestMetrics m_mysql = RunOne(config, &mysql, wall_limit);

      auto rt = [](const IngestMetrics& m) {
        return m.RealTimeFeasible() ? std::string("yes") : std::string("NO");
      };
      table.AddRow({"TD(" + std::to_string(i) + "," + std::to_string(j) + ")",
                    TablePrinter::FormatCount(
                        m_odh.offered_points_per_second),
                    TablePrinter::FormatCount(m_odh.Throughput()),
                    Fmt("%.2f%%", m_odh.AvgCpuLoad() * 100),
                    rt(m_odh),
                    TablePrinter::FormatCount(m_rdb.Throughput()),
                    Fmt("%.2f%%", m_rdb.AvgCpuLoad() * 100),
                    rt(m_rdb),
                    TablePrinter::FormatCount(m_mysql.Throughput()),
                    Fmt("%.2f%%", m_mysql.AvgCpuLoad() * 100),
                    rt(m_mysql)});
    }
  }
  table.Print("Figure 5 — TD(i,j) insert throughput & CPU (8 cores sim.)");
  // The durability layer (page CRC32C + store WAL) postdates the paper's
  // numbers; report its cost on the heaviest dataset so regressions show.
  PrintDurability("TD(5,5) ODH", last_odh, CalibrateCrc32cBytesPerSecond());
  std::printf(
      "\nExpected shape: ODH throughput exceeds RDB/MySQL by >= 10x; the\n"
      "relational candidates drop below the offered line (RT? = NO) as i,j\n"
      "grow; CPU load rises ~linearly with the offered rate.\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
