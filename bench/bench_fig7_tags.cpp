// Reproduces paper Figure 7: "The number of tags vs data throughput for
// LD(10)" — write throughput (data points per second) of ODH and RDB as the
// observation record width varies from 1 to 15 tags.
//
// Scaling: 5000 dense sensors (paper: 10M sparse). Expected shape: RDB's
// dp/s collapses for narrow records (per-record B-tree maintenance
// dominates, so dp/s ~ tags * records/s) while ODH stays high and flat —
// "the smaller the record, the larger the write performance gap".

#include "bench/bench_util.h"
#include "benchfw/ld_generator.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::IngestMetrics;
using benchfw::IngestRunOptions;
using benchfw::LdConfig;
using benchfw::LdGenerator;
using benchfw::OdhTarget;
using benchfw::RelationalTarget;

IngestMetrics RunOne(const LdConfig& config, benchfw::IngestTarget* target) {
  LdGenerator stream(config);
  ODH_CHECK_OK(target->Setup(stream.info()));
  IngestRunOptions options;
  options.simulated_cores = 8;
  options.wall_time_limit_seconds = 2.0;
  auto metrics = benchfw::RunIngest(&stream, target, options);
  ODH_CHECK_OK(metrics.status());
  return *metrics;
}

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  PrintHeader("IoT-X: record width vs write throughput",
              "Figure 7 (number of tags vs data throughput, LD(10))",
              "5000 dense sensors (scaled from 10M); dp/s = tags x "
              "records/s.");

  const int64_t sensors = static_cast<int64_t>(5000 * scale);
  TablePrinter table({"# Tags", "ODH dp/s", "RDB dp/s", "ODH/RDB"});
  for (int tags : {1, 2, 4, 6, 8, 10, 12, 15}) {
    LdConfig config;
    config.num_sensors = sensors;
    config.mean_interval = 23 * kMicrosPerSecond;
    config.duration_seconds = 240;
    config.num_tags = tags;
    config.dense = true;
    config.seed = 77;

    OdhTarget odh;
    IngestMetrics m_odh = RunOne(config, &odh);
    RelationalTarget rdb(relational::EngineProfile::Rdb(), 1000);
    IngestMetrics m_rdb = RunOne(config, &rdb);

    double odh_dp = m_odh.Throughput() * tags;
    double rdb_dp = m_rdb.Throughput() * tags;
    table.AddRow({std::to_string(tags), TablePrinter::FormatCount(odh_dp),
                  TablePrinter::FormatCount(rdb_dp),
                  Fmt("%.1fx", odh_dp / rdb_dp)});
  }
  table.Print("Figure 7 — tags vs data throughput (LD(10) scaled)");
  std::printf(
      "\nExpected shape: RDB dp/s shrinks as records narrow (per-record\n"
      "index cost dominates); ODH stays high even at 1 tag, so the ODH/RDB\n"
      "gap is largest for the smallest records.\n");
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
