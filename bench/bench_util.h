#ifndef ODH_BENCH_BENCH_UTIL_H_
#define ODH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>

#include "benchfw/runner.h"
#include "common/table_printer.h"

namespace odh::bench {

/// Scale factor shared by all paper-reproduction benches. 1.0 = the default
/// laptop-scale configuration documented per bench; pass a float argv[1] to
/// grow/shrink every dataset proportionally.
inline double ScaleFromArgs(int argc, char** argv) {
  if (argc > 1) {
    double s = std::strtod(argv[1], nullptr);
    if (s > 0) return s;
  }
  return 1.0;
}

inline void PrintHeader(const char* title, const char* paper_ref,
                        const char* note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("%s\n", note);
  std::printf("================================================================\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

}  // namespace odh::bench

#endif  // ODH_BENCH_BENCH_UTIL_H_
