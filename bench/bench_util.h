#ifndef ODH_BENCH_BENCH_UTIL_H_
#define ODH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "benchfw/runner.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "storage/checksum.h"

namespace odh::bench {

/// Scale factor shared by all paper-reproduction benches. 1.0 = the default
/// laptop-scale configuration documented per bench; pass a float argv[1] to
/// grow/shrink every dataset proportionally.
inline double ScaleFromArgs(int argc, char** argv) {
  if (argc > 1) {
    double s = std::strtod(argv[1], nullptr);
    if (s > 0) return s;
  }
  return 1.0;
}

inline void PrintHeader(const char* title, const char* paper_ref,
                        const char* note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("%s\n", note);
  std::printf("================================================================\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Measures the CRC32C rate of this machine (bytes/second) so benches can
/// turn a run's checksum_bytes counter into an estimated CPU cost — the
/// "durability tax" line reported next to the paper's ingest numbers.
inline double CalibrateCrc32cBytesPerSecond() {
  constexpr size_t kBlock = 64 * 1024;
  std::vector<char> buf(kBlock);
  for (size_t i = 0; i < kBlock; ++i) buf[i] = static_cast<char>(i * 131);
  // Warm-up pass, then time enough passes to dominate timer noise.
  uint32_t sink = storage::Crc32c(buf.data(), kBlock);
  Stopwatch timer;
  constexpr int kPasses = 256;
  for (int p = 0; p < kPasses; ++p) {
    sink ^= storage::Crc32c(buf.data(), kBlock);
  }
  double seconds = timer.ElapsedSeconds();
  // Keep `sink` alive so the loop cannot be optimized away.
  if (sink == 0xDEADBEEF) std::printf(" ");
  if (seconds <= 0) return 0;
  return static_cast<double>(kBlock) * kPasses / seconds;
}

/// Prints the durability counters of one ingest run (retries, CRC volume,
/// WAL volume) plus the estimated CRC share of the run's CPU time.
inline void PrintDurability(const char* label,
                            const benchfw::IngestMetrics& m,
                            double crc_bytes_per_second) {
  std::printf(
      "%s durability: io_retries=%llu sync_retries=%llu "
      "crc_pages=%llu(stamp)/%llu(verify) crc_failures=%llu "
      "wal=%llu rec/%.1f KB, est. checksum overhead %.3f ms (%.2f%% of CPU)\n",
      label, static_cast<unsigned long long>(m.durability.io_retries),
      static_cast<unsigned long long>(m.durability.writer_sync_retries),
      static_cast<unsigned long long>(m.durability.checksum_stamps),
      static_cast<unsigned long long>(m.durability.checksum_verifies),
      static_cast<unsigned long long>(m.durability.checksum_failures),
      static_cast<unsigned long long>(m.durability.wal_records),
      static_cast<double>(m.durability.wal_bytes) / 1024.0,
      m.ChecksumOverheadSeconds(crc_bytes_per_second) * 1000.0,
      m.ChecksumOverheadFraction(crc_bytes_per_second) * 100.0);
}

}  // namespace odh::bench

#endif  // ODH_BENCH_BENCH_UTIL_H_
