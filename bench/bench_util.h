#ifndef ODH_BENCH_BENCH_UTIL_H_
#define ODH_BENCH_BENCH_UTIL_H_

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "benchfw/runner.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "storage/checksum.h"

namespace odh::bench {

/// Scale factor shared by all paper-reproduction benches. 1.0 = the default
/// laptop-scale configuration documented per bench; pass a float positional
/// argument to grow/shrink every dataset proportionally. `--flag` arguments
/// are skipped (see ThreadsFromArgs).
inline double ScaleFromArgs(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (argv[i][0] == '-') continue;
    double s = std::strtod(argv[i], nullptr);
    if (s > 0) return s;
  }
  return 1.0;
}

/// Parses `--threads=N` from the bench command line; `fallback` when
/// absent or malformed. N caps the top of the bench's scaling curve
/// (benches run 1, 2, 4, ... up to N threads).
inline int ThreadsFromArgs(int argc, char** argv, int fallback = 1) {
  constexpr const char kPrefix[] = "--threads=";
  constexpr size_t kPrefixLen = sizeof(kPrefix) - 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], kPrefix, kPrefixLen) != 0) continue;
    long n = std::strtol(argv[i] + kPrefixLen, nullptr, 10);
    if (n >= 1 && n <= 256) return static_cast<int>(n);
  }
  return fallback;
}

inline void PrintHeader(const char* title, const char* paper_ref,
                        const char* note) {
  std::printf("================================================================\n");
  std::printf("%s\n", title);
  std::printf("Reproduces: %s\n", paper_ref);
  std::printf("%s\n", note);
  std::printf("================================================================\n");
}

inline std::string Fmt(const char* fmt, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), fmt, v);
  return buf;
}

/// Measures the CRC32C rate of this machine (bytes/second) so benches can
/// turn a run's checksum_bytes counter into an estimated CPU cost — the
/// "durability tax" line reported next to the paper's ingest numbers.
inline double CalibrateCrc32cBytesPerSecond() {
  constexpr size_t kBlock = 64 * 1024;
  std::vector<char> buf(kBlock);
  for (size_t i = 0; i < kBlock; ++i) buf[i] = static_cast<char>(i * 131);
  // Warm-up pass, then time enough passes to dominate timer noise.
  uint32_t sink = storage::Crc32c(buf.data(), kBlock);
  Stopwatch timer;
  constexpr int kPasses = 256;
  for (int p = 0; p < kPasses; ++p) {
    sink ^= storage::Crc32c(buf.data(), kBlock);
  }
  double seconds = timer.ElapsedSeconds();
  // Keep `sink` alive so the loop cannot be optimized away.
  if (sink == 0xDEADBEEF) std::printf(" ");
  if (seconds <= 0) return 0;
  return static_cast<double>(kBlock) * kPasses / seconds;
}

/// Prints the durability counters of one ingest run (retries, CRC volume,
/// WAL volume) plus the estimated CRC share of the run's CPU time.
inline void PrintDurability(const char* label,
                            const benchfw::IngestMetrics& m,
                            double crc_bytes_per_second) {
  std::printf(
      "%s durability: io_retries=%llu sync_retries=%llu "
      "crc_pages=%llu(stamp)/%llu(verify) crc_failures=%llu "
      "wal=%llu rec/%.1f KB, est. checksum overhead %.3f ms (%.2f%% of CPU)\n",
      label, static_cast<unsigned long long>(m.durability.io_retries),
      static_cast<unsigned long long>(m.durability.writer_sync_retries),
      static_cast<unsigned long long>(m.durability.checksum_stamps),
      static_cast<unsigned long long>(m.durability.checksum_verifies),
      static_cast<unsigned long long>(m.durability.checksum_failures),
      static_cast<unsigned long long>(m.durability.wal_records),
      static_cast<double>(m.durability.wal_bytes) / 1024.0,
      m.ChecksumOverheadSeconds(crc_bytes_per_second) * 1000.0,
      m.ChecksumOverheadFraction(crc_bytes_per_second) * 100.0);
}

}  // namespace odh::bench

#endif  // ODH_BENCH_BENCH_UTIL_H_
