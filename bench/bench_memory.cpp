// Memory governance: query cost as the per-query budget descends.
//
// One historian, one ORDER BY workload, run under a sweep of query
// budgets from "unbounded" (the whole sort fits in memory) down to a few
// percent of the working set (dozens of spill runs merged off disk).
// Reported per budget: rows/s, p50/p95 query latency, spill runs/bytes
// and the tracked peak — the price curve of bounded memory. A top-N leg
// (same keys, LIMIT 50) rides along to show that LIMIT queries keep O(n)
// memory and never enter the spill regime at all.
//
//   build/bench/bench_memory [scale] [--smoke]
//
// Writes BENCH_memory.json. `--smoke` (CI) shrinks the dataset and the
// budget sweep.

#include <algorithm>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "benchfw/json_report.h"
#include "common/logging.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "core/odh.h"
#include "sql/session.h"

namespace odh::bench {
namespace {

using benchfw::JsonWriter;

constexpr int kSources = 8;

struct BudgetResult {
  int64_t rows = 0;
  double rows_per_sec = 0;
  double p50_ms = 0;
  double p95_ms = 0;
  int64_t spill_runs = 0;
  int64_t spill_bytes = 0;
  int64_t mem_peak_bytes = 0;
};

double PercentileMs(std::vector<double>* micros, double p) {
  if (micros->empty()) return 0;
  size_t idx = static_cast<size_t>(p * static_cast<double>(micros->size()));
  if (idx >= micros->size()) idx = micros->size() - 1;
  std::nth_element(micros->begin(), micros->begin() + idx, micros->end());
  return (*micros)[idx] / 1000.0;
}

std::string FormatBudget(int64_t bytes) {
  if (bytes == 0) return "unbounded";
  if (bytes % (1024 * 1024) == 0) {
    return std::to_string(bytes / (1024 * 1024)) + " MiB";
  }
  return std::to_string(bytes / 1024) + " KiB";
}

/// A fresh historian under the given query budget (budgets are engine
/// construction-time wiring, so each sweep point gets its own system).
std::unique_ptr<core::OdhSystem> MakeSystem(int64_t query_budget,
                                            int points) {
  core::OdhOptions options;
  options.query_memory_budget = query_budget;
  auto odh = std::make_unique<core::OdhSystem>(options);
  int type = odh->DefineSchemaType("env", {"temperature", "wind"}).value();
  for (SourceId id = 1; id <= kSources; ++id) {
    ODH_CHECK_OK(odh->RegisterSource(id, type, kMicrosPerSecond,
                                     /*regular=*/true));
  }
  for (int i = 0; i < points; ++i) {
    for (SourceId id = 1; id <= kSources; ++id) {
      ODH_CHECK_OK(odh->Ingest({id, i * kMicrosPerSecond,
                                {20.0 + id + 0.01 * i, 0.5 * id}}));
    }
  }
  ODH_CHECK_OK(odh->FlushAll());
  return odh;
}

/// Streams `sql` to completion `iters` times; the profile of the last
/// run supplies the memory counters (identical across runs).
BudgetResult RunWorkload(core::OdhSystem* odh, const std::string& sql,
                         int iters) {
  sql::Session session(odh->engine());
  BudgetResult r;
  std::vector<double> latencies;
  latencies.reserve(iters);
  Stopwatch wall;
  int64_t total_rows = 0;
  for (int it = 0; it < iters; ++it) {
    Stopwatch timer;
    auto stream = session.ExecuteStreaming(sql);
    ODH_CHECK_OK(stream.status());
    Row row;
    int64_t rows = 0;
    while (true) {
      auto more = (*stream)->Next(&row);
      ODH_CHECK_OK(more.status());
      if (!*more) break;
      ++rows;
    }
    latencies.push_back(static_cast<double>(timer.ElapsedMicros()));
    total_rows += rows;
    r.rows = rows;
    const sql::QueryProfile& p = (*stream)->profile();
    r.spill_runs = p.spill_runs;
    r.spill_bytes = p.spill_bytes;
    r.mem_peak_bytes = p.mem_peak_bytes;
  }
  const double seconds = wall.ElapsedSeconds();
  r.rows_per_sec =
      seconds > 0 ? static_cast<double>(total_rows) / seconds : 0;
  r.p50_ms = PercentileMs(&latencies, 0.50);
  r.p95_ms = PercentileMs(&latencies, 0.95);
  return r;
}

int Run(int argc, char** argv) {
  const double scale = ScaleFromArgs(argc, argv);
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  PrintHeader("Memory governance: ORDER BY under descending query budgets",
              "memory-governance extension (the paper's historian runs "
              "inside Informix and inherits its memory manager; this "
              "measures the standalone engine's budget/spill machinery)",
              smoke ? "Smoke mode: tiny dataset, short sweep."
                    : "8 sources; full-sort and top-N shapes; rows/s, "
                      "latency percentiles and spill counters per budget.");

  const int points =
      std::max(200, static_cast<int>((smoke ? 400 : 2000) * scale));
  const int iters = smoke ? 2 : 8;
  const std::vector<int64_t> budgets =
      smoke ? std::vector<int64_t>{0, 256 * 1024, 128 * 1024}
            : std::vector<int64_t>{0, 8 * 1024 * 1024, 2 * 1024 * 1024,
                                   512 * 1024, 256 * 1024};
  const std::string sort_sql =
      "SELECT id, ts, temperature, wind FROM env_v "
      "ORDER BY temperature DESC, ts";
  const std::string topn_sql = sort_sql + " LIMIT 50";

  std::printf("Dataset: %d sources x %d points (%d rows sorted)\n\n",
              kSources, points, kSources * points);

  TablePrinter table({"budget", "shape", "rows/s", "p50 ms", "p95 ms",
                      "spill runs", "spill MiB", "peak KiB"});
  JsonWriter json;
  json.BeginObject();
  json.KeyValue("bench", "memory");
  json.KeyValue("smoke", smoke);
  json.KeyValue("sources", static_cast<int64_t>(kSources));
  json.KeyValue("points_per_source", static_cast<int64_t>(points));
  json.KeyValue("iterations", static_cast<int64_t>(iters));
  json.Key("runs");
  json.BeginArray();
  int64_t baseline_rows = -1;
  for (int64_t budget : budgets) {
    auto odh = MakeSystem(budget, points);
    for (const bool topn : {false, true}) {
      const std::string& sql = topn ? topn_sql : sort_sql;
      BudgetResult r = RunWorkload(odh.get(), sql, iters);
      // Every budget must produce the same full-sort answer size; a
      // budget that silently dropped rows would invalidate the curve.
      if (!topn) {
        if (baseline_rows < 0) baseline_rows = r.rows;
        ODH_CHECK(r.rows == baseline_rows);
      }
      table.AddRow({FormatBudget(budget), topn ? "top-50" : "full sort",
                    TablePrinter::FormatCount(r.rows_per_sec),
                    TablePrinter::FormatDouble(r.p50_ms, 2),
                    TablePrinter::FormatDouble(r.p95_ms, 2),
                    std::to_string(r.spill_runs),
                    TablePrinter::FormatDouble(
                        static_cast<double>(r.spill_bytes) / (1024 * 1024),
                        2),
                    std::to_string(r.mem_peak_bytes / 1024)});
      json.BeginObject();
      json.KeyValue("budget_bytes", budget);
      json.KeyValue("shape", topn ? "top-50" : "full_sort");
      json.KeyValue("rows", r.rows);
      json.KeyValue("rows_per_sec", r.rows_per_sec);
      json.KeyValue("p50_ms", r.p50_ms);
      json.KeyValue("p95_ms", r.p95_ms);
      json.KeyValue("spill_runs", r.spill_runs);
      json.KeyValue("spill_bytes", r.spill_bytes);
      json.KeyValue("mem_peak_bytes", r.mem_peak_bytes);
      json.EndObject();
    }
  }
  json.EndArray();
  json.EndObject();
  table.Print("ORDER BY cost vs query memory budget");
  if (json.WriteFile("BENCH_memory.json")) {
    std::printf("Memory data written to BENCH_memory.json\n");
  }
  return 0;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
