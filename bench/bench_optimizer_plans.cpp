// Reproduces the paper's §5.3 query-optimizer experiment: for LQ4 queries,
// a narrow latitude/longitude box (one sensor) should produce a plan that
// locates the sensor in LinkedSensor first and probes the operational data
// per sensor (index-nested-loop), while a wide box (many sensors) should
// scan the operational data first and join the location information
// afterwards (hash join). The ValueBlob-byte cost model drives the choice.

#include <cmath>

#include "bench/bench_util.h"
#include "benchfw/dataset.h"
#include "common/logging.h"

namespace odh::bench {
namespace {

using benchfw::LdConfig;
using benchfw::LdGenerator;
using benchfw::OdhTarget;

int Run(int argc, char** argv) {
  double scale = ScaleFromArgs(argc, argv);
  PrintHeader("ODH query optimizer: LQ4 plan selection",
              "Section 5.3 optimizer test (narrow vs wide LQ4 boxes)",
              "LD dataset in ODH; EXPLAIN output and plan choice logged for "
              "a narrow and a wide geographic box.");

  LdConfig config = LdConfig::Of(1, static_cast<int64_t>(800 * scale),
                                 /*duration_seconds=*/120);
  core::OdhOptions options = OdhTarget::DefaultOptions();
  options.mg_group_size = 64;  // Per-group locality for historical probes.
  OdhTarget target(options);
  {
    LdGenerator stream(config);
    ODH_CHECK_OK(target.Setup(stream.info()));
    ODH_CHECK_OK(benchfw::RunIngest(&stream, &target).status());
  }
  ODH_CHECK_OK(benchfw::LoadLdRelational(LdGenerator(config),
                                         target.odh()->database()));
  ODH_CHECK_OK(target.odh()->engine()->catalog()->Analyze("linkedsensor"));

  auto lq4 = [&](double la1, double la2, double lo1, double lo2) {
    return "SELECT ts, o.id, airtemperature FROM LD_v o, linkedsensor l "
           "WHERE l.sensorid = o.id AND latitude > " + Fmt("%.4f", la1) +
           " AND latitude < " + Fmt("%.4f", la2) + " AND longitude > " +
           Fmt("%.4f", lo1) + " AND longitude < " + Fmt("%.4f", lo2);
  };

  struct Case {
    const char* label;
    double la1, la2, lo1, lo2;
    const char* expected;
  };
  // The paper's narrow case (la 36.803-36.804, lo -115.978..-115.977)
  // involves one sensor; its wide case (la 10-80, lo -150..-50) involves a
  // large share of the sensors. Center the narrow box on an actual sensor
  // so it matches exactly one, like the paper's.
  benchfw::LdSensor first = LdGenerator(config).Sensors().front();
  const Case cases[] = {
      {"narrow (paper: 1 sensor)", first.latitude - 0.05,
       first.latitude + 0.05, first.longitude - 0.05, first.longitude + 0.05,
       "INDEX-NESTED-LOOP"},
      {"wide (paper: most sensors)", 10.0, 80.0, -150.0, -50.0,
       "HASH-JOIN"},
  };

  bool all_ok = true;
  for (const Case& c : cases) {
    std::string sql = lq4(c.la1, c.la2, c.lo1, c.lo2);
    std::string plan = target.odh()->engine()->Explain(sql).value();
    auto result = target.odh()->engine()->Execute(sql);
    ODH_CHECK_OK(result.status());
    bool matches = plan.find(c.expected) != std::string::npos;
    all_ok = all_ok && matches;
    std::printf("\n--- LQ4 %s ---\n%s\nPlan:\n%s"
                "Rows returned: %zu   Expected strategy: %s   [%s]\n",
                c.label, sql.c_str(), plan.c_str(), result->rows.size(),
                c.expected, matches ? "MATCH" : "MISMATCH");
  }
  std::printf(
      "\n%s: narrow boxes pick the sensor-first index-nested-loop plan,\n"
      "wide boxes scan the observations and join locations afterwards —\n"
      "the paper's reported optimizer behaviour.\n",
      all_ok ? "REPRODUCED" : "NOT REPRODUCED");
  return all_ok ? 0 : 1;
}

}  // namespace
}  // namespace odh::bench

int main(int argc, char** argv) { return odh::bench::Run(argc, argv); }
