// End-to-end consistency: the three IoT-X candidates (ODH, RDB, MySQL)
// ingest identical TD and LD datasets; every WS2 query template must then
// return the same multiset of rows on all three. This pins the whole stack
// (generators -> writer -> blobs -> router -> VTI -> SQL) against the
// independent relational path.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "benchfw/dataset.h"
#include "benchfw/runner.h"
#include "common/logging.h"
#include "sql/session.h"

namespace odh::benchfw {
namespace {

TdConfig SmallTd() {
  TdConfig config;
  config.num_accounts = 25;
  config.per_account_hz = 20;
  config.duration_seconds = 4;
  return config;
}

LdConfig SmallLd() {
  LdConfig config;
  config.num_sensors = 60;
  config.mean_interval = 5 * kMicrosPerSecond;
  config.duration_seconds = 60;
  config.first_id = 1000001;
  return config;
}

/// Canonical form of a result set: rows rendered to strings and sorted.
std::vector<std::string> Canonical(const sql::QueryResult& result) {
  std::vector<std::string> rows;
  rows.reserve(result.rows.size());
  for (const Row& row : result.rows) {
    std::string s;
    for (const Datum& d : row) {
      // Round doubles so lossless-decoded values compare stably.
      if (d.is_double()) {
        char buf[32];
        snprintf(buf, sizeof(buf), "%.9g", d.double_value());
        s += buf;
      } else {
        s += d.ToString();
      }
      s += "|";
    }
    rows.push_back(std::move(s));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

class IotxConsistencyTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    odh_ = new OdhTarget();
    {
      TdGenerator stream(SmallTd());
      ODH_CHECK_OK(odh_->Setup(stream.info()));
      ODH_CHECK_OK(RunIngest(&stream, odh_).status());
    }
    {
      LdGenerator stream(SmallLd());
      ODH_CHECK_OK(odh_->Setup(stream.info()));
      ODH_CHECK_OK(RunIngest(&stream, odh_).status());
    }
    ODH_CHECK_OK(
        LoadTdRelational(TdGenerator(SmallTd()), odh_->odh()->database()));
    ODH_CHECK_OK(
        LoadLdRelational(LdGenerator(SmallLd()), odh_->odh()->database()));
    // Reorganize half of the LD span: queries must see MG + RTS/IRTS data
    // seamlessly.
    int ld_type = odh_->odh()->config()->FindSchemaType("LD").value();
    ODH_CHECK_OK(odh_->odh()
                     ->Reorganize(ld_type, 30 * kMicrosPerSecond)
                     .status());

    auto make_relational = [](const relational::EngineProfile& profile) {
      auto* target = new RelationalTarget(profile, 1000);
      {
        TdGenerator stream(SmallTd());
        ODH_CHECK_OK(target->Setup(stream.info()));
        ODH_CHECK_OK(RunIngest(&stream, target).status());
      }
      ODH_CHECK_OK(
          LoadTdRelational(TdGenerator(SmallTd()), target->database()));
      // The LD stream goes into a second table of the same database.
      {
        LdGenerator stream(SmallLd());
        StreamInfo info = stream.info();
        auto* db = target->database();
        std::vector<relational::Column> columns = {
            {"ts", DataType::kTimestamp}, {"id", DataType::kInt64}};
        for (const std::string& tag : info.tag_names) {
          columns.push_back({tag, DataType::kDouble});
        }
        relational::Table* table =
            db->CreateTable("LD", relational::Schema(columns)).value();
        ODH_CHECK_OK(table->AddIndex({"by_ts", {0}}));
        ODH_CHECK_OK(table->AddIndex({"by_id", {1}}));
        core::OperationalRecord record;
        Row row(columns.size());
        while (stream.Next(&record)) {
          row[0] = Datum::Time(record.ts);
          row[1] = Datum::Int64(record.id);
          for (size_t t = 0; t < record.tags.size(); ++t) {
            row[2 + t] = std::isnan(record.tags[t])
                             ? Datum::Null()
                             : Datum::Double(record.tags[t]);
          }
          table->Insert(row).value();
        }
        ODH_CHECK_OK(table->Commit());
      }
      ODH_CHECK_OK(
          LoadLdRelational(LdGenerator(SmallLd()), target->database()));
      return target;
    };
    rdb_ = make_relational(relational::EngineProfile::Rdb());
    mysql_ = make_relational(relational::EngineProfile::MySql());
    rdb_engine_ = new sql::SqlEngine(rdb_->database());
    mysql_engine_ = new sql::SqlEngine(mysql_->database());
  }

  static void TearDownTestSuite() {
    delete rdb_engine_;
    delete mysql_engine_;
    delete odh_;
    delete rdb_;
    delete mysql_;
  }

  /// Runs `sql` (with the operational table name substituted) on all three
  /// candidates and expects identical canonical results.
  void ExpectConsistent(const std::string& sql_template,
                        const std::string& odh_table,
                        const std::string& rel_table) {
    auto substitute = [&](const std::string& table) {
      std::string sql = sql_template;
      size_t pos = sql.find("$T");
      ODH_CHECK(pos != std::string::npos);
      sql.replace(pos, 2, table);
      return sql;
    };
    sql::Session odh_session(odh_->odh()->engine());
    sql::Session rdb_session(rdb_engine_);
    sql::Session mysql_session(mysql_engine_);
    auto odh_result = odh_session.Execute(substitute(odh_table));
    ASSERT_TRUE(odh_result.ok()) << odh_result.status().ToString();
    auto rdb_result = rdb_session.Execute(substitute(rel_table));
    ASSERT_TRUE(rdb_result.ok()) << rdb_result.status().ToString();
    auto mysql_result = mysql_session.Execute(substitute(rel_table));
    ASSERT_TRUE(mysql_result.ok()) << mysql_result.status().ToString();

    std::vector<std::string> odh_rows = Canonical(*odh_result);
    EXPECT_EQ(odh_rows, Canonical(*rdb_result)) << sql_template;
    EXPECT_EQ(odh_rows, Canonical(*mysql_result)) << sql_template;
    EXPECT_GT(odh_rows.size(), 0u) << "degenerate test: " << sql_template;

    // The streaming cursor must yield the exact same multiset as the
    // materialized execution on every template.
    auto stream = odh_session.ExecuteStreaming(substitute(odh_table));
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    sql::QueryResult streamed;
    Row row;
    while (true) {
      auto more = (*stream)->Next(&row);
      ASSERT_TRUE(more.ok()) << more.status().ToString();
      if (!more.value()) break;
      streamed.rows.push_back(row);
    }
    EXPECT_EQ(odh_rows, Canonical(streamed)) << "streamed: " << sql_template;
  }

  static OdhTarget* odh_;
  static RelationalTarget* rdb_;
  static RelationalTarget* mysql_;
  static sql::SqlEngine* rdb_engine_;
  static sql::SqlEngine* mysql_engine_;
};

OdhTarget* IotxConsistencyTest::odh_ = nullptr;
RelationalTarget* IotxConsistencyTest::rdb_ = nullptr;
RelationalTarget* IotxConsistencyTest::mysql_ = nullptr;
sql::SqlEngine* IotxConsistencyTest::rdb_engine_ = nullptr;
sql::SqlEngine* IotxConsistencyTest::mysql_engine_ = nullptr;

TEST_F(IotxConsistencyTest, Tq1Historical) {
  ExpectConsistent("SELECT id, ts, t_trade_price, t_chrg, t_comm, t_tax "
                   "FROM $T WHERE id = 7", "TD_v", "TD");
  ExpectConsistent("SELECT id, ts, t_trade_price, t_chrg, t_comm, t_tax "
                   "FROM $T WHERE id = 25", "TD_v", "TD");
}

TEST_F(IotxConsistencyTest, Tq2Slice) {
  ExpectConsistent(
      "SELECT id, ts, t_trade_price, t_chrg, t_comm, t_tax FROM $T "
      "WHERE ts BETWEEN '1970-01-01 00:00:01' AND '1970-01-01 00:00:02'",
      "TD_v", "TD");
}

TEST_F(IotxConsistencyTest, Tq3FusedSingleSource) {
  ExpectConsistent(
      "SELECT ts, t_chrg FROM $T t, account a WHERE a.ca_id = t.id AND "
      "a.ca_name = 'ACCT12'",
      "TD_v", "TD");
}

TEST_F(IotxConsistencyTest, Tq4FusedMultiSource) {
  ExpectConsistent(
      "SELECT ca_name, ts, t_chrg FROM $T t, account a, customer c "
      "WHERE a.ca_id = t.id AND a.ca_c_id = c.c_id AND c_dob BETWEEN "
      "'1950-01-01 00:00:00' AND '1990-01-01 00:00:00'",
      "TD_v", "TD");
}

TEST_F(IotxConsistencyTest, Lq1Historical) {
  ExpectConsistent("SELECT id, ts, airtemperature, windspeed, pressure, "
                   "cloudcover FROM $T WHERE id = 1000031", "LD_v", "LD");
}

TEST_F(IotxConsistencyTest, Lq2Slice) {
  ExpectConsistent(
      "SELECT ts, id, airtemperature FROM $T WHERE ts BETWEEN "
      "'1970-01-01 00:00:10' AND '1970-01-01 00:00:20'",
      "LD_v", "LD");
}

TEST_F(IotxConsistencyTest, Lq3FusedByName) {
  ExpectConsistent(
      "SELECT ts, o.id, airtemperature FROM $T o, linkedsensor l "
      "WHERE l.sensorid = o.id AND sensorname = 'A1000042'",
      "LD_v", "LD");
}

TEST_F(IotxConsistencyTest, Lq4FusedByArea) {
  ExpectConsistent(
      "SELECT ts, o.id, airtemperature FROM $T o, linkedsensor l "
      "WHERE l.sensorid = o.id AND latitude > 30.0 AND latitude < 45.0 "
      "AND longitude > -120.0 AND longitude < -80.0",
      "LD_v", "LD");
}

TEST_F(IotxConsistencyTest, AggregatesAgree) {
  ExpectConsistent(
      "SELECT id, COUNT(*), AVG(t_trade_price) FROM $T GROUP BY id "
      "ORDER BY id",
      "TD_v", "TD");
  ExpectConsistent("SELECT COUNT(*), MIN(ts), MAX(ts) FROM $T", "LD_v",
                   "LD");
}

TEST_F(IotxConsistencyTest, SpansMgAndReorganizedData) {
  // The LD data is half reorganized (RTS/IRTS) and half still in MG; a
  // full-range per-sensor count must see both.
  ExpectConsistent("SELECT COUNT(*) FROM $T WHERE id = 1000011", "LD_v",
                   "LD");
}

}  // namespace
}  // namespace odh::benchfw
