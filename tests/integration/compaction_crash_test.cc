// Crash safety of the segment lifecycle: compaction rewrites and
// retention drops are WAL-logged episodes, so a power cut at ANY page
// write during them must recover to a consistent store — exactly one of
// {old segment, compacted segment} survives, and a dropped segment stays
// dropped. Compaction is lossless, so whichever side survives, the SQL
// answer set must equal the never-crashed reference bit for bit.

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "sql/session.h"
#include "storage/fault_policy.h"

namespace odh::core {
namespace {

using storage::FaultPolicy;
using storage::SimDisk;

constexpr int kSeconds = 400;
constexpr Timestamp kSpan = 100 * kMicrosPerSecond;  // 4 segments.
constexpr SourceId kFirstRegular = 1, kLastRegular = 6;
constexpr SourceId kFirstJittery = 7, kLastJittery = 8;

OdhOptions Opts() {
  OdhOptions options;
  options.batch_size = 25;
  options.segment_span = kSpan;
  return options;
}

int Define(OdhSystem* sys) {
  int type = sys->DefineSchemaType("env", {"temperature", "wind"}).value();
  for (SourceId id = kFirstRegular; id <= kLastRegular; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, true));
  }
  for (SourceId id = kFirstJittery; id <= kLastJittery; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, false));
  }
  return type;
}

Status IngestAll(OdhSystem* sys) {
  for (int i = 0; i < kSeconds; ++i) {
    for (SourceId id = kFirstRegular; id <= kLastJittery; ++id) {
      Timestamp ts = static_cast<Timestamp>(i) * kMicrosPerSecond;
      if (id >= kFirstJittery) ts += (i % 7) * 1000;
      OperationalRecord r{id, ts, {20.0 + id + 0.01 * i, 1.0 * id}};
      ODH_RETURN_IF_ERROR(sys->Ingest(r));
    }
    if ((i + 1) % 50 == 0) ODH_RETURN_IF_ERROR(sys->FlushAll());
  }
  return sys->FlushAll();
}

std::vector<std::string> QueryAllSorted(OdhSystem* sys) {
  sql::Session session(sys->engine());
  auto stream = session.ExecuteStreaming(
      "SELECT id, ts, temperature, wind FROM env_v");
  ODH_CHECK_OK(stream.status());
  std::vector<std::string> rows;
  Row row;
  while ((*stream)->Next(&row).value()) {
    std::string line;
    for (const Datum& d : row) line += d.ToString() + "|";
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

TEST(CompactionCrashTest, CrashAtEverySampledWriteRecoversConsistent) {
  // Reference: the same workload, never compacted, never crashed.
  OdhSystem reference(Opts());
  Define(&reference);
  ASSERT_TRUE(IngestAll(&reference).ok());
  const std::vector<std::string> want = QueryAllSorted(&reference);

  // Measure how many page writes a full compaction issues, so the crash
  // sweep can cover the whole episode including its WAL sync tail.
  int64_t total_writes = 0;
  {
    OdhSystem probe(Opts());
    int type = Define(&probe);
    ASSERT_TRUE(IngestAll(&probe).ok());
    probe.ResetIoStats();
    auto report = probe.CompactSegments(type);
    ASSERT_TRUE(report.ok());
    ASSERT_EQ(report->segments_compacted, 3);  // Last of 4 still hot.
    total_writes = probe.io_stats().page_writes;
    ASSERT_GT(total_writes, 0);

    // Sanity: the compacted probe answers identically (lossless).
    EXPECT_EQ(QueryAllSorted(&probe), want);
  }

  // Crash points across the episode: early (before any sync — the old
  // segments must survive), middle (between episodes — a mix), and late
  // (after the final commit — the compacted form must survive).
  std::vector<int64_t> crash_points;
  for (int64_t k = 1; k <= total_writes; k = std::max(k + 1, k * 3 / 2)) {
    crash_points.push_back(k);
  }
  bool saw_uncommitted = false, saw_superseded = false;
  for (int64_t k : crash_points) {
    OdhSystem victim(Opts());
    int type = Define(&victim);
    ASSERT_TRUE(IngestAll(&victim).ok());
    FaultPolicy policy;
    policy.CrashAtWrite(static_cast<int>(k));
    victim.database()->disk()->set_fault_policy(&policy);
    auto report = victim.CompactSegments(type);
    ASSERT_FALSE(report.ok()) << "crash point " << k
                              << " did not interrupt compaction";
    ASSERT_TRUE(victim.database()->disk()->crashed());

    std::unique_ptr<SimDisk> rebooted =
        victim.database()->disk()->CloneDurable();
    OdhSystem recovered(Opts());
    Define(&recovered);
    auto rec = recovered.Recover(rebooted.get());
    ASSERT_TRUE(rec.ok()) << "crash point " << k << ": "
                          << rec.status().ToString();
    saw_uncommitted |= rec->uncommitted_episode_records > 0;
    saw_superseded |= rec->records_superseded > 0;

    // Exactly-one semantics, observed through the data: whichever of the
    // old/new segment generations survived, the answers are the
    // reference's — compaction never changes a bit of the data.
    EXPECT_EQ(QueryAllSorted(&recovered), want) << "crash point " << k;
  }
  // The sweep covered both failure shapes: an episode cut before its
  // commit (discarded, old segment kept) and one that committed (its
  // replacement supersedes the original records).
  EXPECT_TRUE(saw_uncommitted);
  EXPECT_TRUE(saw_superseded);
}

TEST(CompactionCrashTest, RetentionDropSurvivesReboot) {
  OdhSystem victim(Opts());
  int type = Define(&victim);
  ASSERT_TRUE(IngestAll(&victim).ok());
  auto dropped = victim.SetRetention(type, 150 * kMicrosPerSecond);
  ASSERT_TRUE(dropped.ok());
  ASSERT_GT(*dropped, 0);
  const std::vector<std::string> want = QueryAllSorted(&victim);

  // Power cut after the drop: the kSegmentDrop record was synced before
  // the tables went away, so recovery must NOT resurrect dropped data.
  std::unique_ptr<SimDisk> rebooted =
      victim.database()->disk()->CloneDurable();
  OdhSystem recovered(Opts());
  Define(&recovered);
  auto rec = recovered.Recover(rebooted.get());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  EXPECT_GT(rec->records_superseded, 0u);
  EXPECT_EQ(QueryAllSorted(&recovered), want);
}

TEST(CompactionCrashTest, CompactedStoreSurvivesReboot) {
  OdhSystem victim(Opts());
  int type = Define(&victim);
  ASSERT_TRUE(IngestAll(&victim).ok());
  auto report = victim.CompactSegments(type);
  ASSERT_TRUE(report.ok());
  ASSERT_EQ(report->segments_compacted, 3);
  const std::vector<std::string> want = QueryAllSorted(&victim);

  std::unique_ptr<SimDisk> rebooted =
      victim.database()->disk()->CloneDurable();
  OdhSystem recovered(Opts());
  Define(&recovered);
  auto rec = recovered.Recover(rebooted.get());
  ASSERT_TRUE(rec.ok()) << rec.status().ToString();
  // The committed episodes replay: original small blobs superseded, the
  // merged replacements in their place.
  EXPECT_GT(rec->records_superseded, 0u);
  EXPECT_EQ(QueryAllSorted(&recovered), want);
}

}  // namespace
}  // namespace odh::core
