#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "core/wal.h"
#include "sql/session.h"
#include "storage/fault_policy.h"

// End-to-end crash/recovery: ingest >10k points through the full stack,
// cut power at WAL record boundaries (and mid-ingest), reboot via
// SimDisk::CloneDurable(), replay with OdhStore::Recover(), and require the
// recovered system's SQL output to be byte-identical to a reference.

namespace odh::core {
namespace {

using storage::FaultPolicy;
using storage::SimDisk;

constexpr int kSeconds = 400;
constexpr SourceId kFirstRegular = 1, kLastRegular = 16;     // RTS.
constexpr SourceId kFirstJittery = 17, kLastJittery = 20;    // IRTS.
constexpr SourceId kFirstSlow = 21, kLastSlow = 28;          // MG.
// 400 * 28 = 11200 points.

OdhOptions Opts() {
  OdhOptions options;
  options.batch_size = 25;
  options.mg_group_size = 4;
  return options;
}

int Define(OdhSystem* sys) {
  int type = sys->DefineSchemaType("env", {"temperature", "wind"}).value();
  for (SourceId id = kFirstRegular; id <= kLastRegular; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, true));
  }
  for (SourceId id = kFirstJittery; id <= kLastJittery; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, false));
  }
  for (SourceId id = kFirstSlow; id <= kLastSlow; ++id) {
    // 0.1 Hz: below the high-frequency threshold, routed to MG.
    ODH_CHECK_OK(sys->RegisterSource(id, type, 10 * kMicrosPerSecond, true));
  }
  return type;
}

/// Drives the identical deterministic workload into `sys`, flushing every
/// `flush_every` seconds. Returns the first error (a crash run dies here).
Status IngestAll(OdhSystem* sys, int flush_every = 50) {
  for (int i = 0; i < kSeconds; ++i) {
    for (SourceId id = kFirstRegular; id <= kLastSlow; ++id) {
      Timestamp ts = static_cast<Timestamp>(i) * kMicrosPerSecond *
                     (id >= kFirstSlow ? 10 : 1);
      if (id >= kFirstJittery && id <= kLastJittery) {
        ts += (i % 7) * 1000;  // Jitter: forces IRTS.
      }
      OperationalRecord r{id, ts, {20.0 + id + 0.01 * i, 1.0 * id}};
      ODH_RETURN_IF_ERROR(sys->Ingest(r));
    }
    if ((i + 1) % flush_every == 0) ODH_RETURN_IF_ERROR(sys->FlushAll());
  }
  return sys->FlushAll();
}

/// Full time-range scan over the virtual table, streamed row by row
/// through a SQL session — never materialized in the engine.
std::vector<std::string> QueryAll(OdhSystem* sys) {
  sql::Session session(sys->engine());
  auto stream = session.ExecuteStreaming(
      "SELECT id, ts, temperature, wind FROM env_v");
  ODH_CHECK_OK(stream.status());
  std::vector<std::string> rows;
  Row row;
  while ((*stream)->Next(&row).value()) {
    std::string line;
    for (const Datum& d : row) line += d.ToString() + "|";
    rows.push_back(std::move(line));
  }
  return rows;
}

TEST(CrashRecoveryTest, PowerCutAfterSyncRecoversByteIdentical) {
  OdhSystem reference(Opts());
  Define(&reference);
  ASSERT_TRUE(IngestAll(&reference).ok());

  OdhSystem victim(Opts());
  Define(&victim);
  ASSERT_TRUE(IngestAll(&victim).ok());
  // Power cut between operations; reboot from durable pages only.
  std::unique_ptr<SimDisk> rebooted =
      victim.database()->disk()->CloneDurable();

  OdhSystem recovered(Opts());
  Define(&recovered);
  auto report = recovered.Recover(rebooted.get());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->records_replayed, 0u);
  EXPECT_GT(report->rts_blobs, 0u);
  EXPECT_GT(report->irts_blobs, 0u);
  EXPECT_GT(report->mg_blobs, 0u);
  EXPECT_EQ(report->torn_bytes_dropped, 0u);
  EXPECT_EQ(report->undecodable_records, 0u);

  // Everything was synced before the cut: the recovered system's SQL
  // answer must be byte-identical to the never-crashed reference.
  EXPECT_EQ(QueryAll(&recovered), QueryAll(&reference));

  // Stats drive partition elimination; they must be rebuilt too.
  int type = 0;
  EXPECT_EQ(recovered.store()->rts_stats(type).point_count,
            reference.store()->rts_stats(type).point_count);
  EXPECT_EQ(recovered.store()->irts_stats(type).point_count,
            reference.store()->irts_stats(type).point_count);
  EXPECT_EQ(recovered.store()->mg_stats(type).point_count,
            reference.store()->mg_stats(type).point_count);
}

TEST(CrashRecoveryTest, CrashAtSampledWalRecordBoundaries) {
  OdhSystem victim(Opts());
  Define(&victim);
  ASSERT_TRUE(IngestAll(&victim).ok());
  std::unique_ptr<SimDisk> durable =
      victim.database()->disk()->CloneDurable();
  const std::string wal_name = OdhStore::kWalFileName;

  auto full_log = Wal::ReadLog(durable.get(), wal_name).value();
  const size_t n = full_log.records.size();
  ASSERT_GT(n, 100u);

  // Frame boundaries within the log byte stream.
  std::vector<uint64_t> boundaries = {0};
  for (const std::string& payload : full_log.records) {
    boundaries.push_back(boundaries.back() + 8 + payload.size());
  }

  // Sample truncation points: a crash may land on any record boundary.
  std::vector<size_t> samples = {0,     1,         7,         n / 4,
                                 n / 2, 3 * n / 4, n - 1,     n};
  for (size_t k : samples) {
    // Simulate the torn tail an interrupted Sync leaves behind: a clean
    // k-record prefix followed by a partial frame.
    auto log_file = durable->OpenFile(wal_name).value();
    std::string bytes;
    {
      uint32_t pages = durable->PageCount(log_file).value();
      bytes.resize(static_cast<size_t>(pages) * durable->page_size());
      for (uint32_t p = 0; p < pages; ++p) {
        ODH_CHECK_OK(
            durable->ReadPage(log_file, p, &bytes[p * durable->page_size()]));
      }
    }
    std::string torn = bytes.substr(0, boundaries[k]);
    if (k < n) {
      torn += bytes.substr(boundaries[k],
                           (8 + full_log.records[k].size()) / 2);
    }

    std::unique_ptr<SimDisk> crafted = durable->CloneDurable();
    ODH_CHECK_OK(crafted->DeleteFile(wal_name));
    auto fresh = crafted->CreateFile(wal_name).value();
    const size_t ps = crafted->page_size();
    std::string page(ps, '\0');
    for (size_t off = 0; off < torn.size(); off += ps) {
      ODH_CHECK_OK(crafted->AllocatePage(fresh).status());
      page.assign(ps, '\0');
      page.replace(0, std::min(ps, torn.size() - off), torn, off,
                   std::min(ps, torn.size() - off));
      ODH_CHECK_OK(crafted->WritePage(
          fresh, static_cast<uint32_t>(off / ps), page.data()));
    }

    // Recover from the truncated log...
    OdhSystem recovered(Opts());
    Define(&recovered);
    auto report = recovered.Recover(crafted.get());
    ASSERT_TRUE(report.ok()) << "boundary " << k;
    EXPECT_EQ(report->records_replayed, k) << "boundary " << k;
    if (k < n) {
      EXPECT_GT(report->torn_bytes_dropped, 0u) << "boundary " << k;
    }

    // ...and against an independent reference built by applying the same
    // k records straight to a store (no WAL, no recovery path). The SQL
    // answers must be byte-identical.
    OdhSystem expected(Opts());
    Define(&expected);
    for (size_t i = 0; i < k; ++i) {
      WalRecord rec;
      ASSERT_TRUE(WalRecord::Decode(full_log.records[i], &rec));
      switch (rec.kind) {
        case WalRecord::Kind::kRts:
          ODH_CHECK_OK(expected.store()->PutRts(
              rec.schema_type, rec.id_or_group, rec.begin, rec.end,
              rec.interval, rec.n, rec.blob, rec.zone_map));
          break;
        case WalRecord::Kind::kIrts:
          ODH_CHECK_OK(expected.store()->PutIrts(
              rec.schema_type, rec.id_or_group, rec.begin, rec.end, rec.n,
              rec.blob, rec.zone_map));
          break;
        case WalRecord::Kind::kMg:
          ODH_CHECK_OK(expected.store()->PutMg(
              rec.schema_type, rec.id_or_group, rec.begin, rec.end, rec.n,
              rec.blob, rec.zone_map));
          break;
        case WalRecord::Kind::kMgDelete:
          FAIL() << "no reorganizer ran; unexpected delete record";
          break;
        case WalRecord::Kind::kSegmentCompactBegin:
        case WalRecord::Kind::kSegmentCompactCommit:
        case WalRecord::Kind::kSegmentDrop:
          FAIL() << "no compaction or retention ran; unexpected segment "
                    "lifecycle record";
      }
    }
    EXPECT_EQ(QueryAll(&recovered), QueryAll(&expected))
        << "boundary " << k;
  }
}

TEST(CrashRecoveryTest, CrashMidIngestLosesOnlyUnsyncedTail) {
  OdhSystem victim(Opts());
  Define(&victim);
  FaultPolicy policy;
  // Power dies partway through the workload. The whole run issues only a
  // few dozen page writes (the pool absorbs everything between flushes),
  // so write #20 lands mid-run, inside one of the periodic flush cycles.
  policy.CrashAtWrite(20);
  victim.database()->disk()->set_fault_policy(&policy);
  Status run = IngestAll(&victim);
  ASSERT_FALSE(run.ok());
  ASSERT_TRUE(victim.database()->disk()->crashed());

  std::unique_ptr<SimDisk> rebooted =
      victim.database()->disk()->CloneDurable();
  OdhSystem recovered(Opts());
  Define(&recovered);
  auto report = recovered.Recover(rebooted.get());
  ASSERT_TRUE(report.ok());
  EXPECT_GT(report->records_replayed, 0u);

  // What came back is exactly the durable WAL prefix: blob and point
  // counts line up with the log, and every recovered page decodes (the
  // query would fail on checksum or blob corruption).
  auto log =
      Wal::ReadLog(rebooted.get(), OdhStore::kWalFileName).value();
  int64_t logged_points = 0;
  size_t puts = 0;
  for (const std::string& payload : log.records) {
    WalRecord rec;
    ASSERT_TRUE(WalRecord::Decode(payload, &rec));
    logged_points += rec.n;
    ++puts;
  }
  EXPECT_EQ(report->records_replayed, puts);
  const int type = 0;
  int64_t recovered_points =
      recovered.store()->rts_stats(type).point_count +
      recovered.store()->irts_stats(type).point_count +
      recovered.store()->mg_stats(type).point_count;
  EXPECT_EQ(recovered_points, logged_points);
  EXPECT_EQ(static_cast<int64_t>(QueryAll(&recovered).size()),
            recovered_points);
  // Strictly less than the full workload: the unsynced tail is gone — and
  // that is the contract, not a bug (transaction-free ingestion).
  EXPECT_LT(recovered_points, int64_t{kSeconds} * kLastSlow);
}

TEST(CrashRecoveryTest, RecoveredSystemIsItselfCrashSafe) {
  OdhSystem victim(Opts());
  Define(&victim);
  ASSERT_TRUE(IngestAll(&victim).ok());
  std::unique_ptr<SimDisk> rebooted =
      victim.database()->disk()->CloneDurable();

  OdhSystem recovered(Opts());
  Define(&recovered);
  ASSERT_TRUE(recovered.Recover(rebooted.get()).ok());

  // Recovery re-logged and re-synced everything, so a second crash right
  // after recovery loses nothing.
  std::unique_ptr<SimDisk> rebooted_again =
      recovered.database()->disk()->CloneDurable();
  OdhSystem recovered_again(Opts());
  Define(&recovered_again);
  ASSERT_TRUE(recovered_again.Recover(rebooted_again.get()).ok());
  EXPECT_EQ(QueryAll(&recovered_again), QueryAll(&recovered));
}

TEST(CrashRecoveryTest, ReorganizationSurvivesCrash) {
  OdhSystem victim(Opts());
  Define(&victim);
  ASSERT_TRUE(IngestAll(&victim).ok());
  auto reorg = victim.Reorganize(0, kMaxTimestamp);
  ASSERT_TRUE(reorg.ok());
  ASSERT_TRUE(victim.FlushAll().ok());
  std::vector<std::string> want = QueryAll(&victim);

  std::unique_ptr<SimDisk> rebooted =
      victim.database()->disk()->CloneDurable();
  OdhSystem recovered(Opts());
  Define(&recovered);
  auto report = recovered.Recover(rebooted.get());
  ASSERT_TRUE(report.ok());

  // MG blobs the reorganizer converted must not be resurrected: compare
  // the full answer set (order-insensitive — replay interleaves the
  // reorganizer's puts differently than the original timeline).
  std::vector<std::string> got = QueryAll(&recovered);
  std::sort(want.begin(), want.end());
  std::sort(got.begin(), got.end());
  EXPECT_EQ(got, want);
}

}  // namespace
}  // namespace odh::core
