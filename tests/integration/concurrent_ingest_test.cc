#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "storage/sim_disk.h"

namespace odh::core {
namespace {

/// Multi-threaded ingestion against one OdhSystem: N ingest threads with
/// disjoint source ranges, concurrent dirty reads from another thread, and
/// crash recovery of a multi-threaded run. The SQL metadata router is off
/// (the SQL engine is single-threaded); routing uses the immutable config.
OdhOptions ConcurrentOptions() {
  OdhOptions options;
  options.batch_size = 16;
  options.mg_group_size = 8;
  options.sql_metadata_router = false;
  options.writer_shards = 4;
  options.read_parallelism = 2;
  return options;
}

constexpr int kThreads = 4;
constexpr SourceId kSourcesPerThread = 8;
constexpr int kPointsPerSource = 100;
constexpr SourceId kNumSources = kThreads * kSourcesPerThread;

/// The last two sources of each thread's range sample at 0.1 Hz, routing
/// them to MG so group buffers see cross-thread shard traffic too.
bool IsSlow(SourceId id) { return (id - 1) % kSourcesPerThread >= 6; }

Timestamp PointTs(SourceId id, int i) {
  return static_cast<Timestamp>(i) * kMicrosPerSecond * (IsSlow(id) ? 10 : 1);
}

double TagValue(SourceId id, int i) { return id * 1000.0 + i; }

int DefineAndRegister(OdhSystem* odh) {
  int type = odh->DefineSchemaType("env", {"a", "b"}).value();
  for (SourceId id = 1; id <= kNumSources; ++id) {
    Timestamp interval = (IsSlow(id) ? 10 : 1) * kMicrosPerSecond;
    ODH_CHECK_OK(odh->RegisterSource(id, type, interval, true));
  }
  return type;
}

/// Each thread ingests its own source range; per-source timestamps stay
/// monotonic within the owning thread, as the writer contract requires.
void IngestConcurrently(OdhSystem* odh, std::atomic<bool>* failed) {
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([odh, t, failed] {
      const SourceId first = 1 + t * kSourcesPerThread;
      for (int i = 0; i < kPointsPerSource; ++i) {
        for (SourceId id = first; id < first + kSourcesPerThread; ++id) {
          OperationalRecord r{id, PointTs(id, i),
                              {TagValue(id, i), 0.5 * id}};
          if (!odh->Ingest(r).ok()) {
            failed->store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
}

/// Reads a source's full history and requires it complete and exact: every
/// point present once with the right timestamp and value. RTS blobs never
/// overlap per source, so those scans must also emit in timestamp order;
/// MG group blobs can overlap in time when concurrent threads skew (the
/// cursor contract is blob order, not global order — SQL sorts on top), so
/// slow sources are verified as a sorted set.
void VerifySourceComplete(OdhSystem* odh, int type, SourceId id) {
  auto cursor = odh->HistoricalQuery(type, id, kMinTimestamp,
                                     kMaxTimestamp, {0, 1});
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  OperationalRecord r;
  std::vector<std::pair<Timestamp, double>> points;
  Timestamp last_ts = kMinTimestamp;
  while (true) {
    auto has = (*cursor)->Next(&r);
    ASSERT_TRUE(has.ok()) << has.status().ToString();
    if (!*has) break;
    EXPECT_EQ(r.id, id);
    if (!IsSlow(id)) {
      EXPECT_GE(r.ts, last_ts) << "source " << id;
      last_ts = r.ts;
    }
    points.emplace_back(r.ts, r.tags[0]);
  }
  ASSERT_EQ(points.size(), static_cast<size_t>(kPointsPerSource))
      << "source " << id;
  std::sort(points.begin(), points.end());
  for (int i = 0; i < kPointsPerSource; ++i) {
    EXPECT_EQ(points[i].first, PointTs(id, i)) << "source " << id;
    EXPECT_DOUBLE_EQ(points[i].second, TagValue(id, i)) << "source " << id;
  }
}

TEST(ConcurrentIngestTest, ParallelIngestPreservesEveryPoint) {
  OdhSystem odh(ConcurrentOptions());
  int type = DefineAndRegister(&odh);

  std::atomic<bool> failed{false};
  IngestConcurrently(&odh, &failed);
  ASSERT_FALSE(failed.load());
  ODH_CHECK_OK(odh.FlushAll());

  EXPECT_EQ(odh.writer()->stats().points_ingested,
            static_cast<int64_t>(kNumSources) * kPointsPerSource);

  for (SourceId id = 1; id <= kNumSources; ++id) {
    VerifySourceComplete(&odh, type, id);
  }
}

TEST(ConcurrentIngestTest, DirtyReadsDuringParallelIngestStayConsistent) {
  OdhSystem odh(ConcurrentOptions());
  int type = DefineAndRegister(&odh);

  // One settled source ingested before the storm: its counts are exact
  // even while every other source is mid-flight. It must be an RTS source
  // (no group sharing) so no concurrent flush can touch its buffers.
  const SourceId settled = 1;
  for (int i = 0; i < kPointsPerSource; ++i) {
    ODH_CHECK_OK(odh.Ingest({settled, PointTs(settled, i),
                             {TagValue(settled, i), 1.0}}));
  }

  std::atomic<bool> failed{false};
  std::atomic<bool> query_failed{false};
  std::atomic<bool> done{false};
  std::thread querier([&] {
    // Historical reads with dirty-read isolation while ingestion runs. The
    // settled source must always return its full, exact history; in-flight
    // sources must return monotone timestamps and matching values.
    int round = 0;
    while (!done.load(std::memory_order_acquire)) {
      auto cursor = odh.HistoricalQuery(type, settled, kMinTimestamp,
                                        kMaxTimestamp, {0, 1});
      if (!cursor.ok()) {
        query_failed.store(true);
        return;
      }
      OperationalRecord r;
      int count = 0;
      while (true) {
        auto has = (*cursor)->Next(&r);
        if (!has.ok()) {
          query_failed.store(true);
          return;
        }
        if (!*has) break;
        if (r.id != settled ||
            std::fabs(r.tags[0] - TagValue(settled, count)) > 1e-9) {
          query_failed.store(true);
          return;
        }
        ++count;
      }
      if (count != kPointsPerSource) {
        query_failed.store(true);
        return;
      }
      SourceId in_flight = 2 + (round++ % (kNumSources - 1));
      auto flying = odh.HistoricalQuery(type, in_flight, kMinTimestamp,
                                        kMaxTimestamp, {0, 1});
      if (!flying.ok()) {
        query_failed.store(true);
        return;
      }
      Timestamp last_ts = kMinTimestamp;
      while (true) {
        auto has = (*flying)->Next(&r);
        if (!has.ok()) {
          query_failed.store(true);
          return;
        }
        if (!*has) break;
        // Per-source order must survive dirty reads; MG group blobs may
        // interleave under skew, so order is only checked for RTS sources.
        if (!IsSlow(in_flight) && r.ts < last_ts) {
          query_failed.store(true);
          return;
        }
        last_ts = r.ts;
      }
    }
  });

  // The settled source already advanced its timestamps, so the storm
  // covers every source except it.
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      const SourceId first = 1 + t * kSourcesPerThread;
      for (int i = 0; i < kPointsPerSource; ++i) {
        for (SourceId id = first; id < first + kSourcesPerThread; ++id) {
          if (id == settled) continue;
          OperationalRecord r{id, PointTs(id, i),
                              {TagValue(id, i), 0.5 * id}};
          if (!odh.Ingest(r).ok()) {
            failed.store(true);
            return;
          }
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  done.store(true, std::memory_order_release);
  querier.join();

  ASSERT_FALSE(failed.load());
  ASSERT_FALSE(query_failed.load());
  ODH_CHECK_OK(odh.FlushAll());
}

TEST(ConcurrentIngestTest, MultiThreadedIngestRecoversAfterCrash) {
  OdhSystem odh(ConcurrentOptions());
  int type = DefineAndRegister(&odh);
  std::atomic<bool> failed{false};
  IngestConcurrently(&odh, &failed);
  ASSERT_FALSE(failed.load());
  ODH_CHECK_OK(odh.FlushAll());

  // Power cut after the flush: the durable image (WAL included) must
  // replay every synced blob into a fresh store.
  auto crashed = odh.database()->disk()->CloneDurable();

  OdhSystem recovered(ConcurrentOptions());
  int rec_type = DefineAndRegister(&recovered);
  auto report = recovered.Recover(crashed.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->torn_bytes_dropped, 0u);

  EXPECT_EQ(recovered.store()->rts_stats(rec_type).point_count +
                recovered.store()->irts_stats(rec_type).point_count +
                recovered.store()->mg_stats(rec_type).point_count,
            odh.store()->rts_stats(type).point_count +
                odh.store()->irts_stats(type).point_count +
                odh.store()->mg_stats(type).point_count);

  // Spot-check a few sources point for point (1: RTS; 8: MG; 13: RTS).
  for (SourceId id : {SourceId{1}, SourceId{8}, SourceId{13}}) {
    VerifySourceComplete(&recovered, rec_type, id);
  }
}

}  // namespace
}  // namespace odh::core
