#include "sql/vectorized.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <vector>

namespace odh::sql {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

/// Replays a fixed list of batches; used to drive the adapter directly.
class FakeBatchCursor : public BatchCursor {
 public:
  explicit FakeBatchCursor(std::vector<ColumnBatch> batches)
      : batches_(std::move(batches)) {}

  Result<bool> Next(ColumnBatch* batch) override {
    if (pos_ >= batches_.size()) return false;
    *batch = batches_[pos_++];
    return true;
  }

 private:
  std::vector<ColumnBatch> batches_;
  size_t pos_ = 0;
};

ColumnBatch MakeBatch(SourceId id, std::vector<Timestamp> ts,
                      std::vector<std::vector<double>> tags) {
  ColumnBatch b;
  b.uniform_id = id;
  b.timestamps = std::move(ts);
  b.tags = std::move(tags);
  return b;
}

std::vector<Row> Drain(RowCursor* cursor, size_t at_most = SIZE_MAX) {
  std::vector<Row> rows;
  Row row;
  while (rows.size() < at_most) {
    auto more = cursor->Next(&row);
    EXPECT_TRUE(more.ok());
    if (!more.ok() || !*more) break;
    rows.push_back(row);
  }
  return rows;
}

// FilterByRange --------------------------------------------------------------

TEST(FilterByRangeTest, InclusiveAndExclusiveBounds) {
  ColumnBatch b = MakeBatch(1, {0, 1, 2, 3}, {{1.0, 2.0, 3.0, 4.0}});
  FilterByRange(b.tags[0], 2.0, 3.0, false, false, &b);
  ASSERT_FALSE(b.sel_all);
  EXPECT_EQ(b.sel, (std::vector<int32_t>{1, 2}));

  ColumnBatch e = MakeBatch(1, {0, 1, 2, 3}, {{1.0, 2.0, 3.0, 4.0}});
  FilterByRange(e.tags[0], 2.0, 3.0, true, true, &e);
  EXPECT_TRUE(e.sel.empty());
  EXPECT_FALSE(e.sel_all);
}

TEST(FilterByRangeTest, AllPassingStaysSelAll) {
  ColumnBatch b = MakeBatch(1, {0, 1}, {{1.0, 2.0}});
  FilterByRange(b.tags[0], 0.0, 10.0, false, false, &b);
  EXPECT_TRUE(b.sel_all);
  EXPECT_EQ(b.selected(), 2u);
}

TEST(FilterByRangeTest, NaNNeverMatches) {
  ColumnBatch b = MakeBatch(1, {0, 1, 2}, {{1.0, kNaN, 3.0}});
  // The whole real line: only the NaN row drops.
  FilterByRange(b.tags[0], -1e300, 1e300, false, false, &b);
  EXPECT_EQ(b.sel, (std::vector<int32_t>{0, 2}));
}

TEST(FilterByRangeTest, IntersectsExistingSelection) {
  ColumnBatch b = MakeBatch(1, {0, 1, 2, 3}, {{1.0, 2.0, 3.0, 4.0},
                                              {9.0, 5.0, 9.0, 5.0}});
  FilterByRange(b.tags[0], 2.0, 4.0, false, false, &b);  // rows 1,2,3
  FilterByRange(b.tags[1], 5.0, 5.0, false, false, &b);  // rows 1,3
  EXPECT_EQ(b.sel, (std::vector<int32_t>{1, 3}));
}

TEST(FilterByRangeTest, UnprojectedColumnMatchesNothing) {
  ColumnBatch b = MakeBatch(1, {0, 1}, {{}});  // tag 0 unprojected
  FilterByRange(b.tags[0], -1e300, 1e300, false, false, &b);
  EXPECT_FALSE(b.sel_all);
  EXPECT_EQ(b.selected(), 0u);
}

/// Parity satellite: the kernel must agree with a scalar NULL-aware
/// re-check on every combination of NaN holes and bound exclusivity.
TEST(FilterByRangeTest, MatchesScalarSemanticsOnNaNHoles) {
  std::vector<double> col;
  for (int i = 0; i < 64; ++i) {
    col.push_back(i % 5 == 0 ? kNaN : 0.5 * i - 7.0);
  }
  for (bool min_ex : {false, true}) {
    for (bool max_ex : {false, true}) {
      ColumnBatch b;
      b.timestamps.assign(col.size(), 0);
      b.tags = {col};
      FilterByRange(col, -3.0, 11.0, min_ex, max_ex, &b);
      std::vector<int32_t> expect;
      for (size_t i = 0; i < col.size(); ++i) {
        const double v = col[i];
        if (std::isnan(v)) continue;  // NULL never satisfies a predicate.
        if (min_ex ? v <= -3.0 : v < -3.0) continue;
        if (max_ex ? v >= 11.0 : v > 11.0) continue;
        expect.push_back(static_cast<int32_t>(i));
      }
      ASSERT_FALSE(b.sel_all);
      EXPECT_EQ(b.sel, expect) << "min_ex=" << min_ex << " max_ex=" << max_ex;
    }
  }
}

// BatchAggregator ------------------------------------------------------------

TEST(BatchAggregatorTest, EmptyInputFollowsSqlConventions) {
  BatchAggregator agg({{AggregateOp::kCountStar, -1},
                       {AggregateOp::kCount, 2},
                       {AggregateOp::kSum, 2},
                       {AggregateOp::kAvg, 2},
                       {AggregateOp::kMin, 2},
                       {AggregateOp::kMax, 2}});
  Row out = agg.Finalize();
  EXPECT_EQ(out[0], Datum::Int64(0));
  EXPECT_EQ(out[1], Datum::Int64(0));
  EXPECT_TRUE(out[2].is_null());
  EXPECT_TRUE(out[3].is_null());
  EXPECT_TRUE(out[4].is_null());
  EXPECT_TRUE(out[5].is_null());
}

TEST(BatchAggregatorTest, NaNRowsCountForStarButNotForValues) {
  BatchAggregator agg({{AggregateOp::kCountStar, -1},
                       {AggregateOp::kCount, 2},
                       {AggregateOp::kSum, 2},
                       {AggregateOp::kMin, 2},
                       {AggregateOp::kMax, 2}});
  agg.Accumulate(MakeBatch(1, {0, 1, 2, 3}, {{4.0, kNaN, -2.0, 10.0}}));
  Row out = agg.Finalize();
  EXPECT_EQ(out[0], Datum::Int64(4));
  EXPECT_EQ(out[1], Datum::Int64(3));
  EXPECT_EQ(out[2], Datum::Double(12.0));
  EXPECT_EQ(out[3], Datum::Double(-2.0));
  EXPECT_EQ(out[4], Datum::Double(10.0));
}

TEST(BatchAggregatorTest, HonorsSelectionVector) {
  ColumnBatch b = MakeBatch(1, {0, 1, 2, 3}, {{1.0, 2.0, 3.0, 4.0}});
  b.sel = {1, 3};
  b.sel_all = false;
  BatchAggregator agg({{AggregateOp::kCountStar, -1},
                       {AggregateOp::kSum, 2}});
  agg.Accumulate(b);
  Row out = agg.Finalize();
  EXPECT_EQ(out[0], Datum::Int64(2));
  EXPECT_EQ(out[1], Datum::Double(6.0));
}

TEST(BatchAggregatorTest, UnprojectedColumnIsAllNull) {
  BatchAggregator agg({{AggregateOp::kCount, 2}, {AggregateOp::kSum, 2}});
  agg.Accumulate(MakeBatch(1, {0, 1}, {{}}));  // tag 0 unprojected
  Row out = agg.Finalize();
  EXPECT_EQ(out[0], Datum::Int64(0));
  EXPECT_TRUE(out[1].is_null());
}

TEST(BatchAggregatorTest, AccumulatesAcrossBatches) {
  BatchAggregator agg({{AggregateOp::kAvg, 2}});
  agg.Accumulate(MakeBatch(1, {0, 1}, {{1.0, 2.0}}));
  agg.Accumulate(MakeBatch(1, {2}, {{6.0}}));
  EXPECT_EQ(agg.Finalize()[0], Datum::Double(3.0));
}

TEST(VectorizedAggregatableTest, Rules) {
  EXPECT_TRUE(VectorizedAggregatable({{AggregateOp::kCountStar, -1}}));
  EXPECT_TRUE(VectorizedAggregatable({{AggregateOp::kCount, 0}}));
  EXPECT_TRUE(VectorizedAggregatable({{AggregateOp::kSum, 2}}));
  EXPECT_FALSE(VectorizedAggregatable({{AggregateOp::kCount, -1}}));
  // Value aggregates over id/timestamp are not double columns.
  EXPECT_FALSE(VectorizedAggregatable({{AggregateOp::kSum, 1}}));
  EXPECT_FALSE(VectorizedAggregatable({{AggregateOp::kMin, 0}}));
}

// BatchRowAdapter ------------------------------------------------------------

TEST(BatchRowAdapterTest, SkipsEmptyAndFilteredOutBatches) {
  ColumnBatch filtered = MakeBatch(7, {10, 11}, {{1.0, 2.0}});
  filtered.sel_all = false;  // everything filtered away
  std::vector<ColumnBatch> batches = {
      MakeBatch(7, {}, {}),              // zero-row batch
      MakeBatch(7, {20}, {{5.0}}),       // one survivor
      filtered,                          // selected() == 0
      MakeBatch(7, {30}, {{6.0}}),
  };
  auto rows = Drain(
      MakeBatchRowAdapter(std::make_unique<FakeBatchCursor>(batches)).get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][1], Datum::Time(20));
  EXPECT_EQ(rows[1][1], Datum::Time(30));
}

TEST(BatchRowAdapterTest, MidBatchStopAndResume) {
  // A LIMIT stops pulling mid-batch; the adapter must keep its position
  // and hand out the remaining rows if the caller comes back.
  std::vector<ColumnBatch> batches = {
      MakeBatch(1, {0, 1, 2}, {{10.0, 11.0, 12.0}})};
  auto cursor =
      MakeBatchRowAdapter(std::make_unique<FakeBatchCursor>(batches));
  auto first = Drain(cursor.get(), 1);  // LIMIT 1
  ASSERT_EQ(first.size(), 1u);
  EXPECT_EQ(first[0][2], Datum::Double(10.0));
  auto rest = Drain(cursor.get());
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0][2], Datum::Double(11.0));
  EXPECT_EQ(rest[1][2], Datum::Double(12.0));
}

TEST(BatchRowAdapterTest, NullsFromNaNAndUnprojectedColumns) {
  // tag 0 projected with a NaN hole, tag 1 unprojected (empty).
  std::vector<ColumnBatch> batches = {
      MakeBatch(3, {0, 1}, {{1.5, kNaN}, {}})};
  auto rows = Drain(
      MakeBatchRowAdapter(std::make_unique<FakeBatchCursor>(batches)).get());
  ASSERT_EQ(rows.size(), 2u);
  ASSERT_EQ(rows[0].size(), 4u);  // id, ts, tag0, tag1
  EXPECT_EQ(rows[0][0], Datum::Int64(3));
  EXPECT_EQ(rows[0][2], Datum::Double(1.5));
  EXPECT_TRUE(rows[0][3].is_null());
  EXPECT_TRUE(rows[1][2].is_null());
  EXPECT_TRUE(rows[1][3].is_null());
}

TEST(BatchRowAdapterTest, SelectionVectorAndPerRowIds) {
  ColumnBatch b = MakeBatch(-1, {0, 1, 2}, {{1.0, 2.0, 3.0}});
  b.ids = {100, 200, 300};
  b.sel = {0, 2};
  b.sel_all = false;
  std::vector<ColumnBatch> batches = {b};
  auto rows = Drain(
      MakeBatchRowAdapter(std::make_unique<FakeBatchCursor>(batches)).get());
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Datum::Int64(100));
  EXPECT_EQ(rows[1][0], Datum::Int64(300));
  EXPECT_EQ(rows[1][2], Datum::Double(3.0));
}

}  // namespace
}  // namespace odh::sql
