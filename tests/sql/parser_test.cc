#include "sql/parser.h"

#include <gtest/gtest.h>

namespace odh::sql {
namespace {

TEST(ParserTest, SimpleSelectStar) {
  Statement stmt = Parse("SELECT * FROM trade").value();
  ASSERT_EQ(stmt.kind, Statement::Kind::kSelect);
  ASSERT_EQ(stmt.select->items.size(), 1u);
  EXPECT_TRUE(stmt.select->items[0].star);
  ASSERT_EQ(stmt.select->tables.size(), 1u);
  EXPECT_EQ(stmt.select->tables[0].name, "trade");
  EXPECT_EQ(stmt.select->where, nullptr);
}

TEST(ParserTest, PaperTemplateTQ1) {
  Statement stmt =
      Parse("select * from TRADE where T_CA_ID = 42").value();
  ASSERT_NE(stmt.select->where, nullptr);
  EXPECT_EQ(stmt.select->where->kind(), ExprKind::kBinary);
}

TEST(ParserTest, PaperTemplateTQ2Between) {
  Statement stmt = Parse(
      "select * from TRADE where T_DTS between '2013-11-18 00:00:00' "
      "and '2013-11-22 23:59:59'").value();
  ASSERT_NE(stmt.select->where, nullptr);
  EXPECT_EQ(stmt.select->where->kind(), ExprKind::kBetween);
}

TEST(ParserTest, PaperTemplateTQ4MultiJoin) {
  Statement stmt = Parse(
      "select CA_NAME, T_DTS, T_CHRG from TRADE t, ACCOUNT a, CUSTOMER c "
      "where a.CA_ID = t.T_CA_ID and a.CA_C_ID = c.C_ID and "
      "C_DOB between '1970-01-01 00:00:00' and '1980-01-01 00:00:00'")
      .value();
  EXPECT_EQ(stmt.select->tables.size(), 3u);
  EXPECT_EQ(stmt.select->tables[0].alias, "t");
  EXPECT_EQ(stmt.select->items.size(), 3u);
}

TEST(ParserTest, AliasesWithAndWithoutAs) {
  Statement stmt =
      Parse("SELECT a.x AS foo, b.y bar FROM t1 a, t2 AS b").value();
  EXPECT_EQ(stmt.select->items[0].alias, "foo");
  EXPECT_EQ(stmt.select->items[1].alias, "bar");
  EXPECT_EQ(stmt.select->tables[0].alias, "a");
  EXPECT_EQ(stmt.select->tables[1].alias, "b");
}

TEST(ParserTest, QualifiedStar) {
  Statement stmt = Parse("SELECT t.*, u.x FROM t, u").value();
  EXPECT_TRUE(stmt.select->items[0].star);
  EXPECT_EQ(stmt.select->items[0].star_table, "t");
  EXPECT_FALSE(stmt.select->items[1].star);
}

TEST(ParserTest, OperatorPrecedence) {
  Statement stmt =
      Parse("SELECT a + b * c FROM t WHERE x = 1 OR y = 2 AND z = 3")
          .value();
  // a + (b * c)
  const auto* item = static_cast<BinaryExpr*>(stmt.select->items[0].expr.get());
  EXPECT_EQ(item->op, BinaryOp::kAdd);
  EXPECT_EQ(static_cast<BinaryExpr*>(item->right.get())->op, BinaryOp::kMul);
  // x=1 OR (y=2 AND z=3)
  const auto* where = static_cast<BinaryExpr*>(stmt.select->where.get());
  EXPECT_EQ(where->op, BinaryOp::kOr);
  EXPECT_EQ(static_cast<BinaryExpr*>(where->right.get())->op, BinaryOp::kAnd);
}

TEST(ParserTest, NegativeNumbersFold) {
  Statement stmt = Parse("SELECT * FROM t WHERE lat < -115.978").value();
  const auto* where = static_cast<BinaryExpr*>(stmt.select->where.get());
  const auto* lit = static_cast<LiteralExpr*>(where->right.get());
  EXPECT_DOUBLE_EQ(lit->value.double_value(), -115.978);
}

TEST(ParserTest, GroupByOrderByLimit) {
  Statement stmt = Parse(
      "SELECT id, AVG(v) FROM t GROUP BY id ORDER BY id DESC LIMIT 10")
      .value();
  EXPECT_EQ(stmt.select->group_by.size(), 1u);
  ASSERT_EQ(stmt.select->order_by.size(), 1u);
  EXPECT_FALSE(stmt.select->order_by[0].ascending);
  EXPECT_EQ(stmt.select->limit, 10);
}

TEST(ParserTest, Aggregates) {
  Statement stmt =
      Parse("SELECT COUNT(*), SUM(a), MIN(b), MAX(b), AVG(a) FROM t")
          .value();
  EXPECT_EQ(stmt.select->items.size(), 5u);
  const auto* count =
      static_cast<AggregateExpr*>(stmt.select->items[0].expr.get());
  EXPECT_TRUE(count->star);
  EXPECT_EQ(count->func, AggregateFunc::kCount);
}

TEST(ParserTest, StarOnlyValidInCount) {
  EXPECT_FALSE(Parse("SELECT SUM(*) FROM t").ok());
}

TEST(ParserTest, IsNullAndNot) {
  Statement stmt =
      Parse("SELECT * FROM t WHERE a IS NULL AND b IS NOT NULL AND NOT c = 1")
          .value();
  ASSERT_NE(stmt.select->where, nullptr);
}

TEST(ParserTest, InsertPositional) {
  Statement stmt =
      Parse("INSERT INTO t VALUES (1, 'x', 2.5), (2, 'y', 3.5)").value();
  ASSERT_EQ(stmt.kind, Statement::Kind::kInsert);
  EXPECT_EQ(stmt.insert->table, "t");
  EXPECT_TRUE(stmt.insert->columns.empty());
  EXPECT_EQ(stmt.insert->rows.size(), 2u);
  EXPECT_EQ(stmt.insert->rows[0].size(), 3u);
}

TEST(ParserTest, InsertWithColumns) {
  Statement stmt = Parse("INSERT INTO t (a, b) VALUES (1, 2)").value();
  ASSERT_EQ(stmt.insert->columns.size(), 2u);
  EXPECT_EQ(stmt.insert->columns[1], "b");
}

TEST(ParserTest, CreateTable) {
  Statement stmt = Parse(
      "CREATE TABLE sensor_info (id BIGINT, name VARCHAR(32), lat DOUBLE, "
      "born TIMESTAMP, ok BOOLEAN)").value();
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateTable);
  ASSERT_EQ(stmt.create_table->columns.size(), 5u);
  EXPECT_EQ(stmt.create_table->columns[0].type, DataType::kInt64);
  EXPECT_EQ(stmt.create_table->columns[1].type, DataType::kString);
  EXPECT_EQ(stmt.create_table->columns[2].type, DataType::kDouble);
  EXPECT_EQ(stmt.create_table->columns[3].type, DataType::kTimestamp);
  EXPECT_EQ(stmt.create_table->columns[4].type, DataType::kBool);
}

TEST(ParserTest, CreateIndex) {
  Statement stmt = Parse("CREATE INDEX idx ON t (a, b)").value();
  ASSERT_EQ(stmt.kind, Statement::Kind::kCreateIndex);
  EXPECT_EQ(stmt.create_index->index, "idx");
  EXPECT_EQ(stmt.create_index->table, "t");
  EXPECT_EQ(stmt.create_index->columns.size(), 2u);
}

TEST(ParserTest, ErrorsAreInvalidArgument) {
  EXPECT_TRUE(Parse("SELEC * FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT FROM t").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t WHERE").status().IsInvalidArgument());
  EXPECT_TRUE(Parse("SELECT * FROM t extra garbage ,")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(Parse("CREATE TABLE t (a FOO)").status().IsInvalidArgument());
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(Parse("SELECT * FROM t;").ok());
}

}  // namespace
}  // namespace odh::sql
