// Memory governance end to end: ORDER BY over budget spills sorted runs
// to disk and stays byte-identical to the in-memory sort (NaN and NULL
// included), LIMIT bounds sort memory (top-N) and survives over-budget
// conversion, non-spillable paths fail fast with ResourceExhausted and
// no partial rows, buffered streams release rows and spill files eagerly
// on completion / abandonment / poison, OdhStore::Recover sweeps
// orphaned spill files after a crash, the memory columns surface through
// EXPLAIN PROFILE and odh_queries, and the prepared-statement cache
// promotes on re-execution (true LRU, not insertion order).

#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "sql/session.h"
#include "storage/fault_policy.h"
#include "storage/sim_disk.h"
#include "storage/spill_file.h"

namespace odh::sql {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

core::OdhOptions Governed(int64_t query_bytes, int64_t session_bytes = 0) {
  core::OdhOptions options;
  options.query_memory_budget = query_bytes;
  options.session_memory_budget = session_bytes;
  return options;
}

/// Two regular sensors, 500 points each: ~1000 rows whose sort working
/// set comfortably exceeds the budgets the governed tests configure.
void FillHistorian(core::OdhSystem* odh) {
  int type = odh->DefineSchemaType("env", {"temperature", "wind"}).value();
  for (SourceId id = 1; id <= 2; ++id) {
    ODH_CHECK_OK(odh->RegisterSource(id, type, kMicrosPerSecond,
                                     /*regular=*/true));
    for (int i = 0; i < 500; ++i) {
      ODH_CHECK_OK(odh->Ingest(
          {id, i * kMicrosPerSecond, {20.0 + id + 0.01 * i, 1.0 * id}}));
    }
  }
  ODH_CHECK_OK(odh->FlushAll());
}

/// A relational doubles table where NaN can survive to ORDER BY (the
/// historian scan turns NaN tags into NULL): id 0..n-1 in insertion
/// order; v cycles NULL / NaN / distinct-ish numbers with duplicates.
void LoadDoubles(Session* session, int n) {
  ODH_CHECK_OK(
      session->Execute("CREATE TABLE m (id BIGINT, v DOUBLE)").status());
  auto insert = session->Prepare("INSERT INTO m VALUES (?, ?)").value();
  for (int i = 0; i < n; ++i) {
    Datum v;
    if (i % 11 == 0) {
      v = Datum::Null();
    } else if (i % 7 == 0) {
      v = Datum::Double(kNaN);
    } else {
      v = Datum::Double(static_cast<double>((i * 37) % 101) + i * 1e-4);
    }
    ODH_CHECK_OK(
        session->ExecutePrepared(insert, {Datum::Int64(i), v}).status());
  }
}

int CountSpillFiles(storage::SimDisk* disk) {
  int n = 0;
  for (const std::string& name : disk->ListFiles()) {
    if (storage::IsSpillFileName(name)) ++n;
  }
  return n;
}

int CountSpillFiles(core::OdhSystem* odh) {
  return CountSpillFiles(odh->database()->disk());
}

std::string Render(const Row& row) {
  std::string s;
  for (const Datum& d : row) s += d.ToString() + "|";
  return s;
}

std::vector<std::string> Render(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) out.push_back(Render(row));
  return out;
}

/// Drains a stream to completion, CHECK-failing on any cursor error.
std::vector<Row> Drain(QueryStream* stream) {
  std::vector<Row> rows;
  Row row;
  while (true) {
    auto more = stream->Next(&row);
    ODH_CHECK_OK(more.status());
    if (!*more) break;
    rows.push_back(row);
  }
  return rows;
}

int64_t ProfileMetric(const QueryResult& r, const std::string& name) {
  for (const Row& row : r.rows) {
    if (row[0] == Datum::String(name)) return row[1].int64_value();
  }
  ADD_FAILURE() << "EXPLAIN PROFILE row missing: " << name;
  return -1;
}

TEST(MemoryGovernanceTest, OrderBySpillsAndMatchesInMemorySort) {
  core::OdhSystem plain;  // Unbounded: the whole sort fits in memory.
  FillHistorian(&plain);
  core::OdhSystem governed(Governed(/*query_bytes=*/128 * 1024));
  FillHistorian(&governed);

  // wind is constant per sensor: 500-deep key ties, so run boundaries
  // land inside tie groups and the merge must reproduce stable order.
  const std::string q =
      "SELECT id, ts, temperature, wind FROM env_v ORDER BY wind DESC, ts";

  Session plain_session(plain.engine());
  auto plain_stream = plain_session.ExecuteStreaming(q);
  ASSERT_TRUE(plain_stream.ok()) << plain_stream.status().ToString();
  const std::vector<std::string> expected = Render(Drain(plain_stream->get()));
  ASSERT_EQ(expected.size(), 1000u);
  EXPECT_EQ((*plain_stream)->profile().spill_runs, 0);

  Session session(governed.engine());
  auto stream = session.ExecuteStreaming(q);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const std::vector<std::string> got = Render(Drain(stream->get()));
  EXPECT_EQ(got, expected);

  const QueryProfile& profile = (*stream)->profile();
  EXPECT_GT(profile.spill_runs, 0);
  EXPECT_GT(profile.spill_bytes, 0);
  EXPECT_GT(profile.mem_peak_bytes, 0);
  EXPECT_LE(profile.mem_peak_bytes, 128 * 1024);  // The budget held.
  EXPECT_EQ(CountSpillFiles(&governed), 0);  // Deleted on completion.

  // Materialized execution of the same statement: same rows, same order,
  // and it spilled too (the session/materialization budget is separate
  // from the query working-set budget).
  auto materialized = session.Execute(q);
  ASSERT_TRUE(materialized.ok()) << materialized.status().ToString();
  EXPECT_EQ(Render(materialized->rows), expected);
  EXPECT_GT(materialized->profile.spill_runs, 0);

  // EXPLAIN PROFILE surfaces the memory rows.
  auto explained = session.Execute("EXPLAIN PROFILE " + q);
  ASSERT_TRUE(explained.ok()) << explained.status().ToString();
  EXPECT_GT(ProfileMetric(*explained, "mem_peak_bytes"), 0);
  EXPECT_GT(ProfileMetric(*explained, "spill_runs"), 0);
  EXPECT_GT(ProfileMetric(*explained, "spill_bytes"), 0);

  // ... and so does the odh_queries system table.
  auto queries = session.Execute(
      "SELECT statement, mem_peak_bytes, spill_runs FROM odh_queries");
  ASSERT_TRUE(queries.ok()) << queries.status().ToString();
  bool found = false;
  for (const Row& row : queries->rows) {
    if (row[0].string_value().find("ORDER BY wind") != std::string::npos &&
        row[2].int64_value() > 0) {
      EXPECT_GT(row[1].int64_value(), 0);
      found = true;
    }
  }
  EXPECT_TRUE(found) << "no spilled statement visible in odh_queries";
}

TEST(MemoryGovernanceTest, SpilledSortPreservesNaNAndNullSemantics) {
  core::OdhSystem plain;
  Session plain_session(plain.engine());
  LoadDoubles(&plain_session, 800);
  core::OdhSystem governed(Governed(/*query_bytes=*/64 * 1024));
  Session session(governed.engine());
  LoadDoubles(&session, 800);

  const std::string q = "SELECT id, v FROM m ORDER BY v";
  auto plain_result = plain_session.Execute(q);
  ASSERT_TRUE(plain_result.ok()) << plain_result.status().ToString();
  EXPECT_EQ(plain_result->profile.spill_runs, 0);

  auto stream = session.ExecuteStreaming(q);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const std::vector<Row> rows = Drain(stream->get());
  EXPECT_GT((*stream)->profile().spill_runs, 0);

  // Byte-identical to the in-memory sort, NaN and NULL included.
  EXPECT_EQ(Render(rows), Render(plain_result->rows));

  // Structural semantics: NULLs first, non-NaN numbers non-decreasing,
  // NaNs last — and every NaN survived the spill codec as a real NaN.
  ASSERT_EQ(rows.size(), 800u);
  size_t i = 0;
  size_t nulls = 0, nans = 0;
  while (i < rows.size() && rows[i][1].is_null()) ++i, ++nulls;
  double prev = -std::numeric_limits<double>::infinity();
  while (i < rows.size() && !rows[i][1].is_null() &&
         !std::isnan(rows[i][1].double_value())) {
    EXPECT_GE(rows[i][1].double_value(), prev);
    prev = rows[i][1].double_value();
    ++i;
  }
  while (i < rows.size()) {
    EXPECT_TRUE(std::isnan(rows[i][1].double_value()));
    ++i, ++nans;
  }
  size_t expected_nulls = 0, expected_nans = 0;
  for (int k = 0; k < 800; ++k) {
    if (k % 11 == 0) {
      ++expected_nulls;
    } else if (k % 7 == 0) {
      ++expected_nans;
    }
  }
  EXPECT_EQ(nulls, expected_nulls);
  EXPECT_EQ(nans, expected_nans);
}

TEST(MemoryGovernanceTest, TopNLimitBoundsMemoryAndMatchesFullSort) {
  core::OdhSystem odh;
  FillHistorian(&odh);
  Session session(odh.engine());

  const std::string keys = " ORDER BY temperature DESC, ts";
  auto full = session.Execute(
      "SELECT id, ts, temperature FROM env_v" + keys);
  ASSERT_TRUE(full.ok()) << full.status().ToString();
  ASSERT_EQ(full->rows.size(), 1000u);

  auto limited = session.Execute(
      "SELECT id, ts, temperature FROM env_v" + keys + " LIMIT 25");
  ASSERT_TRUE(limited.ok()) << limited.status().ToString();
  ASSERT_EQ(limited->rows.size(), 25u);
  const std::vector<std::string> full_rendered = Render(full->rows);
  EXPECT_EQ(Render(limited->rows),
            std::vector<std::string>(full_rendered.begin(),
                                     full_rendered.begin() + 25));

  // The bounded heap holds 25 rows instead of 1000: even with no budget
  // configured the tracked peak must collapse.
  EXPECT_GT(limited->profile.mem_peak_bytes, 0);
  EXPECT_LT(limited->profile.mem_peak_bytes * 4,
            full->profile.mem_peak_bytes);
  EXPECT_EQ(limited->profile.spill_runs, 0);
}

TEST(MemoryGovernanceTest, TopNOverBudgetConvertsToSpillAndStaysExact) {
  core::OdhSystem plain;
  Session plain_session(plain.engine());
  LoadDoubles(&plain_session, 800);
  core::OdhSystem governed(Governed(/*query_bytes=*/48 * 1024));
  Session session(governed.engine());
  LoadDoubles(&session, 800);

  // LIMIT 300's kept set alone exceeds 48 KiB, so the heap converts to
  // the external path mid-stream; the answer may not change.
  const std::string q = "SELECT id, v FROM m ORDER BY v LIMIT 300";
  auto expected = plain_session.Execute(q);
  ASSERT_TRUE(expected.ok()) << expected.status().ToString();
  ASSERT_EQ(expected->rows.size(), 300u);
  EXPECT_EQ(expected->profile.spill_runs, 0);

  // Sanity: the unbounded top-N equals the full-sort prefix.
  auto full = plain_session.Execute("SELECT id, v FROM m ORDER BY v");
  ASSERT_TRUE(full.ok());
  const std::vector<std::string> full_rendered = Render(full->rows);
  EXPECT_EQ(Render(expected->rows),
            std::vector<std::string>(full_rendered.begin(),
                                     full_rendered.begin() + 300));

  auto got = session.Execute(q);
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(Render(got->rows), Render(expected->rows));
  EXPECT_GT(got->profile.spill_runs, 0);
  EXPECT_EQ(CountSpillFiles(&governed), 0);
}

TEST(MemoryGovernanceTest, NonSpillableAggregationFailsFastLeakFree) {
  core::OdhSystem governed(Governed(/*query_bytes=*/16 * 1024));
  Session session(governed.engine());
  LoadDoubles(&session, 800);

  // 800 groups of aggregation state cannot spill: the query must be
  // refused outright — no cursor, no partial rows, nothing leaked.
  const std::string q = "SELECT id, COUNT(*) FROM m GROUP BY id";
  auto stream = session.ExecuteStreaming(q);
  ASSERT_FALSE(stream.ok());
  EXPECT_TRUE(stream.status().IsResourceExhausted())
      << stream.status().ToString();
  EXPECT_NE(stream.status().ToString().find("query"), std::string::npos);
  EXPECT_EQ(session.memory()->used(), 0);
  EXPECT_EQ(CountSpillFiles(&governed), 0);

  auto materialized = session.Execute(q);
  ASSERT_FALSE(materialized.ok());
  EXPECT_TRUE(materialized.status().IsResourceExhausted());
  EXPECT_EQ(session.memory()->used(), 0);

  // The session is not poisoned: a query within budget still runs.
  auto small = session.Execute("SELECT COUNT(*) FROM m");
  ASSERT_TRUE(small.ok()) << small.status().ToString();
  EXPECT_EQ(small->rows[0][0], Datum::Int64(800));
}

TEST(MemoryGovernanceTest, SpillMergeReadFaultPoisonsCursor) {
  core::OdhSystem governed(Governed(/*query_bytes=*/64 * 1024));
  Session session(governed.engine());
  LoadDoubles(&session, 800);

  auto stream = session.ExecuteStreaming("SELECT id, v FROM m ORDER BY v");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_GT(CountSpillFiles(&governed), 0);  // Runs live during the merge.

  // After Init the scan is fully drained; the only disk reads left are
  // the merge's page refills. Fail the next read: the cursor must poison
  // mid-stream without emitting a wrong or duplicate row.
  storage::FaultPolicy policy;
  policy.FailNthRead(1);
  governed.database()->disk()->set_fault_policy(&policy);
  Row row;
  int emitted = 0;
  Status error;
  while (true) {
    auto more = (*stream)->Next(&row);
    if (!more.ok()) {
      error = more.status();
      break;
    }
    ASSERT_TRUE(*more) << "stream completed despite the injected fault";
    ++emitted;
  }
  governed.database()->disk()->set_fault_policy(nullptr);

  EXPECT_FALSE(error.ok());
  EXPECT_LT(emitted, 800);
  // Poison sticks, and everything was released eagerly at poison time.
  EXPECT_FALSE((*stream)->Next(&row).ok());
  EXPECT_EQ((*stream)->memory()->used(), 0);
  EXPECT_EQ(session.memory()->used(), 0);
  EXPECT_EQ(CountSpillFiles(&governed), 0);
}

TEST(MemoryGovernanceTest, StreamsReleaseRowsAndSpillFilesEagerly) {
  core::OdhSystem governed(Governed(/*query_bytes=*/64 * 1024));
  Session session(governed.engine());
  LoadDoubles(&session, 800);

  // Abandonment mid-stream: rows and spill files go with the stream.
  {
    auto stream = session.ExecuteStreaming("SELECT id, v FROM m ORDER BY v");
    ASSERT_TRUE(stream.ok()) << stream.status().ToString();
    EXPECT_GT((*stream)->memory()->used(), 0);
    EXPECT_GT(CountSpillFiles(&governed), 0);
    Row row;
    for (int i = 0; i < 3; ++i) ASSERT_TRUE(*(*stream)->Next(&row));
  }
  EXPECT_EQ(session.memory()->used(), 0);
  EXPECT_EQ(CountSpillFiles(&governed), 0);

  // Normal completion releases before destruction, not at it.
  auto stream = session.ExecuteStreaming("SELECT id, v FROM m ORDER BY v");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  const size_t n = Drain(stream->get()).size();
  EXPECT_EQ(n, 800u);
  EXPECT_EQ((*stream)->memory()->used(), 0);
  EXPECT_EQ(session.memory()->used(), 0);
  EXPECT_EQ(CountSpillFiles(&governed), 0);
}

TEST(MemoryGovernanceTest, RecoverSweepsOrphanedSpillFiles) {
  core::OdhSystem victim(Governed(/*query_bytes=*/128 * 1024));
  FillHistorian(&victim);
  Session session(victim.engine());

  // Power off mid-spill: the run file's durable pages survive, and the
  // dead disk silently swallows the query's cleanup DeleteFile.
  storage::FaultPolicy policy;
  policy.CrashAtWrite(3);
  victim.database()->disk()->set_fault_policy(&policy);
  auto r = session.Execute(
      "SELECT id, ts, temperature FROM env_v ORDER BY temperature");
  EXPECT_FALSE(r.ok());
  victim.database()->disk()->set_fault_policy(nullptr);
  EXPECT_GE(CountSpillFiles(&victim), 1);

  std::unique_ptr<storage::SimDisk> rebooted =
      victim.database()->disk()->CloneDurable();
  ASSERT_GE(CountSpillFiles(rebooted.get()), 1);

  // A rebooted historian has no queries: every surviving spill file is
  // garbage and Recover sweeps it before replay.
  core::OdhSystem recovered;
  FillHistorian(&recovered);
  auto report = recovered.Recover(rebooted.get());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GE(report->spill_files_swept, 1u);
  EXPECT_EQ(CountSpillFiles(rebooted.get()), 0);
}

TEST(MemoryGovernanceTest, SessionBudgetBoundsMaterializedResults) {
  core::OdhSystem governed(Governed(/*query_bytes=*/0,
                                    /*session_bytes=*/64 * 1024));
  Session session(governed.engine());
  LoadDoubles(&session, 800);

  // Materialization holds the whole result in the session: over budget.
  const std::string q = "SELECT id, v FROM m ORDER BY v";
  auto materialized = session.Execute(q);
  ASSERT_FALSE(materialized.ok());
  EXPECT_TRUE(materialized.status().IsResourceExhausted())
      << materialized.status().ToString();
  EXPECT_NE(materialized.status().ToString().find("session"),
            std::string::npos);
  EXPECT_EQ(session.memory()->used(), 0);

  // Streaming the same statement succeeds: the sort working set spills
  // under the session ceiling and rows never pile up.
  auto stream = session.ExecuteStreaming(q);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  EXPECT_EQ(Drain(stream->get()).size(), 800u);
  EXPECT_GT((*stream)->profile().spill_runs, 0);
  EXPECT_EQ(session.memory()->used(), 0);
}

TEST(MemoryGovernanceTest, PreparedCachePromotesOnReexecution) {
  core::OdhSystem odh;
  Session session(odh.engine());
  ODH_CHECK_OK(session.Execute("CREATE TABLE t (id BIGINT)").status());
  ODH_CHECK_OK(session.Execute("INSERT INTO t VALUES (0)").status());

  auto filler = [](int k) {
    return "SELECT id FROM t WHERE id = " + std::to_string(k);
  };

  // Fill the 64-entry cache with the pinned statement as its oldest.
  const std::string pinned = "SELECT id FROM t WHERE id = 0";
  auto stmt = session.Prepare(pinned);
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  for (int k = 1; k <= 63; ++k) {
    ASSERT_TRUE(session.Prepare(filler(k)).ok());
  }

  // Re-execution must promote: after one more insertion evicts the LRU
  // entry, the pinned statement is still cached.
  ASSERT_TRUE(session.ExecutePrepared(*stmt).ok());
  ASSERT_TRUE(session.Prepare(filler(64)).ok());
  const int64_t hits_before = session.stats().prepare_cache_hits;
  ASSERT_TRUE(session.Prepare(pinned).ok());
  EXPECT_EQ(session.stats().prepare_cache_hits, hits_before + 1)
      << "re-executed statement was evicted: promotion is broken";

  // Control: a statement that is NOT re-used ages out after 64 fresh
  // insertions and preparing it again is a miss.
  const std::string control = "SELECT id FROM t WHERE id = 9999";
  ASSERT_TRUE(session.Prepare(control).ok());
  for (int k = 100; k < 164; ++k) {
    ASSERT_TRUE(session.Prepare(filler(k)).ok());
  }
  const int64_t hits_mid = session.stats().prepare_cache_hits;
  ASSERT_TRUE(session.Prepare(control).ok());
  EXPECT_EQ(session.stats().prepare_cache_hits, hits_mid);
}

}  // namespace
}  // namespace odh::sql
