#include "sql/relational_provider.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "relational/database.h"

namespace odh::sql {
namespace {

using relational::Database;
using relational::Schema;
using relational::Table;

class RelationalProviderTest : public ::testing::Test {
 protected:
  RelationalProviderTest() {
    table_ = db_.CreateTable("obs", Schema({{"ts", DataType::kTimestamp},
                                            {"id", DataType::kInt64},
                                            {"temp", DataType::kDouble}}))
                 .value();
    ODH_CHECK_OK(table_->AddIndex({"by_ts", {0}}));
    ODH_CHECK_OK(table_->AddIndex({"by_id", {1}}));
    for (int i = 0; i < 300; ++i) {
      table_
          ->Insert({Datum::Time(i * 1000), Datum::Int64(i % 30),
                    Datum::Double(15.0 + (i % 7))})
          .value();
    }
    provider_ = std::make_unique<RelationalTableProvider>(table_);
  }

  static int Drain(RowCursor* cursor, std::vector<Row>* rows = nullptr) {
    Row row;
    int n = 0;
    while (cursor->Next(&row).value()) {
      if (rows != nullptr) rows->push_back(row);
      ++n;
    }
    return n;
  }

  Database db_;
  Table* table_;
  std::unique_ptr<RelationalTableProvider> provider_;
};

TEST_F(RelationalProviderTest, FullScanReturnsEverything) {
  ScanSpec spec;
  auto cursor = provider_->Scan(spec).value();
  EXPECT_EQ(Drain(cursor.get()), 300);
}

TEST_F(RelationalProviderTest, EqualityConstraintExact) {
  ScanSpec spec;
  ColumnConstraint c;
  c.column = 1;
  c.equals = Datum::Int64(4);
  spec.constraints.push_back(c);
  std::vector<Row> rows;
  auto cursor = provider_->Scan(spec).value();
  EXPECT_EQ(Drain(cursor.get(), &rows), 10);
  for (const Row& row : rows) EXPECT_EQ(row[1], Datum::Int64(4));
}

TEST_F(RelationalProviderTest, ExclusiveBoundsReFiltered) {
  // ts > 1000 AND ts < 3000 -> exactly 1001..2999 step 1000 = {2000}.
  ScanSpec spec;
  ColumnConstraint c;
  c.column = 0;
  c.lower = Bound{Datum::Time(1000), /*inclusive=*/false};
  c.upper = Bound{Datum::Time(3000), /*inclusive=*/false};
  spec.constraints.push_back(c);
  std::vector<Row> rows;
  auto cursor = provider_->Scan(spec).value();
  ASSERT_EQ(Drain(cursor.get(), &rows), 1);
  EXPECT_EQ(rows[0][0], Datum::Time(2000));
}

TEST_F(RelationalProviderTest, MultipleConstraintsAllApplied) {
  ScanSpec spec;
  ColumnConstraint by_id;
  by_id.column = 1;
  by_id.equals = Datum::Int64(3);
  ColumnConstraint by_ts;
  by_ts.column = 0;
  by_ts.upper = Bound{Datum::Time(100000), true};
  spec.constraints = {by_id, by_ts};
  std::vector<Row> rows;
  auto cursor = provider_->Scan(spec).value();
  for (int n = Drain(cursor.get(), &rows); n > 0; --n) {
  }
  for (const Row& row : rows) {
    EXPECT_EQ(row[1], Datum::Int64(3));
    EXPECT_LE(row[0].timestamp_value(), 100000);
  }
  EXPECT_EQ(rows.size(), 4u);  // ids 3,33,63,93 -> ts 3000..93000.
}

TEST_F(RelationalProviderTest, ProjectionLeavesOtherColumnsNull) {
  ScanSpec spec;
  spec.projection = {1};
  ColumnConstraint c;
  c.column = 1;
  c.equals = Datum::Int64(0);
  spec.constraints.push_back(c);
  std::vector<Row> rows;
  auto cursor = provider_->Scan(spec).value();
  ASSERT_GT(Drain(cursor.get(), &rows), 0);
  for (const Row& row : rows) {
    EXPECT_FALSE(row[1].is_null());
    EXPECT_TRUE(row[2].is_null());  // temp not fetched.
  }
}

TEST_F(RelationalProviderTest, AnalyzeProducesSaneStats) {
  ODH_CHECK_OK(provider_->Analyze());
  const TableStats& stats = provider_->stats();
  ASSERT_TRUE(stats.valid);
  EXPECT_EQ(stats.row_count, 300);
  EXPECT_EQ(stats.columns[1].distinct, 30);
  EXPECT_DOUBLE_EQ(stats.columns[0].min, 0);
  EXPECT_DOUBLE_EQ(stats.columns[0].max, 299000);
  EXPECT_DOUBLE_EQ(stats.columns[2].null_fraction, 0);
}

TEST_F(RelationalProviderTest, EstimatesTightenWithConstraints) {
  ODH_CHECK_OK(provider_->Analyze());
  ScanSpec full;
  ScanSpec narrow;
  ColumnConstraint c;
  c.column = 1;
  c.equals = Datum::Int64(5);
  narrow.constraints.push_back(c);
  ScanEstimate full_est = provider_->Estimate(full);
  ScanEstimate narrow_est = provider_->Estimate(narrow);
  EXPECT_NEAR(full_est.rows, 300, 1);
  EXPECT_NEAR(narrow_est.rows, 10, 1);
  EXPECT_LT(narrow_est.bytes, full_est.bytes);
}

TEST_F(RelationalProviderTest, SupportsPointLookupMatchesIndexes) {
  EXPECT_TRUE(provider_->SupportsPointLookup(0));
  EXPECT_TRUE(provider_->SupportsPointLookup(1));
  EXPECT_FALSE(provider_->SupportsPointLookup(2));
}

TEST_F(RelationalProviderTest, RowSatisfiesNullSemantics) {
  ColumnConstraint c;
  c.column = 0;
  c.upper = Bound{Datum::Int64(10), true};
  // NULL never satisfies a constraint (SQL semantics).
  EXPECT_FALSE(RowSatisfies({Datum::Null()}, {c}));
  EXPECT_TRUE(RowSatisfies({Datum::Int64(5)}, {c}));
  EXPECT_FALSE(RowSatisfies({Datum::Int64(11)}, {c}));
}

}  // namespace
}  // namespace odh::sql
