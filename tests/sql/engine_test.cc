#include "sql/engine.h"

#include <gtest/gtest.h>

#include "common/logging.h"

namespace odh::sql {
namespace {

/// Fixture with the paper's TD-style schema loaded through SQL DDL/DML.
class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : db_(relational::EngineProfile::Rdb()), engine_(&db_) {
    Exec("CREATE TABLE customer (c_id BIGINT, c_l_name VARCHAR, "
         "c_f_name VARCHAR, c_tier BIGINT, c_dob TIMESTAMP)");
    Exec("CREATE TABLE account (ca_id BIGINT, ca_c_id BIGINT, "
         "ca_name VARCHAR, ca_bal DOUBLE)");
    Exec("CREATE TABLE trade (t_dts TIMESTAMP, t_ca_id BIGINT, "
         "t_trade_price DOUBLE, t_chrg DOUBLE)");
    Exec("CREATE INDEX trade_by_dts ON trade (t_dts)");
    Exec("CREATE INDEX trade_by_ca ON trade (t_ca_id)");
    Exec("CREATE INDEX account_by_id ON account (ca_id)");

    Exec("INSERT INTO customer VALUES "
         "(1, 'Smith', 'Al', 1, '1970-06-01 00:00:00'), "
         "(2, 'Jones', 'Bo', 2, '1985-03-04 00:00:00')");
    Exec("INSERT INTO account VALUES "
         "(10, 1, 'AcctA', 100.0), (11, 1, 'AcctB', 250.0), "
         "(20, 2, 'AcctC', 75.0)");
    Exec("INSERT INTO trade VALUES "
         "('2013-11-18 10:00:00', 10, 5.0, 0.10), "
         "('2013-11-18 10:00:01', 10, 5.5, 0.11), "
         "('2013-11-18 10:00:02', 11, 6.0, 0.12), "
         "('2013-11-18 10:00:03', 20, 7.0, 0.13), "
         "('2013-11-19 10:00:00', 20, 8.0, 0.14)");
  }

  QueryResult Exec(const std::string& sql) {
    auto result = engine_.Execute(sql);
    if (!result.ok()) {
      ADD_FAILURE() << sql << " -> " << result.status().ToString();
      return QueryResult{};
    }
    return std::move(result).value();
  }

  relational::Database db_;
  SqlEngine engine_;
};

TEST_F(EngineTest, SelectStarFullTable) {
  QueryResult r = Exec("SELECT * FROM trade");
  EXPECT_EQ(r.rows.size(), 5u);
  EXPECT_EQ(r.columns.size(), 4u);
  EXPECT_EQ(r.columns[0], "t_dts");
}

TEST_F(EngineTest, HistoricalQueryTQ1) {
  QueryResult r = Exec("SELECT * FROM trade WHERE t_ca_id = 10");
  EXPECT_EQ(r.rows.size(), 2u);
  for (const Row& row : r.rows) EXPECT_EQ(row[1], Datum::Int64(10));
}

TEST_F(EngineTest, SliceQueryTQ2) {
  QueryResult r = Exec(
      "SELECT * FROM trade WHERE t_dts BETWEEN '2013-11-18 00:00:00' AND "
      "'2013-11-18 23:59:59'");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EngineTest, ProjectionAndArithmetic) {
  QueryResult r = Exec(
      "SELECT t_trade_price * 2 AS double_price FROM trade "
      "WHERE t_ca_id = 20 ORDER BY double_price");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.columns[0], "double_price");
  EXPECT_DOUBLE_EQ(r.rows[0][0].double_value(), 14.0);
  EXPECT_DOUBLE_EQ(r.rows[1][0].double_value(), 16.0);
}

TEST_F(EngineTest, JoinTQ3SingleDataSource) {
  QueryResult r = Exec(
      "SELECT t_dts, t_chrg FROM trade t, account a "
      "WHERE a.ca_id = t.t_ca_id AND a.ca_name = 'AcctA'");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, ThreeWayJoinTQ4) {
  QueryResult r = Exec(
      "SELECT ca_name, t_dts, t_chrg FROM trade t, account a, customer c "
      "WHERE a.ca_id = t.t_ca_id AND a.ca_c_id = c.c_id AND "
      "c_dob BETWEEN '1960-01-01 00:00:00' AND '1980-01-01 00:00:00'");
  // Customer 1 (dob 1970) owns accounts 10 and 11 -> 3 trades.
  EXPECT_EQ(r.rows.size(), 3u);
  for (const Row& row : r.rows) {
    EXPECT_TRUE(row[0].string_value() == "AcctA" ||
                row[0].string_value() == "AcctB");
  }
}

TEST_F(EngineTest, CountAndAggregates) {
  QueryResult r = Exec(
      "SELECT COUNT(*), SUM(t_trade_price), MIN(t_trade_price), "
      "MAX(t_trade_price), AVG(t_trade_price) FROM trade");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Datum::Int64(5));
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_value(), 31.5);
  EXPECT_DOUBLE_EQ(r.rows[0][2].double_value(), 5.0);
  EXPECT_DOUBLE_EQ(r.rows[0][3].double_value(), 8.0);
  EXPECT_DOUBLE_EQ(r.rows[0][4].double_value(), 6.3);
}

TEST_F(EngineTest, GroupBy) {
  QueryResult r = Exec(
      "SELECT t_ca_id, COUNT(*), AVG(t_trade_price) FROM trade "
      "GROUP BY t_ca_id ORDER BY t_ca_id");
  ASSERT_EQ(r.rows.size(), 3u);
  EXPECT_EQ(r.rows[0][0], Datum::Int64(10));
  EXPECT_EQ(r.rows[0][1], Datum::Int64(2));
  EXPECT_EQ(r.rows[2][0], Datum::Int64(20));
  EXPECT_DOUBLE_EQ(r.rows[2][2].double_value(), 7.5);
}

TEST_F(EngineTest, AggregateOverEmptyInput) {
  QueryResult r =
      Exec("SELECT COUNT(*), SUM(t_chrg) FROM trade WHERE t_ca_id = 999");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0], Datum::Int64(0));
  EXPECT_TRUE(r.rows[0][1].is_null());
}

TEST_F(EngineTest, OrderByDescAndLimit) {
  QueryResult r = Exec(
      "SELECT t_trade_price FROM trade ORDER BY t_trade_price DESC LIMIT 2");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].double_value(), 8.0);
  EXPECT_DOUBLE_EQ(r.rows[1][0].double_value(), 7.0);
}

TEST_F(EngineTest, OrMakesResidualFilter) {
  QueryResult r = Exec(
      "SELECT * FROM trade WHERE t_ca_id = 10 OR t_ca_id = 20");
  EXPECT_EQ(r.rows.size(), 4u);
}

TEST_F(EngineTest, IsNullPredicate) {
  Exec("INSERT INTO trade (t_dts, t_ca_id) VALUES ('2013-11-20 00:00:00', 99)");
  QueryResult r =
      Exec("SELECT * FROM trade WHERE t_trade_price IS NULL");
  EXPECT_EQ(r.rows.size(), 1u);
  QueryResult r2 =
      Exec("SELECT COUNT(*) FROM trade WHERE t_trade_price IS NOT NULL");
  EXPECT_EQ(r2.rows[0][0], Datum::Int64(5));
}

TEST_F(EngineTest, ComparisonsAgainstNullNeverMatch) {
  Exec("INSERT INTO trade (t_dts, t_ca_id) VALUES ('2013-11-21 00:00:00', 7)");
  QueryResult r = Exec("SELECT * FROM trade WHERE t_trade_price < 100");
  EXPECT_EQ(r.rows.size(), 5u);  // NULL price rows excluded.
}

TEST_F(EngineTest, DataPointCountCountsNonNullCells) {
  QueryResult r = Exec("SELECT t_dts, t_trade_price FROM trade");
  EXPECT_EQ(r.DataPointCount(), 10);
}

TEST_F(EngineTest, UnknownTableAndColumnErrors) {
  EXPECT_TRUE(engine_.Execute("SELECT * FROM nope").status().IsNotFound());
  EXPECT_TRUE(engine_.Execute("SELECT nope FROM trade")
                  .status()
                  .IsInvalidArgument());
  EXPECT_TRUE(engine_.Execute("SELECT t_dts FROM trade, trade")
                  .status()
                  .IsInvalidArgument());  // Duplicate alias.
}

TEST_F(EngineTest, AmbiguousColumnRejected) {
  // ca_id exists only in account, but c_id vs ca_c_id are distinct; create
  // ambiguity via two aliases of the same table.
  auto status =
      engine_.Execute("SELECT ca_id FROM account a, account b").status();
  EXPECT_TRUE(status.IsInvalidArgument());
}

TEST_F(EngineTest, InsertTypeMismatchRejected) {
  EXPECT_FALSE(engine_.Execute("INSERT INTO trade VALUES (1,2,3,4,5)").ok());
  EXPECT_FALSE(
      engine_.Execute("INSERT INTO account VALUES ('x', 1, 'n', 1.0)").ok());
}

TEST_F(EngineTest, ExplainShowsIndexScan) {
  std::string plan =
      engine_.Explain("SELECT * FROM trade WHERE t_ca_id = 10").value();
  EXPECT_NE(plan.find("Scan(trade"), std::string::npos);
  EXPECT_NE(plan.find("="), std::string::npos);
}

TEST_F(EngineTest, CrossJoinWithoutPredicate) {
  QueryResult r = Exec("SELECT c_id, ca_id FROM customer, account");
  EXPECT_EQ(r.rows.size(), 6u);  // 2 customers x 3 accounts.
}

TEST_F(EngineTest, GroupByValidation) {
  EXPECT_TRUE(engine_.Execute("SELECT t_ca_id, t_chrg FROM trade "
                              "GROUP BY t_ca_id")
                  .status()
                  .IsInvalidArgument());
}

TEST_F(EngineTest, TimestampCoercionInComparison) {
  QueryResult r =
      Exec("SELECT * FROM trade WHERE t_dts > '2013-11-19 00:00:00'");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(EngineTest, DivisionByZeroYieldsNull) {
  QueryResult r = Exec("SELECT t_trade_price / 0 FROM trade LIMIT 1");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_TRUE(r.rows[0][0].is_null());
}

}  // namespace
}  // namespace odh::sql
