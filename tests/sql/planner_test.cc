#include "sql/planner.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "sql/engine.h"

namespace odh::sql {
namespace {

/// LQ4-style setup: a small "LinkedSensor" relational table with lat/lon and
/// a large "Observation" table indexed by sensor id. Exercises the paper's
/// query-optimizer experiment: a narrow lat/lon box should pick an
/// index-nested-loop plan (sensor-first), a wide box a hash join
/// (observation-scan-first).
class PlannerTest : public ::testing::Test {
 protected:
  PlannerTest() : db_(relational::EngineProfile::Rdb()), engine_(&db_) {
    Exec("CREATE TABLE linkedsensor (sensorid BIGINT, sensorname VARCHAR, "
         "latitude DOUBLE, longitude DOUBLE)");
    Exec("CREATE TABLE observation (ts TIMESTAMP, sensorid BIGINT, "
         "airtemperature DOUBLE)");
    Exec("CREATE INDEX obs_by_sensor ON observation (sensorid)");
    Exec("CREATE INDEX obs_by_ts ON observation (ts)");

    Random rng(42);
    for (int s = 0; s < 200; ++s) {
      double lat = 25 + 25 * rng.NextDouble();
      double lon = -125 + 60 * rng.NextDouble();
      char buf[256];
      snprintf(buf, sizeof(buf),
               "INSERT INTO linkedsensor VALUES (%d, 'S%d', %f, %f)", s, s,
               lat, lon);
      Exec(buf);
    }
    // 20 observations per sensor.
    for (int s = 0; s < 200; ++s) {
      std::string sql = "INSERT INTO observation VALUES ";
      for (int i = 0; i < 20; ++i) {
        char buf[128];
        snprintf(buf, sizeof(buf), "%s(%lld, %d, %f)", i > 0 ? ", " : "",
                 1000000LL * (s * 20 + i), s, 15.0 + s * 0.01);
        sql += buf;
      }
      Exec(sql);
    }
    ODH_CHECK_OK(engine_.catalog()->Analyze("linkedsensor"));
    ODH_CHECK_OK(engine_.catalog()->Analyze("observation"));
  }

  QueryResult Exec(const std::string& sql) {
    auto result = engine_.Execute(sql);
    if (!result.ok()) {
      ADD_FAILURE() << sql << " -> " << result.status().ToString();
      return QueryResult{};
    }
    return std::move(result).value();
  }

  relational::Database db_;
  SqlEngine engine_;
};

TEST_F(PlannerTest, NarrowAreaPicksIndexNestedLoop) {
  std::string plan = engine_
                         .Explain("SELECT ts, o.sensorid, airtemperature "
                                  "FROM observation o, linkedsensor l "
                                  "WHERE l.sensorid = o.sensorid AND "
                                  "latitude > 25.0 AND latitude < 25.2 AND "
                                  "longitude > -125.0 AND longitude < -124.8")
                         .value();
  EXPECT_NE(plan.find("INDEX-NESTED-LOOP"), std::string::npos) << plan;
}

TEST_F(PlannerTest, WideAreaPicksHashJoin) {
  std::string plan = engine_
                         .Explain("SELECT ts, o.sensorid, airtemperature "
                                  "FROM observation o, linkedsensor l "
                                  "WHERE l.sensorid = o.sensorid AND "
                                  "latitude > 10.0 AND latitude < 80.0 AND "
                                  "longitude > -150.0 AND longitude < -50.0")
                         .value();
  EXPECT_NE(plan.find("HASH-JOIN"), std::string::npos) << plan;
}

TEST_F(PlannerTest, BothPlansReturnIdenticalResults) {
  // The narrow query through the full engine: result must match a manual
  // two-step evaluation regardless of chosen join strategy.
  QueryResult joined = Exec(
      "SELECT ts, o.sensorid, airtemperature "
      "FROM observation o, linkedsensor l "
      "WHERE l.sensorid = o.sensorid AND "
      "latitude > 25.0 AND latitude < 30.0 AND "
      "longitude > -125.0 AND longitude < -100.0");
  // Manual: collect matching sensors, then count observations.
  QueryResult sensors = Exec(
      "SELECT sensorid FROM linkedsensor WHERE latitude > 25.0 AND "
      "latitude < 30.0 AND longitude > -125.0 AND longitude < -100.0");
  EXPECT_EQ(joined.rows.size(), sensors.rows.size() * 20);
}

TEST_F(PlannerTest, SmallerTableBecomesOuter) {
  std::string plan =
      engine_
          .Explain("SELECT l.sensorname FROM observation o, linkedsensor l "
                   "WHERE l.sensorid = o.sensorid AND l.sensorname = 'S5'")
          .value();
  // The filtered linkedsensor side (1 row) must be scanned as the outer.
  size_t scan_pos = plan.find("Scan(linkedsensor");
  ASSERT_NE(scan_pos, std::string::npos) << plan;
}

TEST_F(PlannerTest, PointLookupUsesIndexEstimate) {
  QueryResult r = Exec("SELECT COUNT(*) FROM observation WHERE sensorid = 7");
  EXPECT_EQ(r.rows[0][0], Datum::Int64(20));
}

TEST_F(PlannerTest, RangePredicatePushdown) {
  QueryResult r = Exec(
      "SELECT COUNT(*) FROM observation WHERE ts BETWEEN "
      "'1970-01-01 00:00:00' AND '1970-01-01 00:00:10'");
  // Timestamps 0..10s -> 11 observations (ids 0..10).
  EXPECT_EQ(r.rows[0][0], Datum::Int64(11));
}

}  // namespace
}  // namespace odh::sql
