#include "sql/lexer.h"

#include <gtest/gtest.h>

namespace odh::sql {
namespace {

TEST(LexerTest, BasicSelect) {
  auto tokens = Tokenize("SELECT a, b FROM t WHERE a = 1").value();
  ASSERT_EQ(tokens.size(), 11u);  // Incl. EOF.
  EXPECT_EQ(tokens[0].upper, "SELECT");
  EXPECT_EQ(tokens[1].text, "a");
  EXPECT_EQ(tokens[2].text, ",");
  EXPECT_EQ(tokens[8].text, "=");
  EXPECT_EQ(tokens[9].type, TokenType::kInteger);
  EXPECT_EQ(tokens.back().type, TokenType::kEof);
}

TEST(LexerTest, Numbers) {
  auto tokens = Tokenize("1 2.5 .75 1e6 2.5E-3").value();
  EXPECT_EQ(tokens[0].type, TokenType::kInteger);
  EXPECT_EQ(tokens[1].type, TokenType::kFloat);
  EXPECT_EQ(tokens[2].type, TokenType::kFloat);
  EXPECT_EQ(tokens[3].type, TokenType::kFloat);
  EXPECT_EQ(tokens[4].type, TokenType::kFloat);
}

TEST(LexerTest, StringsWithEscapedQuotes) {
  auto tokens = Tokenize("'it''s here' ''").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[0].type, TokenType::kString);
  EXPECT_EQ(tokens[0].text, "it's here");
  EXPECT_EQ(tokens[1].text, "");
}

TEST(LexerTest, UnterminatedStringFails) {
  EXPECT_FALSE(Tokenize("SELECT 'oops").ok());
}

TEST(LexerTest, TwoCharSymbols) {
  auto tokens = Tokenize("<= >= <> != < >").value();
  EXPECT_EQ(tokens[0].text, "<=");
  EXPECT_EQ(tokens[1].text, ">=");
  EXPECT_EQ(tokens[2].text, "<>");
  EXPECT_EQ(tokens[3].text, "<>");  // != is normalized.
  EXPECT_EQ(tokens[4].text, "<");
  EXPECT_EQ(tokens[5].text, ">");
}

TEST(LexerTest, LineComments) {
  auto tokens = Tokenize("SELECT -- comment\n1").value();
  ASSERT_EQ(tokens.size(), 3u);
  EXPECT_EQ(tokens[1].type, TokenType::kInteger);
}

TEST(LexerTest, RejectsGarbageCharacter) {
  EXPECT_FALSE(Tokenize("SELECT @x").ok());
}

TEST(LexerTest, CaseIsPreservedButUpperAvailable) {
  auto tokens = Tokenize("SeLeCt MyCol").value();
  EXPECT_EQ(tokens[0].text, "SeLeCt");
  EXPECT_EQ(tokens[0].upper, "SELECT");
  EXPECT_EQ(tokens[1].text, "MyCol");
  EXPECT_EQ(tokens[1].upper, "MYCOL");
}

}  // namespace
}  // namespace odh::sql
