// Operator-level tests for the volcano executor: ScanNode widening,
// HashJoinNode (inner, left-outer, NULL keys, cross join), IndexJoinNode
// re-probing, FilterNode. The planner never emits left-outer joins, so this
// is the only coverage of that path.

#include "sql/executor.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "relational/database.h"
#include "sql/relational_provider.h"

namespace odh::sql {
namespace {

using relational::Database;
using relational::Schema;
using relational::Table;

class ExecutorTest : public ::testing::Test {
 protected:
  ExecutorTest() {
    // Outer table: orders(order_id, cust_id). Inner: customers(id, name).
    orders_ = db_.CreateTable("orders", Schema({{"order_id", DataType::kInt64},
                                                {"cust_id", DataType::kInt64}}))
                  .value();
    customers_ =
        db_.CreateTable("customers", Schema({{"id", DataType::kInt64},
                                             {"name", DataType::kString}}))
            .value();
    ODH_CHECK_OK(customers_->AddIndex({"by_id", {0}}));
    orders_->Insert({Datum::Int64(100), Datum::Int64(1)}).value();
    orders_->Insert({Datum::Int64(101), Datum::Int64(2)}).value();
    orders_->Insert({Datum::Int64(102), Datum::Int64(9)}).value();  // No match.
    orders_->Insert({Datum::Int64(103), Datum::Null()}).value();    // NULL key.
    customers_->Insert({Datum::Int64(1), Datum::String("ann")}).value();
    customers_->Insert({Datum::Int64(2), Datum::String("bob")}).value();
    customers_->Insert({Datum::Int64(2), Datum::String("bob2")}).value();
    customers_->Insert({Datum::Int64(3), Datum::String("cyd")}).value();
    orders_provider_ = std::make_unique<RelationalTableProvider>(orders_);
    customers_provider_ =
        std::make_unique<RelationalTableProvider>(customers_);
  }

  // Combined layout: orders at slots 0-1, customers at slots 2-3.
  static constexpr int kTotalSlots = 4;

  PlanNodePtr OrdersScan() {
    return std::make_unique<ScanNode>(orders_provider_.get(), "orders",
                                      ScanSpec{}, /*slot_offset=*/0,
                                      kTotalSlots);
  }

  static std::vector<Row> Drain(PlanNode* node) {
    ODH_CHECK_OK(node->Open());
    std::vector<Row> rows;
    Row row;
    while (true) {
      auto more = node->Next(&row);
      ODH_CHECK_OK(more.status());
      if (!*more) break;
      rows.push_back(row);
    }
    return rows;
  }

  Database db_;
  Table* orders_;
  Table* customers_;
  std::unique_ptr<RelationalTableProvider> orders_provider_;
  std::unique_ptr<RelationalTableProvider> customers_provider_;
};

TEST_F(ExecutorTest, ScanNodeWidensToCombinedLayout) {
  auto scan = OrdersScan();
  std::vector<Row> rows = Drain(scan.get());
  ASSERT_EQ(rows.size(), 4u);
  for (const Row& row : rows) {
    ASSERT_EQ(row.size(), 4u);
    EXPECT_FALSE(row[0].is_null());  // order_id present.
    EXPECT_TRUE(row[2].is_null());   // Customer slots untouched.
    EXPECT_TRUE(row[3].is_null());
  }
}

TEST_F(ExecutorTest, HashJoinInnerSemantics) {
  HashJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                    ScanSpec{}, /*inner_slot_offset=*/2,
                    {JoinKey{/*outer_slot=*/1, /*inner_column=*/0}},
                    /*left_outer=*/false);
  std::vector<Row> rows = Drain(&join);
  // Order 100 -> ann; 101 -> bob, bob2; 102 and NULL-key order drop.
  ASSERT_EQ(rows.size(), 3u);
  int bobs = 0;
  for (const Row& row : rows) {
    EXPECT_FALSE(row[2].is_null());
    if (row[0] == Datum::Int64(101)) ++bobs;
  }
  EXPECT_EQ(bobs, 2);
}

TEST_F(ExecutorTest, HashJoinLeftOuterEmitsUnmatched) {
  HashJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                    ScanSpec{}, 2, {JoinKey{1, 0}},
                    /*left_outer=*/true);
  std::vector<Row> rows = Drain(&join);
  // 3 matched + order 102 (no customer) + order 103 (NULL key) = 5.
  ASSERT_EQ(rows.size(), 5u);
  int unmatched = 0;
  for (const Row& row : rows) {
    if (row[3].is_null()) {
      ++unmatched;
      // Outer side intact on unmatched rows.
      EXPECT_FALSE(row[0].is_null());
    }
  }
  EXPECT_EQ(unmatched, 2);
}

TEST_F(ExecutorTest, HashJoinWithNoKeysIsCrossJoin) {
  HashJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                    ScanSpec{}, 2, /*keys=*/{}, /*left_outer=*/false);
  std::vector<Row> rows = Drain(&join);
  EXPECT_EQ(rows.size(), 4u * 4u);
}

TEST_F(ExecutorTest, HashJoinAppliesInnerSpec) {
  // Inner side constrained to name = 'bob' before building the hash table.
  ScanSpec inner_spec;
  ColumnConstraint c;
  c.column = 1;
  c.equals = Datum::String("bob");
  inner_spec.constraints.push_back(c);
  HashJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                    inner_spec, 2, {JoinKey{1, 0}}, /*left_outer=*/false);
  std::vector<Row> rows = Drain(&join);
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][3], Datum::String("bob"));
}

TEST_F(ExecutorTest, IndexJoinMatchesHashJoin) {
  IndexJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                     ScanSpec{}, 2, {JoinKey{1, 0}});
  std::vector<Row> rows = Drain(&join);
  ASSERT_EQ(rows.size(), 3u);  // Same as inner hash join.
  for (const Row& row : rows) {
    EXPECT_EQ(row[1], row[2]);  // Join key equality holds.
  }
}

TEST_F(ExecutorTest, IndexJoinSkipsNullOuterKeys) {
  IndexJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                     ScanSpec{}, 2, {JoinKey{1, 0}});
  for (const Row& row : Drain(&join)) {
    EXPECT_FALSE(row[1].is_null());
  }
}

TEST_F(ExecutorTest, DescribeProducesPlanText) {
  HashJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                    ScanSpec{}, 2, {JoinKey{1, 0}}, /*left_outer=*/true);
  std::string out;
  join.Describe(0, &out);
  EXPECT_NE(out.find("HashLeftJoin"), std::string::npos);
  EXPECT_NE(out.find("Scan(orders"), std::string::npos);
}

TEST_F(ExecutorTest, ReopenRestartsTheJoin) {
  HashJoinNode join(OrdersScan(), customers_provider_.get(), "customers",
                    ScanSpec{}, 2, {JoinKey{1, 0}}, /*left_outer=*/false);
  EXPECT_EQ(Drain(&join).size(), 3u);
}

}  // namespace
}  // namespace odh::sql
