#include "sql/expr_eval.h"

#include <gtest/gtest.h>

#include "sql/parser.h"

namespace odh::sql {
namespace {

/// Evaluates the WHERE expression of "SELECT a FROM t WHERE <expr>" against
/// a one-table row (columns a BIGINT, b DOUBLE, s VARCHAR, ts TIMESTAMP).
class ExprEvalTest : public ::testing::Test {
 protected:
  ExprEvalTest() : db_(relational::EngineProfile::Rdb()), catalog_(&db_) {
    (void)db_.CreateTable(
        "t", relational::Schema({{"a", DataType::kInt64},
                                 {"b", DataType::kDouble},
                                 {"s", DataType::kString},
                                 {"ts", DataType::kTimestamp}}));
  }

  Datum Eval(const std::string& expr, Row row) {
    auto stmt = Parse("SELECT a FROM t WHERE " + expr);
    if (!stmt.ok()) {
      ADD_FAILURE() << expr << ": " << stmt.status().ToString();
      return Datum::Null();
    }
    auto bound = Bind(&catalog_, std::move(*stmt->select));
    if (!bound.ok()) {
      ADD_FAILURE() << expr << ": " << bound.status().ToString();
      return Datum::Null();
    }
    bound_ = std::make_unique<BoundSelect>(std::move(bound).value());
    ExprEvaluator eval(bound_.get());
    auto result = eval.Eval(bound_->where.get(), row);
    if (!result.ok()) {
      ADD_FAILURE() << expr << ": " << result.status().ToString();
      return Datum::Null();
    }
    return *result;
  }

  Row R(Datum a = Datum::Int64(1), Datum b = Datum::Double(2.5),
        Datum s = Datum::String("x"), Datum ts = Datum::Time(0)) {
    return {std::move(a), std::move(b), std::move(s), std::move(ts)};
  }

  relational::Database db_;
  Catalog catalog_;
  std::unique_ptr<BoundSelect> bound_;
};

TEST_F(ExprEvalTest, Comparisons) {
  EXPECT_EQ(Eval("a = 1", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("a <> 1", R()), Datum::Bool(false));
  EXPECT_EQ(Eval("a < 2", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("a >= 1", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("b > 2", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("s = 'x'", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("s < 'y'", R()), Datum::Bool(true));
}

TEST_F(ExprEvalTest, NumericWidening) {
  // int64 vs double comparison widens.
  EXPECT_EQ(Eval("a < b", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("a = 1.0", R()), Datum::Bool(true));
}

TEST_F(ExprEvalTest, Arithmetic) {
  EXPECT_EQ(Eval("a + 2 = 3", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("a * 4 - 2 = 2", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("b * 2 = 5.0", R()), Datum::Bool(true));
  // Integer arithmetic stays integral; division always yields double.
  EXPECT_EQ(Eval("3 / 2 = 1.5", R()), Datum::Bool(true));
}

TEST_F(ExprEvalTest, DivisionByZeroIsNull) {
  EXPECT_TRUE(Eval("a / 0 = 1", R()).is_null());
}

TEST_F(ExprEvalTest, ThreeValuedLogic) {
  Row null_a = R(Datum::Null());
  // NULL comparison -> NULL.
  EXPECT_TRUE(Eval("a = 1", null_a).is_null());
  // NULL AND false -> false (Kleene).
  EXPECT_EQ(Eval("a = 1 AND b > 100", null_a), Datum::Bool(false));
  // NULL AND true -> NULL.
  EXPECT_TRUE(Eval("a = 1 AND b > 0", null_a).is_null());
  // NULL OR true -> true.
  EXPECT_EQ(Eval("a = 1 OR b > 0", null_a), Datum::Bool(true));
  // NULL OR false -> NULL.
  EXPECT_TRUE(Eval("a = 1 OR b > 100", null_a).is_null());
  // NOT NULL -> NULL.
  EXPECT_TRUE(Eval("NOT a = 1", null_a).is_null());
}

TEST_F(ExprEvalTest, Between) {
  EXPECT_EQ(Eval("a BETWEEN 0 AND 2", R()), Datum::Bool(true));
  EXPECT_EQ(Eval("a BETWEEN 2 AND 5", R()), Datum::Bool(false));
  EXPECT_EQ(Eval("b BETWEEN 2.5 AND 2.5", R()), Datum::Bool(true));
  EXPECT_TRUE(Eval("a BETWEEN 0 AND 2", R(Datum::Null())).is_null());
}

TEST_F(ExprEvalTest, IsNull) {
  EXPECT_EQ(Eval("a IS NULL", R(Datum::Null())), Datum::Bool(true));
  EXPECT_EQ(Eval("a IS NULL", R()), Datum::Bool(false));
  EXPECT_EQ(Eval("a IS NOT NULL", R()), Datum::Bool(true));
}

TEST_F(ExprEvalTest, TimestampLiteralCoercion) {
  Row row = R();
  row[3] = Datum::Time(1000000 * int64_t{86400});  // 1970-01-02.
  EXPECT_EQ(Eval("ts > '1970-01-01 12:00:00'", row), Datum::Bool(true));
  EXPECT_EQ(Eval("ts BETWEEN '1970-01-01 00:00:00' AND "
                 "'1970-01-03 00:00:00'", row),
            Datum::Bool(true));
}

TEST_F(ExprEvalTest, TypeMismatchIsError) {
  auto stmt = Parse("SELECT a FROM t WHERE s = 1");
  ASSERT_TRUE(stmt.ok());
  auto bound = Bind(&catalog_, std::move(*stmt->select));
  ASSERT_TRUE(bound.ok());
  ExprEvaluator eval(&*bound);
  EXPECT_FALSE(eval.Eval(bound->where.get(), R()).ok());
}

TEST_F(ExprEvalTest, PredicateSemantics) {
  auto stmt = Parse("SELECT a FROM t WHERE a = 1");
  ASSERT_TRUE(stmt.ok());
  auto bound = Bind(&catalog_, std::move(*stmt->select));
  ASSERT_TRUE(bound.ok());
  ExprEvaluator eval(&*bound);
  // Predicate: NULL -> false.
  EXPECT_TRUE(eval.EvalPredicate(bound->where.get(), R()).value());
  EXPECT_FALSE(
      eval.EvalPredicate(bound->where.get(), R(Datum::Null())).value());
  EXPECT_FALSE(
      eval.EvalPredicate(bound->where.get(), R(Datum::Int64(9))).value());
}

}  // namespace
}  // namespace odh::sql
