// Session API: prepared statements with `?` binding, the prepared-
// statement cache, streaming vs materialized equivalence on every
// executed path (row-scan, vectorized-batch, summary-pushdown), and the
// move-only QueryResult contract.

#include "sql/session.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <type_traits>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"

namespace odh::sql {
namespace {

// QueryResult owns potentially huge row sets; accidental copies were the
// motivation for making it move-only.
static_assert(!std::is_copy_constructible_v<QueryResult>);
static_assert(!std::is_copy_assignable_v<QueryResult>);
static_assert(std::is_move_constructible_v<QueryResult>);
static_assert(std::is_move_assignable_v<QueryResult>);

/// Canonical (sorted) row rendering, for multiset comparison.
std::vector<std::string> Canonical(const std::vector<Row>& rows) {
  std::vector<std::string> out;
  out.reserve(rows.size());
  for (const Row& row : rows) {
    std::string s;
    for (const Datum& d : row) s += d.ToString() + "|";
    out.push_back(std::move(s));
  }
  std::sort(out.begin(), out.end());
  return out;
}

/// A small historian (two sensors, 500 points each) plus a relational
/// registry table, so all three executed paths are reachable.
class SessionTest : public ::testing::Test {
 protected:
  SessionTest() : session_(odh_.engine()) {
    int type = odh_.DefineSchemaType("env", {"temperature", "wind"}).value();
    for (SourceId id = 1; id <= 2; ++id) {
      ODH_CHECK_OK(odh_.RegisterSource(id, type, kMicrosPerSecond,
                                       /*regular=*/true));
      for (int i = 0; i < 500; ++i) {
        ODH_CHECK_OK(odh_.Ingest(
            {id, i * kMicrosPerSecond, {20.0 + id + 0.01 * i, 1.0 * id}}));
      }
    }
    ODH_CHECK_OK(odh_.FlushAll());
    ODH_CHECK_OK(session_
                     .Execute("CREATE TABLE sensor_info "
                              "(id BIGINT, area VARCHAR)")
                     .status());
    ODH_CHECK_OK(session_
                     .Execute("INSERT INTO sensor_info VALUES "
                              "(1, 'north'), (2, 'south')")
                     .status());
  }

  /// Materialized and streamed execution of the same statement must agree
  /// row-for-row; returns the executed-path label they both report.
  std::string ExpectStreamMatchesMaterialized(
      const std::string& sql, const std::vector<Datum>& params = {}) {
    auto materialized = session_.Execute(sql, params);
    EXPECT_TRUE(materialized.ok()) << materialized.status().ToString();
    if (!materialized.ok()) return "";

    auto stream = session_.ExecuteStreaming(sql, params);
    EXPECT_TRUE(stream.ok()) << stream.status().ToString();
    if (!stream.ok()) return "";
    EXPECT_EQ((*stream)->columns(), materialized->columns);
    std::vector<Row> streamed;
    Row row;
    while (true) {
      auto more = (*stream)->Next(&row);
      EXPECT_TRUE(more.ok()) << more.status().ToString();
      if (!more.ok() || !more.value()) break;
      streamed.push_back(row);
    }
    EXPECT_EQ(Canonical(streamed), Canonical(materialized->rows)) << sql;
    EXPECT_EQ((*stream)->profile().path, materialized->profile.path) << sql;
    return (*stream)->profile().path;
  }

  core::OdhSystem odh_;
  Session session_;
};

TEST_F(SessionTest, StreamingMatchesMaterializedRowScan) {
  // Relational tables execute row-at-a-time.
  EXPECT_EQ(ExpectStreamMatchesMaterialized("SELECT * FROM sensor_info"),
            "row-scan");
}

TEST_F(SessionTest, StreamingMatchesMaterializedVectorizedBatch) {
  EXPECT_EQ(ExpectStreamMatchesMaterialized(
                "SELECT ts, temperature FROM env_v WHERE id = 1"),
            "vectorized-batch");
}

TEST_F(SessionTest, StreamingMatchesMaterializedSummaryPushdown) {
  EXPECT_EQ(ExpectStreamMatchesMaterialized(
                "SELECT COUNT(*), SUM(wind) FROM env_v WHERE id = 2"),
            "summary-pushdown");
}

TEST_F(SessionTest, StreamingMatchesMaterializedOrderByAndJoin) {
  ExpectStreamMatchesMaterialized(
      "SELECT ts, temperature FROM env_v WHERE id = 1 "
      "ORDER BY temperature LIMIT 7");
  ExpectStreamMatchesMaterialized(
      "SELECT area, COUNT(*) FROM env_v e, sensor_info s "
      "WHERE s.id = e.id GROUP BY area ORDER BY area");
}

TEST_F(SessionTest, StreamingHonorsLimitWithoutOverscan) {
  auto stream = session_.ExecuteStreaming(
      "SELECT ts FROM env_v WHERE id = 1 LIMIT 3");
  ASSERT_TRUE(stream.ok());
  Row row;
  int n = 0;
  while ((*stream)->Next(&row).value()) ++n;
  EXPECT_EQ(n, 3);
  EXPECT_EQ((*stream)->profile().rows_returned, 3);
}

TEST_F(SessionTest, ParameterBindingInSelect) {
  auto r = session_.Execute("SELECT COUNT(*) FROM env_v WHERE id = ?",
                            {Datum::Int64(1)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], Datum::Int64(500));

  // Two placeholders bind left to right.
  auto r2 = session_.Execute(
      "SELECT COUNT(*) FROM env_v WHERE id = ? AND temperature > ?",
      {Datum::Int64(2), Datum::Double(26.0)});
  ASSERT_TRUE(r2.ok()) << r2.status().ToString();
  EXPECT_GT(r2->rows[0][0].int64_value(), 0);
  EXPECT_LT(r2->rows[0][0].int64_value(), 500);
}

TEST_F(SessionTest, ParameterCountMismatchIsRejected) {
  auto missing = session_.Execute("SELECT * FROM sensor_info WHERE id = ?");
  EXPECT_TRUE(missing.status().IsInvalidArgument())
      << missing.status().ToString();
  auto extra = session_.Execute("SELECT * FROM sensor_info",
                                {Datum::Int64(1)});
  EXPECT_TRUE(extra.status().IsInvalidArgument())
      << extra.status().ToString();
}

TEST_F(SessionTest, ParameterBindingInInsert) {
  auto stmt = session_.Prepare("INSERT INTO sensor_info VALUES (?, ?)");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();
  EXPECT_EQ((*stmt)->param_count(), 2);
  for (int id = 3; id <= 5; ++id) {
    auto r = session_.ExecutePrepared(
        *stmt, {Datum::Int64(id), Datum::String("west")});
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    EXPECT_EQ(r->affected_rows, 1);
  }
  auto count = session_.Execute(
      "SELECT COUNT(*) FROM sensor_info WHERE area = 'west'");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0], Datum::Int64(3));
}

TEST_F(SessionTest, PreparedReExecutionSkipsParseAndBind) {
  auto stmt = session_.Prepare(
      "SELECT AVG(temperature) FROM env_v WHERE id = ?");
  ASSERT_TRUE(stmt.ok()) << stmt.status().ToString();

  auto r1 = session_.ExecutePrepared(*stmt, {Datum::Int64(1)});
  auto r2 = session_.ExecutePrepared(*stmt, {Datum::Int64(2)});
  ASSERT_TRUE(r1.ok() && r2.ok());
  // Different parameters produce different answers off one handle.
  EXPECT_NE(r1->rows[0][0], r2->rows[0][0]);
  // The profile says so: prepared executions skip parse/bind, so
  // plan_micros covers planning only and the flag is stamped.
  EXPECT_TRUE(r1->profile.prepared);
  EXPECT_TRUE(r2->profile.prepared);
  // A cold Execute of the same text is not flagged.
  auto cold = session_.Execute(
      "SELECT AVG(temperature) FROM env_v WHERE id = ?", {Datum::Int64(1)});
  ASSERT_TRUE(cold.ok());
  EXPECT_FALSE(cold->profile.prepared);
}

TEST_F(SessionTest, PrepareCacheHitsOnSameText) {
  const std::string sql = "SELECT COUNT(*) FROM env_v WHERE id = ?";
  auto p1 = session_.Prepare(sql);
  auto p2 = session_.Prepare(sql);
  ASSERT_TRUE(p1.ok() && p2.ok());
  EXPECT_EQ(p1->get(), p2->get());  // Same cached handle.
  EXPECT_EQ(session_.stats().prepare_cache_hits, 1);
  EXPECT_EQ(session_.stats().prepares, 2);
}

TEST_F(SessionTest, PrepareCacheEvictsOldestButHandlesStayValid) {
  auto first = session_.Prepare("SELECT COUNT(*) FROM env_v WHERE id = ?");
  ASSERT_TRUE(first.ok());
  // Flood the cache far past capacity with distinct statements.
  for (int i = 0; i < 80; ++i) {
    auto p = session_.Prepare("SELECT COUNT(*) FROM env_v WHERE ts > " +
                              std::to_string(i));
    ASSERT_TRUE(p.ok()) << p.status().ToString();
  }
  int64_t hits_before = session_.stats().prepare_cache_hits;
  auto again = session_.Prepare("SELECT COUNT(*) FROM env_v WHERE id = ?");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(session_.stats().prepare_cache_hits, hits_before)
      << "evicted statement should not report a cache hit";
  // The evicted handle still executes: shared ownership keeps it alive.
  auto r = session_.ExecutePrepared(*first, {Datum::Int64(1)});
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], Datum::Int64(500));
}

TEST_F(SessionTest, ExplainCannotBePrepared) {
  auto p = session_.Prepare("EXPLAIN SELECT * FROM sensor_info");
  EXPECT_TRUE(p.status().IsInvalidArgument()) << p.status().ToString();
}

TEST_F(SessionTest, ExplainProfileRunsThroughSession) {
  auto r = session_.Execute(
      "EXPLAIN PROFILE SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  ASSERT_FALSE(r->rows.empty());
  EXPECT_EQ(r->rows[0][0], Datum::String("path"));
}

TEST_F(SessionTest, StreamingNonSelectReportsAffectedRows) {
  auto stream = session_.ExecuteStreaming(
      "INSERT INTO sensor_info VALUES (9, 'east')");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  Row row;
  EXPECT_FALSE((*stream)->Next(&row).value());  // Zero rows.
  EXPECT_EQ((*stream)->affected_rows(), 1);
}

TEST_F(SessionTest, AbandonedStreamStillLogsItsProfile) {
  {
    auto stream = session_.ExecuteStreaming(
        "SELECT ts FROM env_v WHERE id = 1");
    ASSERT_TRUE(stream.ok());
    Row row;
    ASSERT_TRUE((*stream)->Next(&row).value());
    // Dropped after one row: the destructor must finish and log it.
  }
  bool found = false;
  for (const QueryProfile& q : odh_.engine()->RecentQueries()) {
    if (q.statement == "SELECT ts FROM env_v WHERE id = 1") found = true;
  }
  EXPECT_TRUE(found);
}

TEST_F(SessionTest, SessionStatsCountWork) {
  SessionStats before = session_.stats();
  auto r = session_.Execute("SELECT ts FROM env_v WHERE id = 1 LIMIT 10");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(session_.stats().statements_executed,
            before.statements_executed + 1);
  EXPECT_EQ(session_.stats().rows_streamed, before.rows_streamed + 10);
}


TEST_F(SessionTest, StatsResetOnlyExplicitly) {
  ASSERT_TRUE(session_.Execute("SELECT COUNT(*) FROM env_v").ok());
  // An error does not reset the counters (uniform with net::ClientStats).
  EXPECT_FALSE(session_.Execute("SELECT nope FROM nowhere").ok());
  EXPECT_GE(session_.stats().statements_executed, 1);
  session_.ResetStats();
  EXPECT_EQ(session_.stats().statements_executed, 0);
  EXPECT_EQ(session_.stats().prepares, 0);
  EXPECT_EQ(session_.stats().rows_streamed, 0);
}

TEST_F(SessionTest, ReadOnlySessionRejectsMutations) {
  session_.set_read_only(true);
  auto insert = session_.Execute("CREATE TABLE ro_nope (k BIGINT)");
  ASSERT_FALSE(insert.ok());
  EXPECT_TRUE(insert.status().IsFailedPrecondition())
      << insert.status().ToString();
  // Reads still work, and turning the flag off restores writes.
  EXPECT_TRUE(session_.Execute("SELECT COUNT(*) FROM env_v").ok());
  session_.set_read_only(false);
  EXPECT_TRUE(session_.Execute("CREATE TABLE ro_yes (k BIGINT)").ok());
}

}  // namespace
}  // namespace odh::sql
