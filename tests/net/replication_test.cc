// WAL-shipping replication, end to end over loopback TCP: bootstrap
// snapshots (including the empty-store and racing-compaction edges),
// live tailing, reconnect catch-up under injected faults, replicated
// compaction and retention drops, read-only replica sessions, and the
// replication-lag watermark surfaced through EXPLAIN PROFILE and
// odh_metrics.

#include "net/replication.h"

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "core/replica.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/server.h"
#include "sql/session.h"

namespace odh::net {
namespace {

/// A primary historian with its replication source behind a server, plus
/// (on demand) a replica system tailing it. Both sides are configured
/// identically — schema types and OdhOptions must match for the primary's
/// segment keys to be meaningful on the replica.
class ReplicationTest : public ::testing::Test {
 protected:
  void StartPrimary(core::OdhOptions odh_options = {},
                    ServerOptions server_options = {}) {
    odh_options_ = odh_options;
    primary_ = std::make_unique<core::OdhSystem>(odh_options);
    type_ = primary_->DefineSchemaType("env", {"temperature"}).value();
    ODH_CHECK_OK(
        primary_->RegisterSource(1, type_, kMicrosPerSecond, /*regular=*/true));
    source_ = std::make_unique<ReplicationSource>(
        primary_->store(), ReplicationSourceOptions{}, primary_->metrics());
    server_options.role = ServerRole::kPrimary;
    server_options.replication = source_.get();
    server_ = std::make_unique<HistorianServer>(primary_->engine(),
                                                server_options,
                                                primary_->metrics());
    auto port = server_->Start();
    ODH_CHECK_OK(port.status());
    port_ = *port;
  }

  void StartReplica(ReplicationClientOptions options = {}) {
    replica_ = std::make_unique<core::OdhSystem>(odh_options_);
    int type = replica_->DefineSchemaType("env", {"temperature"}).value();
    ASSERT_EQ(type, type_);
    // A replica is configured exactly like its primary — same schema
    // types AND the same source registry (the read path resolves sources
    // through local metadata; the stream ships data, not catalog).
    ODH_CHECK_OK(
        replica_->RegisterSource(1, type, kMicrosPerSecond, /*regular=*/true));
    applier_ = std::make_unique<core::ReplicaApplier>(replica_->store());
    if (!fast_backoff_applied_) {
      options.retry.initial_backoff_ms = 1;
      options.retry.max_backoff_ms = 8;
    }
    rclient_ = std::make_unique<ReplicationClient>("127.0.0.1", port_,
                                                   applier_.get(), options);
    ODH_CHECK_OK(rclient_->Start());
  }

  void TearDown() override {
    if (rclient_) rclient_->Stop();
    if (replica_server_) replica_server_->Stop();
    if (server_) server_->Stop();
  }

  /// Ingests points [from, from+n) for source 1 and makes them durable.
  void IngestPoints(int from, int n) {
    for (int i = from; i < from + n; ++i) {
      ODH_CHECK_OK(
          primary_->Ingest({1, i * kMicrosPerSecond, {20.0 + 0.01 * i}}));
    }
    ODH_CHECK_OK(primary_->FlushAll());
  }

  /// Blocks until the replica applied everything durable on the primary.
  [[nodiscard]] bool CatchUp(int timeout_ms = 10000) {
    return rclient_->WaitForLsn(primary_->store()->durable_lsn(), timeout_ms);
  }

  /// COUNT + SUM of source 1's points through a local SQL session.
  std::pair<int64_t, double> Summary(core::OdhSystem* sys) {
    sql::Session local(sys->engine());
    auto r = local.Execute(
        "SELECT COUNT(*), SUM(temperature) FROM env_v WHERE id = 1");
    ODH_CHECK_OK(r.status());
    if (r->rows[0][1].is_null()) return {r->rows[0][0].int64_value(), 0.0};
    return {r->rows[0][0].int64_value(), r->rows[0][1].double_value()};
  }

  void ExpectParity() {
    auto p = Summary(primary_.get());
    auto r = Summary(replica_.get());
    EXPECT_EQ(p.first, r.first);
    EXPECT_DOUBLE_EQ(p.second, r.second);
  }

  core::OdhOptions odh_options_;
  std::unique_ptr<core::OdhSystem> primary_;
  std::unique_ptr<core::OdhSystem> replica_;
  std::unique_ptr<ReplicationSource> source_;
  std::unique_ptr<HistorianServer> server_;
  std::unique_ptr<HistorianServer> replica_server_;
  std::unique_ptr<core::ReplicaApplier> applier_;
  std::unique_ptr<ReplicationClient> rclient_;
  bool fast_backoff_applied_ = false;
  int type_ = 0;
  int port_ = 0;
};

TEST_F(ReplicationTest, BootstrapMirrorsAPopulatedPrimary) {
  StartPrimary();
  IngestPoints(0, 120);
  StartReplica();
  ASSERT_TRUE(CatchUp());
  ExpectParity();
  EXPECT_GT(applier_->records_applied(), 0);
  EXPECT_EQ(source_->snapshots_served(), 1);
  ODH_CHECK_OK(rclient_->fatal_error());
}

TEST_F(ReplicationTest, EmptyPrimaryBootstrapsThenStreamsLiveWrites) {
  StartPrimary();
  StartReplica();
  // An empty primary's snapshot is legal: zero records, base LSN zero.
  // Wait for the snapshot to be cut before ingesting — otherwise the
  // first writes could ride inside the bootstrap image and the
  // batches_shipped assertion below would race.
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (source_->snapshots_served() == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(source_->snapshots_served(), 1);
  ASSERT_TRUE(CatchUp());
  EXPECT_EQ(Summary(replica_.get()).first, 0);

  IngestPoints(0, 50);
  ASSERT_TRUE(CatchUp());
  ExpectParity();

  // Later writes flow through the same live stream, batch by batch.
  IngestPoints(50, 25);
  ASSERT_TRUE(CatchUp());
  ExpectParity();
  EXPECT_GT(source_->batches_shipped(), 0);
}

TEST_F(ReplicationTest, LagWatermarkIsMonotoneDuringCatchUp) {
  StartPrimary();
  IngestPoints(0, 40);
  StartReplica();

  // Keep feeding the primary while sampling the replica's watermarks: the
  // applied LSN and data watermark may only move forward.
  uint64_t last_lsn = 0;
  int64_t last_watermark = kMinTimestamp;
  for (int batch = 0; batch < 10; ++batch) {
    IngestPoints(40 + batch * 10, 10);
    for (int i = 0; i < 50; ++i) {
      const uint64_t lsn = applier_->applied_lsn();
      const int64_t wm = applier_->applied_watermark();
      EXPECT_GE(lsn, last_lsn);
      EXPECT_GE(wm, last_watermark);
      last_lsn = lsn;
      last_watermark = wm;
    }
  }
  ASSERT_TRUE(CatchUp());
  ExpectParity();
  EXPECT_GE(applier_->applied_watermark(), last_watermark);
  EXPECT_EQ(applier_->lag_bytes(), 0);
}

TEST_F(ReplicationTest, ReconnectCatchesUpWithoutLossOrDuplication) {
  StartPrimary();
  IngestPoints(0, 60);

  // Seeded read faults on the subscriber's transport cut the stream
  // repeatedly; every cut forces a reconnect that must resume from the
  // applied LSN — never re-applying (duplicates) or skipping (loss).
  FaultPolicy faults(/*seed=*/21);
  faults.FailNthRead(4);
  faults.FailNthRead(9);
  faults.FailNthRead(15);
  ReplicationClientOptions options;
  options.fault_policy = &faults;
  options.retry.initial_backoff_ms = 1;
  options.retry.max_backoff_ms = 8;
  fast_backoff_applied_ = true;
  StartReplica(options);

  for (int batch = 0; batch < 6; ++batch) {
    IngestPoints(60 + batch * 20, 20);
    ASSERT_TRUE(CatchUp());
  }
  ExpectParity();
  EXPECT_GT(faults.faults_injected(), 0u) << "schedule never fired";
  EXPECT_GE(rclient_->reconnects(), 1);
  ODH_CHECK_OK(rclient_->fatal_error());
}

TEST_F(ReplicationTest, CompactionAndRetentionDropsReplicate) {
  core::OdhOptions options;
  options.segment_span = 60 * kMicrosPerSecond;  // Points span many segments.
  StartPrimary(options);
  // Flush per segment window so blobs align with segments: a single giant
  // blob would begin at ts 0 and spill its data past the retention
  // cutoff, pinning segment 0 (ApplyRetention never drops live points).
  for (int seg = 0; seg < 5; ++seg) IngestPoints(seg * 60, 60);
  StartReplica();
  ASSERT_TRUE(CatchUp());
  ExpectParity();

  // Compaction rewrites sealed segments as Begin/replacement/Commit
  // episodes in the WAL; the replica replays them as atomic swaps.
  auto compacted = primary_->CompactSegments(type_);
  ODH_CHECK_OK(compacted.status());
  ASSERT_TRUE(CatchUp());
  ExpectParity();

  // A retention drop is a kSegmentDrop record; the replica drops its own
  // segment under its own WAL and stays query-consistent.
  auto before = Summary(primary_.get()).first;
  auto dropped = primary_->SetRetention(type_, 120 * kMicrosPerSecond);
  ODH_CHECK_OK(dropped.status());
  EXPECT_GT(*dropped, 0);
  ASSERT_TRUE(CatchUp());
  ExpectParity();
  EXPECT_LT(Summary(primary_.get()).first, before);
  ODH_CHECK_OK(rclient_->fatal_error());
}

TEST_F(ReplicationTest, BootstrapRacesCompactionAndRetention) {
  // The snapshot is cut under the store lock, so a compaction or
  // retention drop can only land fully before or fully after the cut —
  // either way the stream replays it against the snapshot image. Run the
  // whole reorganization after the subscriber's snapshot position was
  // fixed but before it finishes applying, by compacting/dropping
  // concurrently with the bootstrap.
  core::OdhOptions options;
  options.segment_span = 60 * kMicrosPerSecond;
  StartPrimary(options);
  for (int seg = 0; seg < 5; ++seg) IngestPoints(seg * 60, 60);
  StartReplica();
  auto compacted = primary_->CompactSegments(type_);
  ODH_CHECK_OK(compacted.status());
  auto dropped = primary_->SetRetention(type_, 120 * kMicrosPerSecond);
  ODH_CHECK_OK(dropped.status());
  ASSERT_TRUE(CatchUp()) << "fatal=" << rclient_->fatal_error().ToString()
                         << " applied=" << applier_->applied_lsn()
                         << " durable=" << primary_->store()->durable_lsn();
  ExpectParity();
  ODH_CHECK_OK(rclient_->fatal_error());
}

TEST_F(ReplicationTest, ReplicaServesReadOnlySessionsReportingLag) {
  StartPrimary();
  IngestPoints(0, 30);
  StartReplica();
  ASSERT_TRUE(CatchUp());

  // A replica-role server over the replica's engine: read-only sessions,
  // lag in every profile, gauges in odh_metrics.
  ExposeReplicationLag(applier_.get(), replica_->engine());
  rclient_->RegisterGauges(replica_->metrics());
  ServerOptions ro;
  ro.role = ServerRole::kReplica;
  replica_server_ = std::make_unique<HistorianServer>(
      replica_->engine(), ro, replica_->metrics());
  auto port = replica_server_->Start();
  ODH_CHECK_OK(port.status());
  EXPECT_EQ(replica_server_->role(), ServerRole::kReplica);

  auto client = Client::Connect("127.0.0.1", *port);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto rows = (*client)->Query("SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows->rows[0][0], Datum::Int64(30));

  // Mutations are rejected with a precondition error, not executed.
  auto ddl = (*client)->Query("CREATE TABLE nope (k BIGINT)");
  ASSERT_FALSE(ddl.ok());
  EXPECT_TRUE(ddl.status().IsFailedPrecondition()) << ddl.status().ToString();
  {
    sql::Session local(replica_->engine());
    auto check = local.Execute("SELECT COUNT(*) FROM nope");
    EXPECT_FALSE(check.ok()) << "rejected DDL still executed";
  }

  // EXPLAIN PROFILE carries the replica's lag watermark rows.
  auto profile = (*client)->Query(
      "EXPLAIN PROFILE SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(profile.ok()) << profile.status().ToString();
  bool saw_lag = false, saw_staleness = false;
  for (const Row& row : profile->rows) {
    if (row[0] == Datum::String("repl_lag_bytes")) {
      saw_lag = true;
      EXPECT_GE(row[1].int64_value(), 0);
    }
    if (row[0] == Datum::String("repl_staleness_micros")) {
      saw_staleness = true;
      EXPECT_GE(row[1].int64_value(), 0);
    }
  }
  EXPECT_TRUE(saw_lag);
  EXPECT_TRUE(saw_staleness);

  // The same watermark is a gauge in odh_metrics.
  auto metrics = (*client)->Query(
      "SELECT name, value FROM odh_metrics");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  std::set<std::string> names;
  for (const Row& row : metrics->rows) names.insert(row[0].string_value());
  EXPECT_TRUE(names.count("odh.repl.applied_lsn"));
  EXPECT_TRUE(names.count("odh.repl.lag_bytes"));
  EXPECT_TRUE(names.count("odh.repl.staleness_micros"));

  // A primary's profile stays in the historical shape: no repl rows.
  auto primary_client = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(primary_client.ok());
  auto pprofile = (*primary_client)->Query(
      "EXPLAIN PROFILE SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(pprofile.ok()) << pprofile.status().ToString();
  for (const Row& row : pprofile->rows) {
    EXPECT_NE(row[0], Datum::String("repl_lag_bytes"));
  }
}

TEST_F(ReplicationTest, SubscribingAheadOfThePrimaryIsFatalNotRetried) {
  StartPrimary();
  IngestPoints(0, 40);
  StartReplica();
  ASSERT_TRUE(CatchUp());
  const uint64_t applied = applier_->applied_lsn();
  ASSERT_GT(applied, 0u);
  rclient_->Stop();
  server_->Stop();

  // A fresh, empty "primary" (wrong machine, wiped disk): the replica's
  // resume position is beyond its durable log. That is never retried —
  // backing off forever against a primary that cannot have the data
  // would silently serve stale reads; the operator must re-bootstrap.
  auto wrong = std::make_unique<core::OdhSystem>(odh_options_);
  ASSERT_TRUE(wrong->DefineSchemaType("env", {"temperature"}).ok());
  ODH_CHECK_OK(wrong->RegisterSource(1, type_, kMicrosPerSecond, true));
  ReplicationSource wrong_source(wrong->store());
  ServerOptions options;
  options.role = ServerRole::kPrimary;
  options.replication = &wrong_source;
  HistorianServer wrong_server(wrong->engine(), options, wrong->metrics());
  auto port = wrong_server.Start();
  ODH_CHECK_OK(port.status());

  ReplicationClientOptions copts;
  copts.retry.initial_backoff_ms = 1;
  copts.retry.max_backoff_ms = 4;
  ReplicationClient stale("127.0.0.1", *port, applier_.get(), copts);
  ODH_CHECK_OK(stale.Start());
  Status fatal;
  for (int i = 0; i < 1000; ++i) {
    fatal = stale.fatal_error();
    if (!fatal.ok()) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_FALSE(fatal.ok()) << "stale subscribe kept being retried";
  EXPECT_EQ(applier_->applied_lsn(), applied) << "stale primary fed data";
  stale.Stop();
  wrong_server.Stop();
}

}  // namespace
}  // namespace odh::net
