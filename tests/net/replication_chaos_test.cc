// Replication chaos: a primary is killed mid-ingest while a replica tails
// it over a faulty link. The contract under test is the semi-synchronous
// ack rule — a write counts as acknowledged only once the replica has
// applied (and locally re-logged) the primary WAL prefix containing it —
// and the invariant is absolute: after promotion, every acknowledged
// write is present on the replica exactly once, no matter where in the
// stream the primary died.

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "core/replica.h"
#include "net/fault.h"
#include "net/replication.h"
#include "net/server.h"
#include "sql/session.h"

namespace odh::net {
namespace {

constexpr int kWrites = 120;
constexpr int kKillAt = 70;  // Primary dies after this many ingest rounds.

TEST(ReplicationChaosTest, PromotedReplicaHasEveryAckedWriteExactlyOnce) {
  // Primary: historian + replication source behind a primary-role server.
  core::OdhSystem primary;
  const int type = primary.DefineSchemaType("env", {"temperature"}).value();
  ODH_CHECK_OK(
      primary.RegisterSource(1, type, kMicrosPerSecond, /*regular=*/true));
  ReplicationSource source(primary.store());
  ServerOptions server_options;
  server_options.role = ServerRole::kPrimary;
  server_options.replication = &source;
  auto server = std::make_unique<HistorianServer>(primary.engine(),
                                                  server_options,
                                                  primary.metrics());
  auto port = server->Start();
  ODH_CHECK_OK(port.status());

  // Replica: same schema, tailing through seeded rate faults — the link
  // drops mid-stream repeatedly and every reconnect must resume cleanly.
  core::OdhSystem replica;
  ASSERT_EQ(replica.DefineSchemaType("env", {"temperature"}).value(), type);
  ODH_CHECK_OK(
      replica.RegisterSource(1, type, kMicrosPerSecond, /*regular=*/true));
  core::ReplicaApplier applier(replica.store());
  FaultPolicy faults(/*seed=*/0xD1CE);
  faults.set_connect_fault_rate(0.05);
  faults.set_read_fault_rate(0.03);
  ReplicationClientOptions client_options;
  client_options.fault_policy = &faults;
  client_options.retry.initial_backoff_ms = 1;
  client_options.retry.max_backoff_ms = 8;
  client_options.flush_every_batches = 1;  // Max durability: the ack rule.
  ReplicationClient tail("127.0.0.1", *port, &applier, client_options);
  ODH_CHECK_OK(tail.Start());

  // Ingest rounds: each round writes one point, makes it durable on the
  // primary, then acks it only if the replica confirms that durable LSN
  // within the wait budget. Unconfirmed rounds stay unacknowledged (their
  // data may or may not survive — that ambiguity is the point).
  std::set<int> acked;
  int64_t last_watermark = kMinTimestamp;
  for (int k = 0; k < kWrites; ++k) {
    if (k == kKillAt) {
      // The primary "dies": the server stops abruptly with the stream
      // live. Nothing written after this point can be acknowledged.
      server->Stop();
      server.reset();
    }
    Status write = primary.Ingest({1, k * kMicrosPerSecond, {20.0 + k}});
    if (write.ok()) write = primary.FlushAll();
    if (write.ok() && server != nullptr) {
      const uint64_t durable = primary.store()->durable_lsn();
      if (tail.WaitForLsn(durable, /*timeout_ms=*/5000)) acked.insert(k);
    }
    // The replica's data watermark may only move forward, faults or not.
    const int64_t watermark = applier.applied_watermark();
    EXPECT_GE(watermark, last_watermark);
    last_watermark = watermark;
  }
  ASSERT_GT(acked.size(), 0u) << "no write was ever acknowledged";
  ASSERT_LT(acked.size(), static_cast<size_t>(kWrites))
      << "the kill point acknowledged post-mortem writes";

  // Promote: stop tailing. The replica's state is whatever its own WAL
  // made durable — no primary needed from here on.
  tail.Stop();

  // Audit the promoted replica: every acknowledged timestamp exactly
  // once, and nothing duplicated anywhere in the stream's replay.
  sql::Session session(replica.engine());
  auto rows = session.Execute("SELECT ts FROM env_v WHERE id = 1 ORDER BY ts");
  ODH_CHECK_OK(rows.status());
  std::map<int64_t, int> present;
  for (const Row& row : rows->rows) ++present[row[0].timestamp_value()];
  for (int k : acked) {
    EXPECT_EQ(present[k * kMicrosPerSecond], 1)
        << "acked write " << k
        << (present[k * kMicrosPerSecond] == 0 ? " lost" : " duplicated")
        << " on the promoted replica";
  }
  for (const auto& [ts, count] : present) {
    EXPECT_EQ(count, 1) << "ts " << ts << " applied " << count << " times";
  }
}

// A crashed-and-rebooted replica must rejoin from its own recovered WAL:
// the applied LSN is re-derived from local durable state, the resumed
// subscription continues from there, and no acked write is lost through
// the crash + catch-up.
TEST(ReplicationChaosTest, ReplicaCrashRecoveryResumesTheStream) {
  core::OdhSystem primary;
  const int type = primary.DefineSchemaType("env", {"temperature"}).value();
  ODH_CHECK_OK(
      primary.RegisterSource(1, type, kMicrosPerSecond, /*regular=*/true));
  ReplicationSource source(primary.store());
  ServerOptions server_options;
  server_options.role = ServerRole::kPrimary;
  server_options.replication = &source;
  HistorianServer server(primary.engine(), server_options, primary.metrics());
  auto port = server.Start();
  ODH_CHECK_OK(port.status());

  ReplicationClientOptions client_options;
  client_options.retry.initial_backoff_ms = 1;
  client_options.retry.max_backoff_ms = 8;

  // Phase 1: replicate 60 points, then "crash" the replica (drop the
  // system; its SimDisk survives as the durable image).
  auto replica = std::make_unique<core::OdhSystem>();
  ASSERT_EQ(replica->DefineSchemaType("env", {"temperature"}).value(), type);
  ODH_CHECK_OK(
      replica->RegisterSource(1, type, kMicrosPerSecond, /*regular=*/true));
  for (int k = 0; k < 60; ++k) {
    ODH_CHECK_OK(primary.Ingest({1, k * kMicrosPerSecond, {20.0 + k}}));
  }
  ODH_CHECK_OK(primary.FlushAll());
  uint64_t lsn_before_crash = 0;
  {
    core::ReplicaApplier applier(replica->store());
    ReplicationClient tail("127.0.0.1", *port, &applier, client_options);
    ODH_CHECK_OK(tail.Start());
    ASSERT_TRUE(tail.WaitForLsn(primary.store()->durable_lsn(), 10000));
    ODH_CHECK_OK(tail.fatal_error());
    tail.Stop();
    lsn_before_crash = applier.applied_lsn();
  }
  auto crashed_disk = replica->database()->disk()->CloneDurable();
  replica.reset();

  // More writes land while the replica is down.
  for (int k = 60; k < 100; ++k) {
    ODH_CHECK_OK(primary.Ingest({1, k * kMicrosPerSecond, {20.0 + k}}));
  }
  ODH_CHECK_OK(primary.FlushAll());

  // Phase 2: reboot from the durable image, re-derive the applied LSN,
  // resume — the stream continues from the crash point, no re-bootstrap.
  auto rebooted = std::make_unique<core::OdhSystem>();
  ASSERT_EQ(rebooted->DefineSchemaType("env", {"temperature"}).value(), type);
  ODH_CHECK_OK(
      rebooted->RegisterSource(1, type, kMicrosPerSecond, /*regular=*/true));
  auto recovered = rebooted->Recover(crashed_disk.get());
  ODH_CHECK_OK(recovered.status());
  core::ReplicaApplier applier(rebooted->store());
  applier.ResumeAt(lsn_before_crash);
  ReplicationClient tail("127.0.0.1", *port, &applier, client_options);
  ODH_CHECK_OK(tail.Start());
  ASSERT_TRUE(tail.WaitForLsn(primary.store()->durable_lsn(), 10000));
  ODH_CHECK_OK(tail.fatal_error());
  tail.Stop();

  sql::Session mine(rebooted->engine());
  sql::Session theirs(primary.engine());
  const std::string q =
      "SELECT COUNT(*), SUM(temperature) FROM env_v WHERE id = 1";
  auto a = mine.Execute(q);
  auto b = theirs.Execute(q);
  ODH_CHECK_OK(a.status());
  ODH_CHECK_OK(b.status());
  EXPECT_EQ(a->rows, b->rows);
  server.Stop();
}

}  // namespace
}  // namespace odh::net
