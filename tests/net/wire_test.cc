// Wire protocol: every frame round-trips encode -> frame -> parse ->
// decode; truncated prefixes ask for more bytes; garbage (oversized or
// unknown-type frames, short payloads, lying counts) is rejected instead
// of over-reading or crashing the decoder.

#include "net/wire.h"

#include <gtest/gtest.h>

#include <functional>
#include <string>
#include <vector>

#include "common/coding.h"
#include "common/status.h"

namespace odh::net {
namespace {

/// Frames `payload` as `type` and parses it back, expecting exactly one
/// whole frame.
Frame RoundTrip(FrameType type, const std::string& payload) {
  std::string wire;
  AppendFrame(&wire, type, payload);
  Frame frame;
  auto consumed = ParseFrame(wire, &frame);
  EXPECT_TRUE(consumed.ok()) << consumed.status().ToString();
  EXPECT_EQ(consumed.value_or(0), wire.size());
  EXPECT_EQ(frame.type, type);
  return frame;
}

std::vector<Datum> SampleParams() {
  return {Datum::Int64(-42), Datum::Double(3.5), Datum::String("Sensor S1"),
          Datum::Null(), Datum::Bool(true),
          Datum::Time(1234567890123456)};
}

TEST(WireTest, DatumsRoundTrip) {
  std::string buf;
  for (const Datum& d : SampleParams()) PutDatum(&buf, d);
  Slice in(buf);
  for (const Datum& d : SampleParams()) {
    Datum back;
    ASSERT_TRUE(GetDatum(&in, &back));
    EXPECT_EQ(back, d);
  }
  EXPECT_TRUE(in.empty());
}

TEST(WireTest, HelloWelcomeRoundTrip) {
  Frame hello = RoundTrip(FrameType::kHello, EncodeHello(kProtocolVersion));
  uint32_t version = 0;
  ASSERT_TRUE(DecodeHello(hello.payload, &version));
  EXPECT_EQ(version, kProtocolVersion);

  Frame welcome =
      RoundTrip(FrameType::kWelcome, EncodeWelcome(kProtocolVersion, 77));
  uint64_t session_id = 0;
  ASSERT_TRUE(DecodeWelcome(welcome.payload, &version, &session_id));
  EXPECT_EQ(session_id, 77u);
}

TEST(WireTest, QueryRoundTrip) {
  const std::string sql = "SELECT * FROM env_v WHERE id = ? AND t > ?";
  Frame frame = RoundTrip(FrameType::kQuery, EncodeQuery(sql, SampleParams()));
  std::string sql_back;
  std::vector<Datum> params;
  ASSERT_TRUE(DecodeQuery(frame.payload, &sql_back, &params));
  EXPECT_EQ(sql_back, sql);
  EXPECT_EQ(params, SampleParams());
}

TEST(WireTest, PreparedAndExecuteRoundTrip) {
  Frame prepared = RoundTrip(FrameType::kPrepared,
                             EncodePrepared(9, 2, {"ts", "temperature"}));
  uint64_t id = 0;
  uint32_t param_count = 0;
  std::vector<std::string> columns;
  ASSERT_TRUE(DecodePrepared(prepared.payload, &id, &param_count, &columns));
  EXPECT_EQ(id, 9u);
  EXPECT_EQ(param_count, 2u);
  EXPECT_EQ(columns, (std::vector<std::string>{"ts", "temperature"}));

  Frame exec =
      RoundTrip(FrameType::kExecute, EncodeExecute(9, SampleParams()));
  std::vector<Datum> params;
  ASSERT_TRUE(DecodeExecute(exec.payload, &id, &params));
  EXPECT_EQ(id, 9u);
  EXPECT_EQ(params, SampleParams());
}

TEST(WireTest, RowBatchRoundTrip) {
  std::vector<Row> rows = {
      {Datum::Int64(1), Datum::Double(20.5), Datum::String("a")},
      {Datum::Int64(2), Datum::Null(), Datum::String("")},
  };
  Frame frame = RoundTrip(FrameType::kRowBatch, EncodeRowBatch(rows));
  std::vector<Row> back;
  ASSERT_TRUE(DecodeRowBatch(frame.payload, &back));
  EXPECT_EQ(back, rows);
}

TEST(WireTest, DoneRoundTrip) {
  DoneInfo info;
  info.affected_rows = 3;
  info.rows_returned = 12345;
  info.path = "summary-pushdown";
  info.plan_micros = 12.5;
  info.total_micros = 842.0;
  Frame frame = RoundTrip(FrameType::kDone, EncodeDone(info));
  DoneInfo back;
  ASSERT_TRUE(DecodeDone(frame.payload, &back));
  EXPECT_EQ(back.affected_rows, 3);
  EXPECT_EQ(back.rows_returned, 12345);
  EXPECT_EQ(back.path, "summary-pushdown");
  EXPECT_DOUBLE_EQ(back.plan_micros, 12.5);
  EXPECT_DOUBLE_EQ(back.total_micros, 842.0);
}

TEST(WireTest, ErrorRoundTripPreservesCodeAndMessage) {
  Status original = Status::NotFound("no such statement: 7");
  Frame frame = RoundTrip(FrameType::kError, EncodeError(original));
  Status back;
  ASSERT_TRUE(DecodeError(frame.payload, &back));
  EXPECT_TRUE(back.IsNotFound()) << back.ToString();
  EXPECT_EQ(back.ToString(), original.ToString());
}

TEST(WireTest, ErrorDecodeRejectsUnknownCode) {
  // A remote speaking a future status enum must not map onto a bogus
  // local code; it degrades to Internal.
  std::string payload;
  PutFixed32(&payload, 0xFFFF);
  PutString(&payload, "from the future");
  Status back;
  ASSERT_TRUE(DecodeError(payload, &back));
  EXPECT_TRUE(back.IsInternal()) << back.ToString();
}

TEST(WireTest, TruncatedFramesWantMoreBytes) {
  std::string wire;
  AppendFrame(&wire, FrameType::kQuery, EncodeQuery("SELECT 1", {}));
  // Every proper prefix must parse as "incomplete", never as an error.
  for (size_t len = 0; len < wire.size(); ++len) {
    Frame frame;
    auto consumed = ParseFrame(Slice(wire.data(), len), &frame);
    ASSERT_TRUE(consumed.ok()) << "prefix len " << len;
    EXPECT_EQ(consumed.value(), 0u) << "prefix len " << len;
  }
}

TEST(WireTest, TwoFramesParseInSequence) {
  std::string wire;
  AppendFrame(&wire, FrameType::kHello, EncodeHello(1));
  AppendFrame(&wire, FrameType::kBye, "");
  Frame frame;
  auto first = ParseFrame(wire, &frame);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(frame.type, FrameType::kHello);
  auto second =
      ParseFrame(Slice(wire.data() + *first, wire.size() - *first), &frame);
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(frame.type, FrameType::kBye);
  EXPECT_EQ(*first + *second, wire.size());
}

TEST(WireTest, OversizedFrameIsCorruptNotAShortRead) {
  std::string wire;
  PutFixed32(&wire, kMaxFrameBytes + 1);
  wire.push_back(static_cast<char>(FrameType::kQuery));
  Frame frame;
  auto consumed = ParseFrame(wire, &frame);
  EXPECT_FALSE(consumed.ok())
      << "a 16MB+ length header must be treated as a hostile stream";
}

TEST(WireTest, UnknownFrameTypeIsCorrupt) {
  std::string wire;
  PutFixed32(&wire, 0);
  wire.push_back(static_cast<char>(200));
  Frame frame;
  EXPECT_FALSE(ParseFrame(wire, &frame).ok());
}

TEST(WireTest, GarbagePayloadsAreRejectedNotOverread) {
  // A count field claiming more elements than the payload holds.
  std::string lying;
  PutString(&lying, "SELECT 1");
  PutFixed32(&lying, 1000000);  // "One million parameters follow." They don't.
  std::string sql;
  std::vector<Datum> params;
  EXPECT_FALSE(DecodeQuery(lying, &sql, &params));

  // A datum truncated mid-value.
  std::string cut;
  PutDatum(&cut, Datum::String("hello world"));
  cut.resize(cut.size() - 4);
  Slice in(cut);
  Datum value;
  EXPECT_FALSE(GetDatum(&in, &value));

  // Trailing junk after a well-formed payload is also a protocol error.
  std::string padded = EncodeHello(1);
  padded += "junk";
  uint32_t version = 0;
  EXPECT_FALSE(DecodeHello(padded, &version));

  // Short noise through every decoder: all of these payloads carry at
  // least one fixed-width field wider than this, so every decoder must
  // return false rather than over-read or crash.
  const std::string noise = "\x07\x93g\xff\x01";
  uint64_t u64 = 0;
  uint32_t u32 = 0;
  std::vector<std::string> cols;
  std::vector<Row> rows;
  DoneInfo done;
  Status status;
  EXPECT_FALSE(DecodeWelcome(noise, &u32, &u64));
  EXPECT_FALSE(DecodePrepared(noise, &u64, &u32, &cols));
  EXPECT_FALSE(DecodeExecute(noise, &u64, &params));
  EXPECT_FALSE(DecodeRowBatch(noise, &rows));
  EXPECT_FALSE(DecodeDone(noise, &done));
  EXPECT_FALSE(DecodeStmtId(noise, &u64));
}

TEST(WireTest, RejectedRoundTripCarriesMachineReadableCode) {
  for (RejectCode code :
       {RejectCode::kTooManySessions, RejectCode::kIncompatibleVersion,
        RejectCode::kDraining}) {
    std::string payload = EncodeRejected(code, "why");
    RejectCode decoded = RejectCode::kUnknown;
    std::string reason;
    ASSERT_TRUE(DecodeRejected(Slice(payload), &decoded, &reason));
    EXPECT_EQ(decoded, code);
    EXPECT_EQ(reason, "why");
  }
}

TEST(WireTest, RejectedPreV2PayloadDegradesToUnknownCode) {
  // A v1 server sent the reason as a bare string. The decoder must not
  // misread it as a code: it degrades to kUnknown (never retried on a
  // guess) and preserves the text.
  Slice legacy("server at max_sessions, retry later");
  RejectCode code = RejectCode::kDraining;  // Anything non-default.
  std::string reason;
  EXPECT_FALSE(DecodeRejected(legacy, &code, &reason));
  EXPECT_EQ(code, RejectCode::kUnknown);
  EXPECT_EQ(reason, "server at max_sessions, retry later");
}

TEST(WireTest, RejectedOutOfRangeCodeDegradesToUnknown) {
  std::string payload = EncodeRejected(static_cast<RejectCode>(999), "?");
  RejectCode code = RejectCode::kDraining;
  std::string reason;
  ASSERT_TRUE(DecodeRejected(Slice(payload), &code, &reason));
  EXPECT_EQ(code, RejectCode::kUnknown);
}


// --- v3 replication frames -------------------------------------------------

TEST(WireTest, ReplSubscribeRoundTrip) {
  Frame f = RoundTrip(FrameType::kReplSubscribe,
                      EncodeReplSubscribe(0x1122334455667788ull));
  uint64_t from_lsn = 0;
  ASSERT_TRUE(DecodeReplSubscribe(f.payload, &from_lsn));
  EXPECT_EQ(from_lsn, 0x1122334455667788ull);
}

TEST(WireTest, ReplSnapshotFramesRoundTrip) {
  Frame begin = RoundTrip(FrameType::kReplSnapshotBegin,
                          EncodeReplSnapshotBegin(4096, 17));
  uint64_t base_lsn = 0, record_count = 0;
  ASSERT_TRUE(DecodeReplSnapshotBegin(begin.payload, &base_lsn,
                                      &record_count));
  EXPECT_EQ(base_lsn, 4096u);
  EXPECT_EQ(record_count, 17u);

  // Chunk payloads are opaque bytes — including embedded NULs and
  // empties; the wire layer must carry them byte-exact.
  const std::vector<std::string> records = {
      std::string("\x00\x01\x02", 3), "", std::string(1000, 'x')};
  Frame chunk = RoundTrip(FrameType::kReplSnapshotChunk,
                          EncodeReplSnapshotChunk(records));
  std::vector<std::string> back;
  ASSERT_TRUE(DecodeReplSnapshotChunk(chunk.payload, &back));
  EXPECT_EQ(back, records);

  Frame end = RoundTrip(FrameType::kReplSnapshotEnd,
                        EncodeReplSnapshotEnd(4096));
  base_lsn = 0;
  ASSERT_TRUE(DecodeReplSnapshotEnd(end.payload, &base_lsn));
  EXPECT_EQ(base_lsn, 4096u);
}

TEST(WireTest, ReplWalBatchRoundTrip) {
  const std::vector<std::string> payloads = {"record-a", "record-b"};
  Frame f = RoundTrip(FrameType::kReplWalBatch,
                      EncodeReplWalBatch(100, 260, payloads));
  uint64_t start = 0, end = 0;
  std::vector<std::string> back;
  ASSERT_TRUE(DecodeReplWalBatch(f.payload, &start, &end, &back));
  EXPECT_EQ(start, 100u);
  EXPECT_EQ(end, 260u);
  EXPECT_EQ(back, payloads);
}

TEST(WireTest, ReplWalBatchRejectsInvertedRange) {
  // end_lsn < start_lsn can only come from corruption or a hostile peer.
  std::string wire = EncodeReplWalBatch(260, 100, {});
  uint64_t start = 0, end = 0;
  std::vector<std::string> back;
  EXPECT_FALSE(DecodeReplWalBatch(wire, &start, &end, &back));
}

TEST(WireTest, ReplHeartbeatRoundTripIncludingNegativeWatermark) {
  // kMinTimestamp (a negative sentinel) must survive the trip — a fresh
  // primary with no data heartbeats exactly that.
  Frame f = RoundTrip(FrameType::kReplHeartbeat,
                      EncodeReplHeartbeat(8192, -1234567890123456789ll));
  uint64_t durable = 0;
  int64_t watermark = 0;
  ASSERT_TRUE(DecodeReplHeartbeat(f.payload, &durable, &watermark));
  EXPECT_EQ(durable, 8192u);
  EXPECT_EQ(watermark, -1234567890123456789ll);
}

TEST(WireTest, TruncatedReplPayloadsAreRejected) {
  // Every truncation point of every v3 frame must decode to false, never
  // over-read. Mirrors TruncatedFramesWantMoreBytes for the frame layer.
  struct Case {
    std::string wire;
    std::function<bool(const Slice&)> decode;
  };
  uint64_t u64a = 0, u64b = 0;
  int64_t i64 = 0;
  std::vector<std::string> recs;
  std::vector<Case> cases;
  cases.push_back({EncodeReplSubscribe(7), [&](const Slice& in) {
                     return DecodeReplSubscribe(in, &u64a);
                   }});
  cases.push_back({EncodeReplSnapshotBegin(7, 9), [&](const Slice& in) {
                     return DecodeReplSnapshotBegin(in, &u64a, &u64b);
                   }});
  cases.push_back(
      {EncodeReplSnapshotChunk({"abc", "defgh"}), [&](const Slice& in) {
         recs.clear();
         return DecodeReplSnapshotChunk(in, &recs);
       }});
  cases.push_back({EncodeReplSnapshotEnd(7), [&](const Slice& in) {
                     return DecodeReplSnapshotEnd(in, &u64a);
                   }});
  cases.push_back(
      {EncodeReplWalBatch(10, 20, {"abc"}), [&](const Slice& in) {
         recs.clear();
         return DecodeReplWalBatch(in, &u64a, &u64b, &recs);
       }});
  cases.push_back({EncodeReplHeartbeat(7, 9), [&](const Slice& in) {
                     return DecodeReplHeartbeat(in, &u64a, &i64);
                   }});
  for (const Case& c : cases) {
    ASSERT_TRUE(c.decode(Slice(c.wire)));  // Sanity: whole payload decodes.
    for (size_t cut = 0; cut < c.wire.size(); ++cut) {
      EXPECT_FALSE(c.decode(Slice(c.wire.data(), cut)))
          << "truncation at byte " << cut << " of " << c.wire.size()
          << " was accepted";
    }
  }
}

TEST(WireTest, GarbageReplPayloadsAreRejectedNotOverread) {
  // A chunk whose count field promises far more records than the payload
  // holds: the hostile-count guard must reject it without allocating.
  std::string lying;
  PutFixed32(&lying, 0x7fffffff);
  std::vector<std::string> recs;
  EXPECT_FALSE(DecodeReplSnapshotChunk(lying, &recs));

  // Same through the batch decoder (count lives after the two LSNs).
  std::string batch;
  PutFixed64(&batch, 0);
  PutFixed64(&batch, 100);
  PutFixed32(&batch, 0x7fffffff);
  uint64_t start = 0, end = 0;
  EXPECT_FALSE(DecodeReplWalBatch(batch, &start, &end, &recs));

  // Trailing junk after a well-formed payload is a protocol error.
  std::string padded = EncodeReplSubscribe(1);
  padded += "junk";
  uint64_t from = 0;
  EXPECT_FALSE(DecodeReplSubscribe(padded, &from));

  // Short noise through every v3 decoder.
  const std::string noise = "\x07\x93g\xff\x01";
  uint64_t u64a = 0, u64b = 0;
  int64_t i64 = 0;
  EXPECT_FALSE(DecodeReplSubscribe(noise, &u64a));
  EXPECT_FALSE(DecodeReplSnapshotBegin(noise, &u64a, &u64b));
  EXPECT_FALSE(DecodeReplSnapshotChunk(noise, &recs));
  EXPECT_FALSE(DecodeReplSnapshotEnd(noise, &u64a));
  EXPECT_FALSE(DecodeReplWalBatch(noise, &u64a, &u64b, &recs));
  EXPECT_FALSE(DecodeReplHeartbeat(noise, &u64a, &i64));
}

}  // namespace
}  // namespace odh::net
