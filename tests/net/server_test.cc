// Historian server end to end over loopback TCP: concurrent sessions
// issuing prepared statements against a shared historian must all see the
// single-threaded ground truth; a server at its session limit must reject
// the next connection crisply (admission control) and expose the count
// through odh_metrics; statement errors must not kill the session. The
// stress test here is the binary CI also runs under TSAN.

#include "net/server.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "net/client.h"
#include "sql/session.h"

namespace odh::net {
namespace {

constexpr int kSources = 8;
constexpr int kPoints = 400;

/// One historian + server shared by the whole suite: ingest once, then
/// hammer it over TCP. Ground truths are computed up front through a
/// local session.
class ServerTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    odh_ = new core::OdhSystem();
    int type = odh_->DefineSchemaType("env", {"temperature", "wind"}).value();
    for (SourceId id = 1; id <= kSources; ++id) {
      ODH_CHECK_OK(odh_->RegisterSource(id, type, kMicrosPerSecond,
                                        /*regular=*/true));
      for (int i = 0; i < kPoints; ++i) {
        ODH_CHECK_OK(odh_->Ingest(
            {id, i * kMicrosPerSecond, {20.0 + id + 0.01 * i, 1.0 * id}}));
      }
    }
    ODH_CHECK_OK(odh_->FlushAll());

    ServerOptions options;
    options.max_sessions = 80;  // Above the 64-session stress below.
    server_ = new HistorianServer(odh_->engine(), options, odh_->metrics());
    auto port = server_->Start();
    ODH_CHECK_OK(port.status());
    port_ = *port;
  }

  static void TearDownTestSuite() {
    server_->Stop();
    delete server_;
    delete odh_;
    server_ = nullptr;
    odh_ = nullptr;
  }

  static std::unique_ptr<Client> MustConnect() {
    auto client = Client::Connect("127.0.0.1", port_);
    ODH_CHECK_OK(client.status());
    return std::move(*client);
  }

  static core::OdhSystem* odh_;
  static HistorianServer* server_;
  static int port_;
};

core::OdhSystem* ServerTest::odh_ = nullptr;
HistorianServer* ServerTest::server_ = nullptr;
int ServerTest::port_ = 0;

TEST_F(ServerTest, QueryMatchesLocalSession) {
  sql::Session local(odh_->engine());
  auto truth = local.Execute(
      "SELECT ts, temperature FROM env_v WHERE id = 3 ORDER BY ts");
  ASSERT_TRUE(truth.ok());

  auto client = MustConnect();
  auto remote = client->Query(
      "SELECT ts, temperature FROM env_v WHERE id = 3 ORDER BY ts");
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->columns, truth->columns);
  EXPECT_EQ(remote->rows, truth->rows);
  EXPECT_EQ(remote->done.rows_returned,
            static_cast<int64_t>(truth->rows.size()));
  EXPECT_FALSE(remote->done.path.empty());
}

TEST_F(ServerTest, StatementErrorLeavesSessionUsable) {
  auto client = MustConnect();
  auto bad = client->Query("SELECT nope FROM not_a_table");
  EXPECT_FALSE(bad.ok());
  EXPECT_FALSE(bad.status().IsIoError())
      << "a SQL error must arrive as an Error frame, not kill the socket: "
      << bad.status().ToString();
  // Same connection, next statement works.
  auto good = client->Query("SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ(good->rows[0][0], Datum::Int64(kPoints));
}

TEST_F(ServerTest, UnknownStatementIdIsAnError) {
  auto client = MustConnect();
  ClientStatement bogus;
  bogus.id = 424242;
  auto r = client->Execute(bogus, {});
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound()) << r.status().ToString();
}

TEST_F(ServerTest, StreamedAndMaterializedAgreeOverTheWire) {
  auto client = MustConnect();
  auto whole = client->Query("SELECT ts, wind FROM env_v WHERE id = 5");
  ASSERT_TRUE(whole.ok());
  auto cursor = client->QueryStream("SELECT ts, wind FROM env_v WHERE id = 5");
  ASSERT_TRUE(cursor.ok()) << cursor.status().ToString();
  std::vector<Row> streamed;
  Row row;
  while (true) {
    auto more = (*cursor)->Next(&row);
    ASSERT_TRUE(more.ok()) << more.status().ToString();
    if (!more.value()) break;
    streamed.push_back(row);
  }
  EXPECT_EQ(streamed, whole->rows);
}

TEST_F(ServerTest, SixtyFourConcurrentSessionsWithPreparedStatements) {
  constexpr int kClients = 64;
  constexpr int kRounds = 8;

  // Ground truth per source, computed locally once.
  sql::Session local(odh_->engine());
  std::vector<std::string> truth(kSources + 1);
  for (int id = 1; id <= kSources; ++id) {
    auto r = local.Execute(
        "SELECT COUNT(*), SUM(temperature) FROM env_v WHERE id = ?",
        {Datum::Int64(id)});
    ASSERT_TRUE(r.ok());
    truth[id] =
        r->rows[0][0].ToString() + "|" + r->rows[0][1].ToString();
  }

  std::atomic<int> failures{0};
  std::vector<std::thread> threads;
  threads.reserve(kClients);
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([t, &truth, &failures] {
      auto client = Client::Connect("127.0.0.1", port_);
      if (!client.ok()) {
        ++failures;
        return;
      }
      auto stmt = (*client)->Prepare(
          "SELECT COUNT(*), SUM(temperature) FROM env_v WHERE id = ?");
      if (!stmt.ok() || stmt->param_count != 1) {
        ++failures;
        return;
      }
      for (int round = 0; round < kRounds; ++round) {
        int id = 1 + (t + round) % kSources;
        auto r = (*client)->Execute(*stmt, {Datum::Int64(id)});
        if (!r.ok() || r->rows.size() != 1) {
          ++failures;
          return;
        }
        std::string got =
            r->rows[0][0].ToString() + "|" + r->rows[0][1].ToString();
        if (got != truth[id]) {
          ++failures;
          return;
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  // Server-side teardown is asynchronous: the handler still has to notice
  // EOF and release its slot after the client's socket closes.
  for (int wait = 0; wait < 500 && server_->sessions_open() != 0; ++wait) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server_->sessions_open(), 0) << "sessions leaked after close";
}

TEST_F(ServerTest, AdmissionControlRejectsBeyondMaxSessions) {
  // A second, tiny server: two session slots.
  ServerOptions options;
  options.max_sessions = 2;
  HistorianServer small(odh_->engine(), options);
  auto port = small.Start();
  ASSERT_TRUE(port.ok());

  // Single-attempt clients, so each Connect maps to exactly one
  // admission decision.
  ClientOptions one_shot;
  one_shot.max_connect_attempts = 1;
  auto c1 = Client::Connect("127.0.0.1", *port, one_shot);
  auto c2 = Client::Connect("127.0.0.1", *port, one_shot);
  ASSERT_TRUE(c1.ok() && c2.ok());
  // Both slots busy: the third connection is refused at the handshake.
  auto c3 = Client::Connect("127.0.0.1", *port, one_shot);
  ASSERT_FALSE(c3.ok());
  EXPECT_TRUE(c3.status().IsResourceExhausted()) << c3.status().ToString();
  EXPECT_EQ(small.sessions_rejected(), 1);

  // Freeing a slot re-admits.
  (*c1)->Close();
  auto c4 = Result<std::unique_ptr<Client>>(Status::Unavailable("retry"));
  for (int attempt = 0; attempt < 100 && !c4.ok(); ++attempt) {
    c4 = Client::Connect("127.0.0.1", *port, one_shot);
    if (!c4.ok()) std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  ASSERT_TRUE(c4.ok()) << "slot never freed: " << c4.status().ToString();
  small.Stop();
}

TEST_F(ServerTest, AdmissionRejectionRetriesAutomaticallyWithBackoff) {
  // With retries left on (the default), a client bounced by admission
  // control keeps trying with backoff and gets in once a slot frees up —
  // no caller-side retry loop needed.
  ServerOptions options;
  options.max_sessions = 1;
  HistorianServer small(odh_->engine(), options);
  auto port = small.Start();
  ASSERT_TRUE(port.ok());

  auto keeper = Client::Connect("127.0.0.1", *port);
  ASSERT_TRUE(keeper.ok());
  std::thread releaser([&keeper] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    (*keeper)->Close();
  });
  ClientOptions patient;
  patient.max_connect_attempts = 200;
  patient.initial_backoff_ms = 5;
  patient.max_backoff_ms = 20;
  auto late = Client::Connect("127.0.0.1", *port, patient);
  releaser.join();
  ASSERT_TRUE(late.ok()) << late.status().ToString();
  EXPECT_GE((*late)->stats().connect_attempts, 2);
  small.Stop();
}

TEST_F(ServerTest, RejectionCounterVisibleThroughOdhMetrics) {
  // The shared server wires its counters into the historian's metrics
  // registry, so rejections show up in SQL — queried over the same wire.
  ServerOptions options;
  options.max_sessions = 1;
  core::OdhSystem tiny;
  HistorianServer server(tiny.engine(), options, tiny.metrics());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  ClientOptions one_shot;
  one_shot.max_connect_attempts = 1;
  auto keeper = Client::Connect("127.0.0.1", *port, one_shot);
  ASSERT_TRUE(keeper.ok());
  auto refused = Client::Connect("127.0.0.1", *port, one_shot);
  ASSERT_FALSE(refused.ok());

  auto metrics = (*keeper)->Query(
      "SELECT value FROM odh_metrics WHERE name = 'net.sessions_rejected'");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(metrics->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(metrics->rows[0][0].double_value(), 1.0);
  server.Stop();
}

TEST_F(ServerTest, MemoryPressureGatesAdmission) {
  // The memory admission gate: while the engine's reserved bytes sit at
  // or above the gate, new sessions are turned away with a retryable
  // kMemoryPressure rejection and re-admitted once pressure drains.
  core::OdhSystem tiny;
  ServerOptions options;
  options.memory_gate_bytes = 1 << 20;
  HistorianServer server(tiny.engine(), options, tiny.metrics());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Saturate the process tracker, as a storm of buffered queries would.
  common::MemoryTracker* root = tiny.engine()->memory_root();
  ASSERT_TRUE(root->TryReserve(1 << 20).ok());

  ClientOptions one_shot;
  one_shot.max_connect_attempts = 1;
  auto refused = Client::Connect("127.0.0.1", *port, one_shot);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();
  EXPECT_EQ(server.mem_rejections(), 1);
  EXPECT_EQ(server.sessions_rejected(), 1);

  // Retryable by contract: a patient client with backoff rides out the
  // pressure and gets in the moment it drains.
  std::thread releaser([root] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    root->Release(1 << 20);
  });
  ClientOptions patient;
  patient.max_connect_attempts = 200;
  patient.initial_backoff_ms = 5;
  patient.max_backoff_ms = 20;
  auto late = Client::Connect("127.0.0.1", *port, patient);
  releaser.join();
  ASSERT_TRUE(late.ok()) << late.status().ToString();

  // The admitted session works, and the gate's counter is SQL-visible.
  auto metrics = (*late)->Query(
      "SELECT value FROM odh_metrics WHERE name = 'net.mem_rejections'");
  ASSERT_TRUE(metrics.ok()) << metrics.status().ToString();
  ASSERT_EQ(metrics->rows.size(), 1u);
  EXPECT_GE(metrics->rows[0][0].double_value(), 1.0);
  server.Stop();
}

// Satellite: admission rejection must be machine-readable — the client
// classifies by the RejectCode in the frame, never by the reason text.
TEST_F(ServerTest, RejectionCodeIsMachineReadableNotMessageText) {
  ServerOptions options;
  options.max_sessions = 1;
  HistorianServer small(odh_->engine(), options);
  auto port = small.Start();
  ASSERT_TRUE(port.ok());

  ClientOptions one_shot;
  one_shot.max_connect_attempts = 1;
  auto keeper = Client::Connect("127.0.0.1", *port, one_shot);
  ASSERT_TRUE(keeper.ok());

  // Raw-socket handshake, so we can see the Rejected frame itself.
  auto fd = ConnectWithDeadline("127.0.0.1", *port,
                                common::Deadline::AfterMillis(2000));
  ASSERT_TRUE(fd.ok());
  Transport raw(*fd);
  ASSERT_TRUE(raw.SendFrame(FrameType::kHello,
                            Slice(EncodeHello(kProtocolVersion)),
                            common::Deadline::AfterMillis(2000))
                  .ok());
  Frame reply;
  auto got = raw.ReadFrame(&reply, common::Deadline::AfterMillis(2000));
  ASSERT_TRUE(got.ok() && got.value());
  ASSERT_EQ(reply.type, FrameType::kRejected);
  RejectCode code = RejectCode::kUnknown;
  std::string reason;
  ASSERT_TRUE(DecodeRejected(Slice(reply.payload), &code, &reason));
  EXPECT_EQ(code, RejectCode::kTooManySessions);

  // And the client maps that code to a retryable ResourceExhausted.
  auto refused = Client::Connect("127.0.0.1", *port, one_shot);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(refused.status().IsResourceExhausted())
      << refused.status().ToString();
  EXPECT_TRUE(Client::IsRetryable(refused.status()));
  small.Stop();
}

TEST_F(ServerTest, VersionSkewIsRejectedAsPermanent) {
  auto fd = ConnectWithDeadline("127.0.0.1", port_,
                                common::Deadline::AfterMillis(2000));
  ASSERT_TRUE(fd.ok());
  Transport raw(*fd);
  ASSERT_TRUE(raw.SendFrame(FrameType::kHello, Slice(EncodeHello(999)),
                            common::Deadline::AfterMillis(2000))
                  .ok());
  Frame reply;
  auto got = raw.ReadFrame(&reply, common::Deadline::AfterMillis(2000));
  ASSERT_TRUE(got.ok() && got.value());
  ASSERT_EQ(reply.type, FrameType::kRejected);
  RejectCode code = RejectCode::kUnknown;
  std::string reason;
  ASSERT_TRUE(DecodeRejected(Slice(reply.payload), &code, &reason));
  EXPECT_EQ(code, RejectCode::kIncompatibleVersion);
  // Version skew can never succeed on retry: clients must not back off
  // and hammer a server that will never speak their dialect.
  EXPECT_FALSE(Client::IsRetryable(Status::FailedPrecondition(reason)));
}

// Satellite: HistorianServer lifecycle edges — every combination of
// Stop/Drain/destructor must be safe and idempotent.

TEST(ServerLifecycleTest, StopBeforeStartIsSafe) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  server.Stop();  // Never started: must not crash or hang.
  server.Stop();  // And again.
}

TEST(ServerLifecycleTest, DoubleStopIsIdempotent) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  server.Stop();  // Second Stop: no double-join, no double-close.
}

TEST(ServerLifecycleTest, ConcurrentStopsDoNotRace) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  std::vector<std::thread> stoppers;
  for (int i = 0; i < 4; ++i) {
    stoppers.emplace_back([&server] { server.Stop(); });
  }
  for (std::thread& t : stoppers) t.join();
}

TEST(ServerLifecycleTest, StartAfterStopFails) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  server.Stop();
  auto again = server.Start();
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsFailedPrecondition());
}

TEST(ServerLifecycleTest, DoubleStartFails) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  auto again = server.Start();
  ASSERT_FALSE(again.ok());
  EXPECT_TRUE(again.status().IsFailedPrecondition());
}

TEST(ServerLifecycleTest, DestructorWithLiveSessionsIsSafe) {
  core::OdhSystem odh;
  int port = 0;
  std::unique_ptr<Client> c1, c2;
  {
    auto server =
        std::make_unique<HistorianServer>(odh.engine(), ServerOptions{});
    auto started = server->Start();
    ASSERT_TRUE(started.ok());
    port = *started;
    auto r1 = Client::Connect("127.0.0.1", port);
    auto r2 = Client::Connect("127.0.0.1", port);
    ASSERT_TRUE(r1.ok() && r2.ok());
    c1 = std::move(*r1);
    c2 = std::move(*r2);
    // Destructor runs Stop() with both sessions still open.
  }
  // The orphaned clients see a dead connection, not a hang.
  ClientOptions no_retry;
  no_retry.auto_retry = false;
  auto r = c1->Query("SELECT 1");
  EXPECT_FALSE(r.ok());
}

TEST(ServerLifecycleTest, IllegalTransitionsAreErrors) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  EXPECT_EQ(server.state(), ServerState::kCreated);
  // Drain before Start: illegal (the old API silently no-opped here).
  EXPECT_TRUE(server.Drain(100).IsFailedPrecondition());
  ASSERT_TRUE(server.Start().ok());
  EXPECT_EQ(server.state(), ServerState::kRunning);
  // Second Start on a running server is illegal.
  EXPECT_TRUE(server.Start().status().IsFailedPrecondition());
  // Drain while running is legal, and so is re-draining.
  EXPECT_TRUE(server.Drain(100).ok());
  EXPECT_EQ(server.state(), ServerState::kDraining);
  EXPECT_TRUE(server.Drain(100).ok());
  server.Stop();
  EXPECT_EQ(server.state(), ServerState::kStopped);
  // Drain after Stop: illegal. Restarting a stopped server: also illegal
  // (construct a new one instead).
  EXPECT_TRUE(server.Drain(100).IsFailedPrecondition());
  EXPECT_TRUE(server.Start().status().IsFailedPrecondition());
}

// Satellite: a connected-but-silent peer (slow loris) must not pin its
// session slot past the read deadline.
TEST(ServerLifecycleTest, SilentPeerIsReapedByReadDeadline) {
  core::OdhSystem odh;
  ServerOptions options;
  options.max_sessions = 2;
  options.handshake_deadline_ms = 100;
  HistorianServer server(odh.engine(), options, odh.metrics());
  auto port = server.Start();
  ASSERT_TRUE(port.ok());

  // Connect raw and say nothing: the handshake deadline must reap it.
  auto fd = ConnectWithDeadline("127.0.0.1", *port,
                                common::Deadline::AfterMillis(2000));
  ASSERT_TRUE(fd.ok());
  Transport silent(*fd);
  for (int wait = 0; wait < 500 && server.read_timeouts() == 0; ++wait) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.read_timeouts(), 1);
  for (int wait = 0; wait < 500 && server.sessions_open() != 0; ++wait) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_EQ(server.sessions_open(), 0) << "silent peer pinned its slot";
  server.Stop();
}


// Satellite: the RetryPolicy value object and the deprecated loose-field
// shim. One knob, folded deterministically; `retry` wins wholesale.

TEST(RetryPolicyTest, LegacyLooseFieldsFoldIntoAnEquivalentPolicy) {
  ClientOptions legacy;
  legacy.connect_timeout_ms = 123;
  legacy.rpc_deadline_ms = 456;
  legacy.max_connect_attempts = 7;
  legacy.max_statement_attempts = 5;
  legacy.initial_backoff_ms = 2;
  legacy.max_backoff_ms = 64;
  legacy.backoff_seed = 99;
  RetryPolicy p = legacy.EffectiveRetryPolicy();
  EXPECT_EQ(p.connect_timeout_ms, 123);
  EXPECT_EQ(p.rpc_deadline_ms, 456);
  EXPECT_EQ(p.max_connect_attempts, 7);
  EXPECT_EQ(p.max_statement_attempts, 5);
  EXPECT_EQ(p.initial_backoff_ms, 2);
  EXPECT_EQ(p.max_backoff_ms, 64);
  EXPECT_EQ(p.backoff_seed, 99u);
  EXPECT_EQ(p.idempotency, IdempotencyClass::kUnstartedOnly);

  legacy.auto_retry = false;
  EXPECT_EQ(legacy.EffectiveRetryPolicy().idempotency,
            IdempotencyClass::kNone);
  legacy.auto_retry = true;
  legacy.assume_idempotent = true;
  EXPECT_EQ(legacy.EffectiveRetryPolicy().idempotency,
            IdempotencyClass::kIdempotent);
}

TEST(RetryPolicyTest, ExplicitPolicyWinsOverLooseFields) {
  ClientOptions options;
  options.max_connect_attempts = 99;  // Loose field, to be ignored.
  RetryPolicy p;
  p.max_connect_attempts = 2;
  p.idempotency = IdempotencyClass::kNone;
  options.retry = p;
  EXPECT_EQ(options.EffectiveRetryPolicy().max_connect_attempts, 2);
  EXPECT_EQ(options.EffectiveRetryPolicy().idempotency,
            IdempotencyClass::kNone);
  // kNone means one attempt per statement, whatever the attempt knob says.
  RetryPolicy none = options.EffectiveRetryPolicy();
  none.max_statement_attempts = 5;
  EXPECT_EQ(none.StatementAttempts(), 1);
}

TEST(RetryPolicyTest, ClientRunsTheResolvedPolicy) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  ClientOptions options;
  options.rpc_deadline_ms = 2222;  // Legacy field, folded at Connect.
  auto client = Client::Connect("127.0.0.1", *port, options);
  ASSERT_TRUE(client.ok());
  EXPECT_EQ((*client)->retry_policy().rpc_deadline_ms, 2222);
  server.Stop();
}

// Satellite: ClientStats lifetime semantics — counters survive Close()
// and only ResetStats() zeroes them.
TEST(ClientStatsTest, StatsSurviveCloseAndResetExplicitly) {
  core::OdhSystem odh;
  HistorianServer server(odh.engine(), ServerOptions{});
  auto port = server.Start();
  ASSERT_TRUE(port.ok());
  auto client = Client::Connect("127.0.0.1", *port);
  ASSERT_TRUE(client.ok());
  EXPECT_GE((*client)->stats().connect_attempts, 1);
  (*client)->Close();
  EXPECT_GE((*client)->stats().connect_attempts, 1)
      << "Close() must not reset stats";
  (*client)->ResetStats();
  EXPECT_EQ((*client)->stats().connect_attempts, 0);
  EXPECT_EQ((*client)->stats().reconnects, 0);
  server.Stop();
}

}  // namespace
}  // namespace odh::net
