// Chaos suite: scripted, deterministically seeded network fault schedules
// against a live server over loopback TCP. Each test is one schedule from
// the fault-tolerance contract:
//
//   1. transient connect failures  -> client retries with backoff
//   2. mid-frame disconnect        -> stream poisons; reconnect recovers
//   3. server stall > rpc deadline -> timeout, retry on fresh connection
//   4. drain during active streams -> in-flight statements finish
//   5. seeded rate faults under writes -> zero acknowledged-write loss
//   6. corrupted frame             -> rejected as hostile, then retried
//
// The invariants: no test hangs (every blocking call has a deadline), no
// acknowledged write is lost or duplicated, and a recovered client sees
// exactly the single-threaded ground truth.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "net/client.h"
#include "net/fault.h"
#include "net/server.h"
#include "sql/session.h"

namespace odh::net {
namespace {

constexpr int kPoints = 120;

/// Fresh historian + server per test: fault policies count operations over
/// their lifetime, so sharing a server across tests would make every
/// schedule depend on the tests that ran before it.
class ChaosTest : public ::testing::Test {
 protected:
  void StartServer(ServerOptions options = {}) {
    odh_ = std::make_unique<core::OdhSystem>();
    int type = odh_->DefineSchemaType("env", {"temperature"}).value();
    ODH_CHECK_OK(
        odh_->RegisterSource(1, type, kMicrosPerSecond, /*regular=*/true));
    for (int i = 0; i < kPoints; ++i) {
      ODH_CHECK_OK(odh_->Ingest({1, i * kMicrosPerSecond, {20.0 + 0.01 * i}}));
    }
    ODH_CHECK_OK(odh_->FlushAll());
    server_ = std::make_unique<HistorianServer>(odh_->engine(), options,
                                                odh_->metrics());
    auto port = server_->Start();
    ODH_CHECK_OK(port.status());
    port_ = *port;
  }

  void TearDown() override {
    if (server_) server_->Stop();
  }

  /// A server-side fault policy must outlive the server: session handlers
  /// consult it until Stop() joins the workers in TearDown, long after a
  /// test-body local would have died. The fixture owns it (destroyed
  /// after server_, which is declared later).
  FaultPolicy* MakeServerFaults(uint64_t seed) {
    faults_ = std::make_unique<FaultPolicy>(seed);
    return faults_.get();
  }

  /// Ground truth through a local (non-network) session.
  std::vector<Row> Truth(const std::string& sql) {
    sql::Session local(odh_->engine());
    auto r = local.Execute(sql);
    ODH_CHECK_OK(r.status());
    return r->rows;
  }

  std::unique_ptr<core::OdhSystem> odh_;
  std::unique_ptr<FaultPolicy> faults_;
  std::unique_ptr<HistorianServer> server_;
  int port_ = 0;
};

// Schedule 1: the first two TCP connects fail transiently. The client must
// absorb them with backoff and connect on the third attempt — and the
// retry schedule must be replayable from the seed.
TEST_F(ChaosTest, TransientConnectFailuresAreRetriedWithBackoff) {
  StartServer();

  FaultPolicy faults(/*seed=*/1);
  faults.FailNthConnect(1);
  faults.FailNthConnect(2);

  ClientOptions opts;
  opts.fault_policy = &faults;
  opts.initial_backoff_ms = 1;
  opts.max_backoff_ms = 8;
  opts.backoff_seed = 7;
  auto client = Client::Connect("127.0.0.1", port_, opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ((*client)->stats().connect_attempts, 3);

  auto r = (*client)->Query("SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], Datum::Int64(kPoints));

  // A client that only gets one attempt sees the injected failure raw,
  // and it is classified retryable — not mistaken for a SQL error.
  FaultPolicy once(/*seed=*/1);
  once.FailNthConnect(1);
  ClientOptions one_shot;
  one_shot.fault_policy = &once;
  one_shot.max_connect_attempts = 1;
  auto refused = Client::Connect("127.0.0.1", port_, one_shot);
  ASSERT_FALSE(refused.ok());
  EXPECT_TRUE(Client::IsRetryable(refused.status()))
      << refused.status().ToString();
}

// Schedule 2: the server hangs up mid-frame while streaming rows. The
// client-side cursor must poison (same error on every further Next — a
// partially consumed stream is never resumed or silently restarted), and a
// reconnect must then see the full, correct result.
TEST_F(ChaosTest, MidFrameDisconnectPoisonsStreamThenReconnectRecovers) {
  FaultPolicy* server_faults = MakeServerFaults(/*seed=*/2);
  // Server writes: 1 Welcome, 2 ResultHeader, 3 first batch, 4 second
  // batch — which is cut mid-frame (roughly half the bytes delivered).
  server_faults->DisconnectAtNthWrite(4);

  ServerOptions options;
  options.rows_per_batch = 10;
  options.fault_policy = server_faults;
  StartServer(options);

  const std::string sql = "SELECT ts, temperature FROM env_v WHERE id = 1";
  std::vector<Row> truth = Truth(sql);

  auto client = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stream = (*client)->QueryStream(sql);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  // The first batch arrives intact; somewhere after it the wire dies.
  Row row;
  int delivered = 0;
  Status poison;
  while (true) {
    auto more = (*stream)->Next(&row);
    if (!more.ok()) {
      poison = more.status();
      break;
    }
    ASSERT_TRUE(*more) << "stream ended cleanly despite the disconnect";
    ASSERT_LT(delivered, static_cast<int>(truth.size()));
    EXPECT_EQ(row, truth[delivered]);  // Rows before the fault are intact.
    ++delivered;
  }
  EXPECT_GT(delivered, 0);
  EXPECT_LT(delivered, static_cast<int>(truth.size()));
  EXPECT_TRUE(poison.IsIoError()) << poison.ToString();

  // Poison contract over the network path: every further Next repeats the
  // same error — never a retry, never fabricated rows.
  for (int i = 0; i < 3; ++i) {
    auto again = (*stream)->Next(&row);
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(again.status().ToString(), poison.ToString());
  }
  (*stream).reset();

  // Recovery: a fresh connection re-runs the statement from scratch and
  // the streamed result matches the materialized ground truth exactly.
  auto fresh = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(fresh.ok()) << fresh.status().ToString();
  auto replay = (*fresh)->Query(sql);
  ASSERT_TRUE(replay.ok()) << replay.status().ToString();
  EXPECT_EQ(replay->rows, truth);
}

// Schedule 3: the server freezes longer than the client's RPC deadline.
// The client must time out (not hang), classify the lapse as retryable,
// and — because the workload is declared idempotent — succeed on a fresh
// connection.
TEST_F(ChaosTest, ServerStallBeyondDeadlineTimesOutThenRetrySucceeds) {
  FaultPolicy* server_faults = MakeServerFaults(/*seed=*/3);
  // Server writes: 1 Welcome, 2 ResultHeader of the first statement —
  // stalled well past the client's deadline.
  server_faults->StallNthWrite(2, 400);

  ServerOptions options;
  options.fault_policy = server_faults;
  StartServer(options);

  ClientOptions opts;
  opts.rpc_deadline_ms = 100;
  opts.assume_idempotent = true;  // Read-only workload: retry after send.
  opts.initial_backoff_ms = 1;
  opts.max_backoff_ms = 8;
  auto client = Client::Connect("127.0.0.1", port_, opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto r = (*client)->Query("SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], Datum::Int64(kPoints));

  const ClientStats& stats = (*client)->stats();
  EXPECT_GE(stats.deadline_timeouts, 1);
  EXPECT_GE(stats.statement_retries, 1);
  EXPECT_GE(stats.reconnects, 1);

  // The stalled session must not pin its slot: once the stall elapses the
  // server notices the dead peer and frees it.
  for (int i = 0; i < 200 && server_->sessions_open() > 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_LE(server_->sessions_open(), 1);
}

// Schedule 4a: Drain() while a stream is mid-flight. The in-flight
// statement finishes (streamed == materialized), the session counts as
// gracefully drained, and new connections are refused.
TEST_F(ChaosTest, DrainLetsActiveStreamsFinish) {
  FaultPolicy* server_faults = MakeServerFaults(/*seed=*/4);
  // Hold the server demonstrably inside the statement: writes 1 Welcome,
  // 2 ResultHeader, 3 first batch, 4 second batch stalled 400ms — the
  // drain below starts inside that window.
  server_faults->StallNthWrite(4, 400);

  ServerOptions options;
  options.rows_per_batch = 10;
  options.fault_policy = server_faults;
  StartServer(options);

  const std::string sql = "SELECT ts, temperature FROM env_v WHERE id = 1";
  std::vector<Row> truth = Truth(sql);

  ClientOptions opts;
  opts.rpc_deadline_ms = 5000;  // Must ride out the injected stall.
  auto client = Client::Connect("127.0.0.1", port_, opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stream = (*client)->QueryStream(sql);
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  // First row in hand proves the server is inside the statement.
  Row row;
  auto first = (*stream)->Next(&row);
  ASSERT_TRUE(first.ok() && *first);
  std::vector<Row> streamed = {row};

  std::thread drainer(
      [&] { ASSERT_TRUE(server_->Drain(/*timeout_ms=*/5000).ok()); });
  while (true) {
    auto more = (*stream)->Next(&row);
    ASSERT_TRUE(more.ok()) << "drain cut an in-flight stream: "
                           << more.status().ToString();
    if (!*more) break;
    streamed.push_back(row);
  }
  drainer.join();

  EXPECT_EQ(streamed, truth);
  EXPECT_EQ(server_->drained_sessions(), 1);
  EXPECT_EQ(server_->sessions_force_closed(), 0);

  // A draining server takes no new work.
  ClientOptions one_shot;
  one_shot.max_connect_attempts = 1;
  auto late = Client::Connect("127.0.0.1", port_, one_shot);
  EXPECT_FALSE(late.ok());
}

// Schedule 4b: a session still streaming when the drain budget lapses is
// force-closed, not waited on forever.
TEST_F(ChaosTest, DrainForceClosesStragglersAfterBudget) {
  FaultPolicy* server_faults = MakeServerFaults(/*seed=*/5);
  // The first batch write stalls for 800ms — far past the drain budget.
  server_faults->StallNthWrite(3, 800);

  ServerOptions options;
  options.rows_per_batch = 10;
  options.fault_policy = server_faults;
  StartServer(options);

  ClientOptions opts;
  opts.rpc_deadline_ms = 5000;
  opts.max_statement_attempts = 1;
  auto client = Client::Connect("127.0.0.1", port_, opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  auto stream =
      (*client)->QueryStream("SELECT ts, temperature FROM env_v WHERE id = 1");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();

  ASSERT_TRUE(server_->Drain(/*timeout_ms=*/100).ok());
  EXPECT_EQ(server_->sessions_force_closed(), 1);
  EXPECT_EQ(server_->drained_sessions(), 0);

  // The client's half of the cut stream errors and poisons.
  Row row;
  Status first_error;
  while (true) {
    auto more = (*stream)->Next(&row);
    if (!more.ok()) {
      first_error = more.status();
      break;
    }
    ASSERT_TRUE(*more) << "stream completed despite the force-close";
  }
  auto again = (*stream)->Next(&row);
  ASSERT_FALSE(again.ok());
  EXPECT_EQ(again.status().ToString(), first_error.ToString());

  // Drain surfaces its bookkeeping through the metrics registry.
  sql::Session local(odh_->engine());
  auto metric = local.Execute(
      "SELECT value FROM odh_metrics WHERE name = 'net.sessions_force_closed'");
  ASSERT_TRUE(metric.ok()) << metric.status().ToString();
  ASSERT_EQ(metric->rows.size(), 1u);
  EXPECT_DOUBLE_EQ(metric->rows[0][0].double_value(), 1.0);
}

// Schedule 5: seeded rate faults on the client's connects, reads and
// writes while it issues unique-value INSERTs. Errored statements are
// treated as unacknowledged and NOT resent (a lost reply is ambiguous).
// Invariant: every acknowledged write is present exactly once — the
// client's own retries (provably-unstarted sends only) must never
// duplicate a row.
TEST_F(ChaosTest, NoAcknowledgedWriteIsLostOrDuplicatedUnderRateFaults) {
  StartServer();
  {
    sql::Session ddl(odh_->engine());
    ODH_CHECK_OK(ddl.Execute("CREATE TABLE chaos_w (k BIGINT)").status());
  }

  FaultPolicy faults(/*seed=*/0xC0FFEE);
  faults.set_connect_fault_rate(0.05);
  faults.set_read_fault_rate(0.05);
  faults.set_write_fault_rate(0.15);

  ClientOptions opts;
  opts.fault_policy = &faults;
  opts.initial_backoff_ms = 1;
  opts.max_backoff_ms = 4;
  opts.backoff_seed = 11;
  auto client = Client::Connect("127.0.0.1", port_, opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  constexpr int kWrites = 200;
  std::set<int64_t> acked;
  for (int64_t k = 0; k < kWrites; ++k) {
    auto r = (*client)->Query("INSERT INTO chaos_w VALUES (?)",
                              {Datum::Int64(k)});
    if (r.ok()) acked.insert(k);
    // On error: k is unacknowledged — deliberately not resent. The row may
    // or may not exist (the reply could have been the lost half), which is
    // exactly why the client refused to retry it automatically.
  }
  ASSERT_GT(faults.faults_injected(), 0u) << "schedule never fired";
  ASSERT_GT(acked.size(), 0u) << "every write failed; rates too hot";

  // Audit through a clean client: each acknowledged key exactly once.
  auto clean = Client::Connect("127.0.0.1", port_);
  ASSERT_TRUE(clean.ok()) << clean.status().ToString();
  auto rows = (*clean)->Query("SELECT k FROM chaos_w ORDER BY k");
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  std::map<int64_t, int> present;
  for (const Row& row : rows->rows) ++present[row[0].int64_value()];
  for (int64_t k : acked) {
    EXPECT_EQ(present[k], 1) << "acked key " << k
                             << (present[k] == 0 ? " lost" : " duplicated");
  }
  for (const auto& [k, count] : present) {
    EXPECT_EQ(count, 1) << "key " << k << " inserted " << count << " times";
  }
}

// Schedule 6: one byte of a response frame is flipped in flight. The
// parser must reject the stream as hostile (never trust a corrupt frame),
// and an idempotent retry on a fresh connection succeeds.
TEST_F(ChaosTest, CorruptedFrameIsRejectedThenRetried) {
  StartServer();

  FaultPolicy faults(/*seed=*/6);
  // Client reads: 1 Welcome, 2 response to the first statement (corrupted).
  faults.CorruptNthRead(2);

  ClientOptions opts;
  opts.fault_policy = &faults;
  opts.assume_idempotent = true;
  // A flipped length prefix can leave the parser waiting for bytes that
  // will never come; the deadline converts that into a fast, retryable
  // failure instead of a hang.
  opts.rpc_deadline_ms = 300;
  opts.initial_backoff_ms = 1;
  opts.max_backoff_ms = 8;
  auto client = Client::Connect("127.0.0.1", port_, opts);
  ASSERT_TRUE(client.ok()) << client.status().ToString();

  auto r = (*client)->Query("SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows[0][0], Datum::Int64(kPoints));
  EXPECT_GE((*client)->stats().statement_retries, 1);
}

}  // namespace
}  // namespace odh::net
