#include <gtest/gtest.h>

#include <cmath>
#include <map>

#include "benchfw/ld_generator.h"
#include "benchfw/td_generator.h"

namespace odh::benchfw {
namespace {

TEST(TdGeneratorTest, ProducesExpectedVolumeAndShape) {
  TdConfig config;
  config.num_accounts = 50;
  config.per_account_hz = 20;
  config.duration_seconds = 2;
  TdGenerator gen(config);
  EXPECT_EQ(gen.info().expected_records, 2000);  // 50*20*2.
  EXPECT_DOUBLE_EQ(gen.info().offered_points_per_second, 1000.0);

  core::OperationalRecord record;
  int64_t count = 0;
  std::map<SourceId, Timestamp> last_ts;
  std::map<SourceId, int64_t> per_account;
  while (gen.Next(&record)) {
    ASSERT_EQ(record.tags.size(), 4u);
    for (double v : record.tags) EXPECT_FALSE(std::isnan(v));
    EXPECT_GT(record.tags[0], 0);  // Price positive.
    // Per-source timestamps non-decreasing (writer requirement).
    auto it = last_ts.find(record.id);
    if (it != last_ts.end()) {
      EXPECT_GE(record.ts, it->second);
    }
    last_ts[record.id] = record.ts;
    ++per_account[record.id];
    ++count;
  }
  EXPECT_EQ(count, 2000);
  EXPECT_EQ(per_account.size(), 50u);
  for (const auto& [id, n] : per_account) EXPECT_EQ(n, 40) << id;
}

TEST(TdGeneratorTest, TimestampsAreIrregular) {
  TdGenerator gen(TdConfig::Of(1, 1, /*account_unit=*/10,
                               /*duration_seconds=*/2));
  core::OperationalRecord record;
  std::vector<Timestamp> ts_of_first;
  while (gen.Next(&record)) {
    if (record.id == gen.info().first_source_id) {
      ts_of_first.push_back(record.ts);
    }
  }
  ASSERT_GT(ts_of_first.size(), 3u);
  std::set<Timestamp> deltas;
  for (size_t i = 1; i < ts_of_first.size(); ++i) {
    deltas.insert(ts_of_first[i] - ts_of_first[i - 1]);
  }
  EXPECT_GT(deltas.size(), 1u);  // Jitter means varying intervals.
}

TEST(TdGeneratorTest, ResetReproducesIdenticalStream) {
  TdGenerator gen(TdConfig::Of(1, 1, 10, 1));
  core::OperationalRecord a, b;
  std::vector<std::pair<SourceId, Timestamp>> first_run;
  while (gen.Next(&a)) first_run.emplace_back(a.id, a.ts);
  gen.Reset();
  size_t i = 0;
  while (gen.Next(&b)) {
    ASSERT_LT(i, first_run.size());
    EXPECT_EQ(first_run[i].first, b.id);
    EXPECT_EQ(first_run[i].second, b.ts);
    ++i;
  }
  EXPECT_EQ(i, first_run.size());
}

TEST(TdGeneratorTest, RelationalSideCardinalities) {
  TdGenerator gen(TdConfig::Of(1, 1, /*account_unit=*/1000, 1));
  auto customers = gen.Customers();
  auto accounts = gen.Accounts();
  EXPECT_EQ(accounts.size(), 1000u);
  EXPECT_EQ(customers.size(), 200u);  // Paper: 1000 accounts = 200 customers.
  for (const TdAccount& a : accounts) {
    EXPECT_GE(a.customer_id, 1);
    EXPECT_LE(a.customer_id, static_cast<int64_t>(customers.size()));
  }
}

TEST(LdGeneratorTest, SparseSchemaAndVolume) {
  LdConfig config;
  config.num_sensors = 100;
  config.mean_interval = 10 * kMicrosPerSecond;
  config.duration_seconds = 50;
  LdGenerator gen(config);
  EXPECT_EQ(gen.info().expected_records, 500);  // 100 sensors / 10s * 50s.
  EXPECT_EQ(gen.info().tag_names.size(), 17u);

  core::OperationalRecord record;
  int64_t present = 0, total = 0;
  std::map<SourceId, Timestamp> last_ts;
  while (gen.Next(&record)) {
    ASSERT_EQ(record.tags.size(), 17u);
    // First 4 attributes always measured.
    for (int t = 0; t < 4; ++t) EXPECT_FALSE(std::isnan(record.tags[t]));
    for (double v : record.tags) {
      ++total;
      if (!std::isnan(v)) ++present;
    }
    auto it = last_ts.find(record.id);
    if (it != last_ts.end()) {
      EXPECT_GE(record.ts, it->second);
    }
    last_ts[record.id] = record.ts;
  }
  // Sparsity: roughly 4 + 40% of 13 ~ 9 of 17 present.
  double fraction = static_cast<double>(present) / total;
  EXPECT_GT(fraction, 0.3);
  EXPECT_LT(fraction, 0.8);
}

TEST(LdGeneratorTest, SensorAttributeSubsetIsStable) {
  LdGenerator gen(LdConfig::Of(1, /*sensor_unit=*/10, 1));
  for (SourceId id = 1; id <= 10; ++id) {
    for (int t = 0; t < 17; ++t) {
      EXPECT_EQ(gen.SensorMeasures(id, t), gen.SensorMeasures(id, t));
    }
  }
}

TEST(LdGeneratorTest, ValuesAreSmoothPerSensor) {
  // Smoothness is what makes the paper's linear compression effective:
  // consecutive readings of one sensor differ much less than the range.
  LdConfig config;
  config.num_sensors = 1;
  config.mean_interval = 10 * kMicrosPerSecond;
  config.duration_seconds = 1000;
  LdGenerator gen(config);
  core::OperationalRecord record;
  std::vector<double> temps;
  while (gen.Next(&record)) temps.push_back(record.tags[1]);
  ASSERT_GT(temps.size(), 50u);
  double min = temps[0], max = temps[0], step_sum = 0;
  for (size_t i = 1; i < temps.size(); ++i) {
    min = std::min(min, temps[i]);
    max = std::max(max, temps[i]);
    step_sum += std::fabs(temps[i] - temps[i - 1]);
  }
  double mean_step = step_sum / (temps.size() - 1);
  EXPECT_LT(mean_step, (max - min) * 0.2);
}

TEST(LdGeneratorTest, RelationalSideMatchesSensorCount) {
  LdGenerator gen(LdConfig::Of(1, 50, 1));
  auto sensors = gen.Sensors();
  EXPECT_EQ(sensors.size(), 50u);
  for (const LdSensor& s : sensors) {
    EXPECT_GE(s.latitude, 25.0);
    EXPECT_LE(s.latitude, 50.0);
    EXPECT_GE(s.longitude, -125.0);
    EXPECT_LE(s.longitude, -65.0);
    EXPECT_EQ(s.name, "A" + std::to_string(s.id));
  }
}

TEST(LdGeneratorTest, TagCountConfigurable) {
  LdConfig config;
  config.num_sensors = 5;
  config.num_tags = 3;
  config.duration_seconds = 60;
  LdGenerator gen(config);
  core::OperationalRecord record;
  ASSERT_TRUE(gen.Next(&record));
  EXPECT_EQ(record.tags.size(), 3u);
  EXPECT_EQ(gen.info().tag_names.size(), 3u);
}

}  // namespace
}  // namespace odh::benchfw
