#include "benchfw/csv.h"

#include <gtest/gtest.h>

#include <unistd.h>

#include <cmath>
#include <cstdio>

#include "benchfw/runner.h"
#include "benchfw/ld_generator.h"
#include "benchfw/td_generator.h"
#include "common/logging.h"

namespace odh::benchfw {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  CsvTest() {
    // Keyed by test name AND pid: ctest runs each case as its own process,
    // and address-based names can collide across processes (allocator
    // layout is near-deterministic, especially under sanitizers).
    const auto* info = ::testing::UnitTest::GetInstance()->current_test_info();
    path_ = ::testing::TempDir() + "/odh_csv_" + info->name() + "_" +
            std::to_string(static_cast<long>(::getpid())) + ".csv";
  }
  ~CsvTest() override { std::remove(path_.c_str()); }

  std::string path_;
};

TdConfig SmallTd() {
  TdConfig config;
  config.num_accounts = 10;
  config.per_account_hz = 20;
  config.duration_seconds = 2;
  return config;
}

TEST_F(CsvTest, RoundTripPreservesEveryRecord) {
  TdGenerator original(SmallTd());
  ASSERT_TRUE(WriteCsv(&original, path_).ok());

  auto csv = CsvRecordStream::Open(path_, StreamInfo{});
  ASSERT_TRUE(csv.ok()) << csv.status().ToString();
  EXPECT_EQ((*csv)->info().expected_records,
            original.info().expected_records);
  EXPECT_EQ((*csv)->info().num_sources, original.info().num_sources);
  EXPECT_EQ((*csv)->info().tag_names, original.info().tag_names);

  original.Reset();
  core::OperationalRecord a, b;
  int64_t count = 0;
  while (original.Next(&a)) {
    ASSERT_TRUE((*csv)->Next(&b)) << count;
    EXPECT_EQ(a.id, b.id);
    EXPECT_EQ(a.ts, b.ts);
    ASSERT_EQ(a.tags.size(), b.tags.size());
    for (size_t t = 0; t < a.tags.size(); ++t) {
      EXPECT_DOUBLE_EQ(a.tags[t], b.tags[t]);
    }
    ++count;
  }
  EXPECT_FALSE((*csv)->Next(&b));
  EXPECT_EQ(count, original.info().expected_records);
}

TEST_F(CsvTest, MissingTagsRoundTripAsNaN) {
  LdConfig config;
  config.num_sensors = 5;
  config.mean_interval = kMicrosPerSecond;
  config.duration_seconds = 10;
  LdGenerator original(config);
  ASSERT_TRUE(WriteCsv(&original, path_).ok());
  auto csv = CsvRecordStream::Open(path_, StreamInfo{});
  ASSERT_TRUE(csv.ok());
  original.Reset();
  core::OperationalRecord a, b;
  bool saw_nan = false;
  while (original.Next(&a)) {
    ASSERT_TRUE((*csv)->Next(&b));
    for (size_t t = 0; t < a.tags.size(); ++t) {
      EXPECT_EQ(std::isnan(a.tags[t]), std::isnan(b.tags[t]));
      if (std::isnan(b.tags[t])) saw_nan = true;
    }
  }
  EXPECT_TRUE(saw_nan);
}

TEST_F(CsvTest, ResetRestartsTheStream) {
  TdGenerator original(SmallTd());
  ASSERT_TRUE(WriteCsv(&original, path_).ok());
  auto csv = CsvRecordStream::Open(path_, StreamInfo{}).value();
  core::OperationalRecord first, again;
  ASSERT_TRUE(csv->Next(&first));
  csv->Reset();
  ASSERT_TRUE(csv->Next(&again));
  EXPECT_EQ(first.id, again.id);
  EXPECT_EQ(first.ts, again.ts);
}

TEST_F(CsvTest, CsvStreamDrivesIngestLikeTheSimulator) {
  // The paper's WS1 pipeline: generator -> CSV -> simulator -> system.
  {
    TdGenerator original(SmallTd());
    ASSERT_TRUE(WriteCsv(&original, path_).ok());
  }
  StreamInfo info_template;
  info_template.name = "TD";
  info_template.sample_interval = 50000;
  info_template.regular = false;
  auto csv = CsvRecordStream::Open(path_, info_template).value();
  OdhTarget target;
  ODH_CHECK_OK(target.Setup(csv->info()));
  auto metrics = RunIngest(csv.get(), &target);
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(metrics->points, 400);  // 10 accounts * 20 Hz * 2 s.
  auto r = target.odh()->engine()->Execute("SELECT COUNT(*) FROM TD_v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(400));
}

TEST_F(CsvTest, OpenRejectsMalformedFiles) {
  {
    FILE* f = fopen(path_.c_str(), "w");
    fputs("not,a,valid,header\n1,2,3,4\n", f);
    fclose(f);
  }
  EXPECT_FALSE(CsvRecordStream::Open(path_, StreamInfo{}).ok());
  EXPECT_FALSE(CsvRecordStream::Open("/nonexistent/x.csv", StreamInfo{})
                   .ok());
  {
    FILE* f = fopen(path_.c_str(), "w");
    fputs("id,ts,a\n1,100,2.5\n7,200\n", f);  // Ragged second row.
    fclose(f);
  }
  EXPECT_FALSE(CsvRecordStream::Open(path_, StreamInfo{}).ok());
}

}  // namespace
}  // namespace odh::benchfw
