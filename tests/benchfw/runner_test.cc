#include "benchfw/runner.h"

#include <gtest/gtest.h>

#include "benchfw/dataset.h"
#include "common/logging.h"

namespace odh::benchfw {
namespace {

TdConfig SmallTd() {
  TdConfig config;
  config.num_accounts = 20;
  config.per_account_hz = 20;
  config.duration_seconds = 2;
  return config;
}

TEST(RunnerTest, IngestIntoOdhTargetProcessesWholeStream) {
  TdGenerator stream(SmallTd());
  OdhTarget target;
  ODH_CHECK_OK(target.Setup(stream.info()));
  IngestMetrics metrics = RunIngest(&stream, &target).value();
  EXPECT_EQ(metrics.points, stream.info().expected_records);
  EXPECT_GT(metrics.Throughput(), 0);
  EXPECT_GT(metrics.storage_bytes, 0u);
  EXPECT_GT(metrics.AvgCpuLoad(), 0);
  EXPECT_GE(metrics.MaxCpuLoad(), metrics.AvgCpuLoad() * 0.1);
  // The data must actually be queryable afterwards.
  auto r = target.odh()->engine()->Execute("SELECT COUNT(*) FROM TD_v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(stream.info().expected_records));
}

TEST(RunnerTest, IngestIntoRelationalTargets) {
  TdGenerator stream(SmallTd());
  RelationalTarget rdb(relational::EngineProfile::Rdb(), 1000);
  ODH_CHECK_OK(rdb.Setup(stream.info()));
  IngestMetrics metrics = RunIngest(&stream, &rdb).value();
  EXPECT_EQ(metrics.points, stream.info().expected_records);
  EXPECT_EQ(rdb.table()->row_count(), stream.info().expected_records);
  EXPECT_GT(rdb.StorageBytes(), 0u);
}

TEST(RunnerTest, OdhStoresSmallerAndFasterThanAutocommitRdb) {
  TdGenerator stream_a(SmallTd());
  OdhTarget odh;
  ODH_CHECK_OK(odh.Setup(stream_a.info()));
  IngestMetrics odh_metrics = RunIngest(&stream_a, &odh).value();

  TdGenerator stream_b(SmallTd());
  RelationalTarget rdb(relational::EngineProfile::Rdb(), /*batch_size=*/1);
  ODH_CHECK_OK(rdb.Setup(stream_b.info()));
  IngestMetrics rdb_metrics = RunIngest(&stream_b, &rdb).value();

  EXPECT_LT(odh_metrics.storage_bytes, rdb_metrics.storage_bytes);
  EXPECT_GT(odh_metrics.Throughput(), rdb_metrics.Throughput());
}

TEST(RunnerTest, WallTimeLimitTruncatesRun) {
  TdConfig config = SmallTd();
  config.duration_seconds = 3600;  // Would take a while.
  TdGenerator stream(config);
  RelationalTarget mysql(relational::EngineProfile::MySql(), 1);
  ODH_CHECK_OK(mysql.Setup(stream.info()));
  IngestRunOptions options;
  options.wall_time_limit_seconds = 0.2;
  IngestMetrics metrics = RunIngest(&stream, &mysql, options).value();
  EXPECT_LT(metrics.points, stream.info().expected_records);
  EXPECT_GT(metrics.points, 0);
}

TEST(RunnerTest, QueryWorkloadCountsDataPoints) {
  TdGenerator stream(SmallTd());
  OdhTarget target;
  ODH_CHECK_OK(target.Setup(stream.info()));
  RunIngest(&stream, &target).value();
  ODH_CHECK_OK(
      LoadTdRelational(TdGenerator(SmallTd()), target.odh()->database()));

  QueryMetrics metrics =
      RunQueryWorkload(target.odh()->engine(), 5, [&](int i) {
        return "SELECT * FROM TD_v WHERE id = " + std::to_string(1 + i);
      }).value();
  EXPECT_EQ(metrics.queries, 5);
  // Each account traded 40 times with 6 non-NULL columns (id, ts, 4 tags).
  EXPECT_EQ(metrics.data_points, 5 * 40 * 6);
  EXPECT_GT(metrics.DataPointsPerSecond(), 0);
}

TEST(RunnerTest, FusedQueryOverLoadedDatasets) {
  TdGenerator stream(SmallTd());
  OdhTarget target;
  ODH_CHECK_OK(target.Setup(stream.info()));
  RunIngest(&stream, &target).value();
  ODH_CHECK_OK(
      LoadTdRelational(TdGenerator(SmallTd()), target.odh()->database()));

  auto r = target.odh()->engine()->Execute(
      "SELECT ts, t_chrg FROM TD_v t, account a "
      "WHERE a.ca_id = t.id AND a.ca_name = 'ACCT3'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 40u);
}

TEST(RunnerTest, LdDatasetLoads) {
  LdConfig config;
  config.num_sensors = 30;
  config.mean_interval = 5 * kMicrosPerSecond;
  config.duration_seconds = 30;
  LdGenerator stream(config);
  OdhTarget target;
  ODH_CHECK_OK(target.Setup(stream.info()));
  IngestMetrics metrics = RunIngest(&stream, &target).value();
  EXPECT_EQ(metrics.points, stream.info().expected_records);
  ODH_CHECK_OK(LoadLdRelational(LdGenerator(config),
                                target.odh()->database()));
  auto r = target.odh()->engine()->Execute(
      "SELECT ts, o.id, airtemperature FROM LD_v o, linkedsensor l "
      "WHERE l.sensorid = o.id AND sensorname = 'A7'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_GT(r->rows.size(), 0u);
}

}  // namespace
}  // namespace odh::benchfw
