#include "common/datum.h"

#include <gtest/gtest.h>

namespace odh {
namespace {

TEST(DatumTest, TypePredicates) {
  EXPECT_TRUE(Datum().is_null());
  EXPECT_TRUE(Datum::Bool(true).is_bool());
  EXPECT_TRUE(Datum::Int64(1).is_int64());
  EXPECT_TRUE(Datum::Double(1.5).is_double());
  EXPECT_TRUE(Datum::String("x").is_string());
  EXPECT_TRUE(Datum::Time(123).is_timestamp());
  // Timestamp is not a plain int64 and vice versa.
  EXPECT_FALSE(Datum::Time(123).is_int64());
  EXPECT_FALSE(Datum::Int64(123).is_timestamp());
}

TEST(DatumTest, TypeEnum) {
  EXPECT_EQ(Datum().type(), DataType::kNull);
  EXPECT_EQ(Datum::Int64(1).type(), DataType::kInt64);
  EXPECT_EQ(Datum::Time(1).type(), DataType::kTimestamp);
  EXPECT_EQ(Datum::Double(1).type(), DataType::kDouble);
  EXPECT_EQ(Datum::String("").type(), DataType::kString);
  EXPECT_EQ(Datum::Bool(false).type(), DataType::kBool);
}

TEST(DatumTest, AsDouble) {
  EXPECT_DOUBLE_EQ(Datum::Int64(4).AsDouble(), 4.0);
  EXPECT_DOUBLE_EQ(Datum::Double(2.5).AsDouble(), 2.5);
  EXPECT_DOUBLE_EQ(Datum::Bool(true).AsDouble(), 1.0);
  EXPECT_DOUBLE_EQ(Datum::Time(77).AsDouble(), 77.0);
}

TEST(DatumTest, CompareNumeric) {
  int c;
  bool is_null;
  ASSERT_TRUE(Datum::Int64(1).Compare(Datum::Int64(2), &c, &is_null));
  EXPECT_FALSE(is_null);
  EXPECT_LT(c, 0);
  ASSERT_TRUE(Datum::Double(2.5).Compare(Datum::Int64(2), &c, &is_null));
  EXPECT_GT(c, 0);
  ASSERT_TRUE(Datum::Int64(5).Compare(Datum::Int64(5), &c, &is_null));
  EXPECT_EQ(c, 0);
}

TEST(DatumTest, CompareTimestampWithInt64) {
  int c;
  bool is_null;
  ASSERT_TRUE(Datum::Time(100).Compare(Datum::Int64(200), &c, &is_null));
  EXPECT_LT(c, 0);
}

TEST(DatumTest, CompareStrings) {
  int c;
  bool is_null;
  ASSERT_TRUE(
      Datum::String("abc").Compare(Datum::String("abd"), &c, &is_null));
  EXPECT_LT(c, 0);
}

TEST(DatumTest, CompareNullIsNull) {
  int c;
  bool is_null;
  ASSERT_TRUE(Datum::Null().Compare(Datum::Int64(1), &c, &is_null));
  EXPECT_TRUE(is_null);
  ASSERT_TRUE(Datum::Int64(1).Compare(Datum::Null(), &c, &is_null));
  EXPECT_TRUE(is_null);
}

TEST(DatumTest, CompareStringVsNumberFails) {
  int c;
  bool is_null;
  EXPECT_FALSE(Datum::String("1").Compare(Datum::Int64(1), &c, &is_null));
}

TEST(DatumTest, EqualityTreatsNullAsEqual) {
  EXPECT_EQ(Datum::Null(), Datum::Null());
  EXPECT_FALSE(Datum::Null() == Datum::Int64(0));
  EXPECT_EQ(Datum::Int64(3), Datum::Int64(3));
  EXPECT_EQ(Datum::String("x"), Datum::String("x"));
}

TEST(DatumTest, ToString) {
  EXPECT_EQ(Datum::Null().ToString(), "NULL");
  EXPECT_EQ(Datum::Int64(-7).ToString(), "-7");
  EXPECT_EQ(Datum::Bool(true).ToString(), "true");
  EXPECT_EQ(Datum::String("hey").ToString(), "hey");
}

TEST(TimestampTest, FormatAndParseRoundTrip) {
  Timestamp ts;
  ASSERT_TRUE(ParseTimestamp("2013-11-18 00:00:00", &ts));
  EXPECT_EQ(FormatTimestamp(ts), "2013-11-18 00:00:00");
  Timestamp ts2;
  ASSERT_TRUE(ParseTimestamp("2013-11-22 23:59:59", &ts2));
  EXPECT_GT(ts2, ts);
  EXPECT_EQ((ts2 - ts) / kMicrosPerSecond, 4 * 86400 + 86399);
}

TEST(TimestampTest, ParseRejectsGarbage) {
  Timestamp ts;
  EXPECT_FALSE(ParseTimestamp("not a time", &ts));
  EXPECT_FALSE(ParseTimestamp("2013-11-18", &ts));
}

TEST(TimestampTest, FormatWithMicros) {
  Timestamp ts;
  ASSERT_TRUE(ParseTimestamp("2020-01-01 00:00:00", &ts));
  EXPECT_EQ(FormatTimestamp(ts + 250000), "2020-01-01 00:00:00.250000");
}

}  // namespace
}  // namespace odh
