#include "common/status.h"

#include <gtest/gtest.h>

#include "common/result.h"

namespace odh {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing thing");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.message(), "missing thing");
  EXPECT_EQ(s.ToString(), "NotFound: missing thing");
}

TEST(StatusTest, AllFactoriesProduceMatchingCodes) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Corruption("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  ODH_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_TRUE(UsesReturnIfError(-1).IsInvalidArgument());
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsNotFound());
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> p = std::move(r).value();
  EXPECT_EQ(*p, 5);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Result<int> DoubleOf(int x) {
  ODH_ASSIGN_OR_RETURN(int v, ParsePositive(x));
  return v * 2;
}

TEST(ResultTest, AssignOrReturnMacro) {
  Result<int> ok = DoubleOf(21);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(ok.value(), 42);
  EXPECT_TRUE(DoubleOf(-1).status().IsInvalidArgument());
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

}  // namespace
}  // namespace odh
