// MemoryTracker hierarchy semantics (reserve/release propagation, limits
// at every level, peak tracking, residual return on destruction), the
// ScopedReservation RAII unit, and the tracker-charged Arena.

#include "common/memory.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <thread>
#include <vector>

namespace odh::common {
namespace {

TEST(MemoryTrackerTest, ReserveChargesEveryAncestor) {
  MemoryTracker root("process");
  MemoryTracker session("session", 0, &root);
  MemoryTracker query("query", 0, &session);

  ASSERT_TRUE(query.TryReserve(100).ok());
  EXPECT_EQ(query.used(), 100);
  EXPECT_EQ(session.used(), 100);
  EXPECT_EQ(root.used(), 100);

  query.Release(40);
  EXPECT_EQ(query.used(), 60);
  EXPECT_EQ(session.used(), 60);
  EXPECT_EQ(root.used(), 60);
}

TEST(MemoryTrackerTest, RefusalNamesTheLevelAndChargesNothing) {
  MemoryTracker root("process", 1000);
  MemoryTracker session("session", 0, &root);
  MemoryTracker query("query", 100, &session);

  // Query level refuses.
  Status st = query.TryReserve(101);
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_NE(st.ToString().find("query"), std::string::npos);
  EXPECT_EQ(query.used(), 0);
  EXPECT_EQ(root.used(), 0);

  // A modest query can still be refused because the process is full:
  // rollback must undo the partial charges below the refusing level.
  MemoryTracker fat("query2", 0, &session);
  ASSERT_TRUE(fat.TryReserve(950).ok());
  st = query.TryReserve(100);
  EXPECT_TRUE(st.IsResourceExhausted());
  EXPECT_NE(st.ToString().find("process"), std::string::npos);
  EXPECT_EQ(query.used(), 0);
  EXPECT_EQ(session.used(), 950);
  EXPECT_EQ(root.used(), 950);
}

TEST(MemoryTrackerTest, ZeroLimitTracksWithoutRefusing) {
  MemoryTracker root("process");  // Unbounded.
  EXPECT_TRUE(root.TryReserve(int64_t{1} << 40).ok());
  EXPECT_EQ(root.used(), int64_t{1} << 40);
  root.Release(int64_t{1} << 40);
}

TEST(MemoryTrackerTest, PeakIsHighWaterMark) {
  MemoryTracker t("t");
  ASSERT_TRUE(t.TryReserve(300).ok());
  t.Release(200);
  ASSERT_TRUE(t.TryReserve(50).ok());
  EXPECT_EQ(t.used(), 150);
  EXPECT_EQ(t.peak(), 300);
  t.Release(150);
  EXPECT_EQ(t.peak(), 300);  // Peak survives release.
}

TEST(MemoryTrackerTest, DestructionReturnsResidualToAncestors) {
  MemoryTracker root("process");
  {
    MemoryTracker child("child", 0, &root);
    ASSERT_TRUE(child.TryReserve(500).ok());
    EXPECT_EQ(root.used(), 500);
  }
  // Child died holding 500; the ancestors got it back.
  EXPECT_EQ(root.used(), 0);
}

TEST(MemoryTrackerTest, ConcurrentReservationsNeverOvershoot) {
  MemoryTracker root("process", 10000);
  std::vector<std::thread> threads;
  std::atomic<int64_t> admitted{0};
  for (int i = 0; i < 4; ++i) {
    threads.emplace_back([&] {
      for (int j = 0; j < 1000; ++j) {
        if (root.TryReserve(7).ok()) {
          admitted.fetch_add(7);
          root.Release(7);
          admitted.fetch_sub(7);
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(root.used(), 0);
  EXPECT_LE(root.peak(), 10000);
}

TEST(ScopedReservationTest, ReleasesEverythingOnDestruction) {
  MemoryTracker t("t");
  {
    ScopedReservation r(&t);
    ASSERT_TRUE(r.Reserve(100).ok());
    ASSERT_TRUE(r.Reserve(200).ok());
    EXPECT_EQ(r.bytes(), 300);
    EXPECT_EQ(t.used(), 300);
    r.Release(50);
    EXPECT_EQ(t.used(), 250);
  }
  EXPECT_EQ(t.used(), 0);
}

TEST(ScopedReservationTest, NullTrackerIsNoOpSuccess) {
  ScopedReservation r(nullptr);
  EXPECT_TRUE(r.Reserve(1 << 30).ok());
  r.ReleaseAll();  // Must not crash.
}

TEST(ScopedReservationTest, OverReleaseIsClamped) {
  MemoryTracker t("t");
  ScopedReservation r(&t);
  ASSERT_TRUE(r.Reserve(10).ok());
  r.Release(1000);  // Clamped to what was reserved.
  EXPECT_EQ(t.used(), 0);
  EXPECT_EQ(r.bytes(), 0);
}

TEST(ArenaTest, AllocationsAreAlignedAndCharged) {
  MemoryTracker t("t");
  Arena arena(&t);
  auto a = arena.Allocate(10);
  ASSERT_TRUE(a.ok());
  auto b = arena.Allocate(100);
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(reinterpret_cast<uintptr_t>(a.value()) % 8, 0u);
  EXPECT_EQ(reinterpret_cast<uintptr_t>(b.value()) % 8, 0u);
  EXPECT_GT(t.used(), 0);
  EXPECT_EQ(t.used(), arena.bytes_allocated());
  arena.Reset();
  EXPECT_EQ(t.used(), 0);
}

TEST(ArenaTest, RefusedWhenBudgetCannotCoverBlock) {
  MemoryTracker t("t", 1024);  // Below the arena's minimum block.
  Arena arena(&t);
  auto r = arena.Allocate(16);
  EXPECT_FALSE(r.ok());
  EXPECT_TRUE(r.status().IsResourceExhausted());
  EXPECT_EQ(t.used(), 0);
}

TEST(ArenaTest, LargeAllocationSpansDedicatedBlock) {
  MemoryTracker t("t");
  Arena arena(&t);
  auto r = arena.Allocate(1 << 20);  // Larger than kMaxBlock.
  ASSERT_TRUE(r.ok());
  EXPECT_GE(arena.bytes_allocated(), 1 << 20);
  // The bump cursor still serves small allocations afterwards.
  EXPECT_TRUE(arena.Allocate(64).ok());
}

TEST(ApproxBytesTest, StringsCountTheirCapacity) {
  const Datum small = Datum::Int64(7);
  EXPECT_EQ(ApproxDatumBytes(small), static_cast<int64_t>(sizeof(Datum)));
  const Datum str = Datum::String(std::string(1000, 'x'));
  EXPECT_GE(ApproxDatumBytes(str),
            static_cast<int64_t>(sizeof(Datum)) + 1000);
  const Row row = {small, str};
  EXPECT_EQ(ApproxRowBytes(row), static_cast<int64_t>(sizeof(Row)) +
                                     ApproxDatumBytes(small) +
                                     ApproxDatumBytes(str));
}

}  // namespace
}  // namespace odh::common
