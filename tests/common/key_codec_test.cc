#include "common/key_codec.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/random.h"

namespace odh {
namespace {

std::string KeyOfInt(int64_t v) {
  std::string out;
  KeyEncoder enc(&out);
  enc.AddInt64(v);
  return out;
}

std::string KeyOfDouble(double v) {
  std::string out;
  KeyEncoder enc(&out);
  enc.AddDouble(v);
  return out;
}

std::string KeyOfString(const std::string& v) {
  std::string out;
  KeyEncoder enc(&out);
  enc.AddString(v);
  return out;
}

TEST(KeyCodecTest, Int64OrderPreserved) {
  const int64_t values[] = {INT64_MIN, -1000000, -1, 0, 1, 42, 1000000,
                            INT64_MAX};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(KeyOfInt(values[i]), KeyOfInt(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyCodecTest, Int64RoundTrip) {
  const int64_t values[] = {INT64_MIN, -1, 0, 7, INT64_MAX};
  for (int64_t v : values) {
    std::string key = KeyOfInt(v);
    KeyDecoder dec{Slice(key)};
    int64_t out;
    ASSERT_TRUE(dec.ReadInt64(&out));
    EXPECT_EQ(out, v);
    EXPECT_TRUE(dec.done());
  }
}

TEST(KeyCodecTest, DoubleOrderPreserved) {
  const double values[] = {-1e300, -3.5, -1.0, -0.25, 0.0,
                           0.25,   1.0,  3.5,  1e300};
  for (size_t i = 0; i + 1 < std::size(values); ++i) {
    EXPECT_LT(KeyOfDouble(values[i]), KeyOfDouble(values[i + 1]))
        << values[i] << " vs " << values[i + 1];
  }
}

TEST(KeyCodecTest, DoubleRoundTrip) {
  const double values[] = {-1e300, -1.5, 0.0, 2.25, 1e300};
  for (double v : values) {
    std::string key = KeyOfDouble(v);
    KeyDecoder dec{Slice(key)};
    double out;
    ASSERT_TRUE(dec.ReadDouble(&out));
    EXPECT_DOUBLE_EQ(out, v);
  }
}

TEST(KeyCodecTest, StringOrderPreservedIncludingEmbeddedNul) {
  std::vector<std::string> values = {"", std::string("\0", 1), "a",
                                     std::string("a\0b", 3), "ab", "b"};
  for (size_t i = 0; i + 1 < values.size(); ++i) {
    EXPECT_LT(KeyOfString(values[i]), KeyOfString(values[i + 1])) << i;
  }
}

TEST(KeyCodecTest, StringRoundTrip) {
  const std::string values[] = {"", "hello", std::string("a\0\0b", 4),
                                std::string(300, 'x')};
  for (const std::string& v : values) {
    std::string key = KeyOfString(v);
    KeyDecoder dec{Slice(key)};
    std::string out;
    ASSERT_TRUE(dec.ReadString(&out));
    EXPECT_EQ(out, v);
  }
}

TEST(KeyCodecTest, NullOrdersBeforeEverything) {
  std::string null_key;
  KeyEncoder enc(&null_key);
  enc.AddNull();
  EXPECT_LT(null_key, KeyOfInt(INT64_MIN));
  EXPECT_LT(null_key, KeyOfString(""));
}

TEST(KeyCodecTest, CompositeKeyOrdersLexicographically) {
  auto make = [](int64_t id, int64_t ts) {
    std::string out;
    KeyEncoder enc(&out);
    enc.AddInt64(id);
    enc.AddInt64(ts);
    return out;
  };
  EXPECT_LT(make(1, 100), make(1, 101));
  EXPECT_LT(make(1, 999999), make(2, 0));
  EXPECT_LT(make(-5, 0), make(1, -100));
}

TEST(KeyCodecTest, DatumRoundTripAllTypes) {
  std::vector<std::pair<Datum, DataType>> cases = {
      {Datum::Null(), DataType::kInt64},
      {Datum::Bool(true), DataType::kBool},
      {Datum::Int64(-42), DataType::kInt64},
      {Datum::Double(3.5), DataType::kDouble},
      {Datum::String("abc"), DataType::kString},
      {Datum::Time(1700000000000000), DataType::kTimestamp},
  };
  for (const auto& [d, type] : cases) {
    std::string key = EncodeKey({d});
    KeyDecoder dec{Slice(key)};
    Datum out;
    ASSERT_TRUE(dec.ReadDatum(type, &out)) << d.ToString();
    EXPECT_EQ(out, d) << d.ToString();
  }
}

class KeyCodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(KeyCodecPropertyTest, RandomInt64PairsOrderConsistently) {
  Random rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    int64_t a = static_cast<int64_t>(rng.Next());
    int64_t b = static_cast<int64_t>(rng.Next());
    std::string ka = KeyOfInt(a), kb = KeyOfInt(b);
    EXPECT_EQ(a < b, ka < kb);
    EXPECT_EQ(a == b, ka == kb);
  }
}

TEST_P(KeyCodecPropertyTest, RandomDoublePairsOrderConsistently) {
  Random rng(static_cast<uint64_t>(GetParam()));
  for (int i = 0; i < 2000; ++i) {
    double a = rng.UniformDouble(-1e6, 1e6);
    double b = rng.UniformDouble(-1e6, 1e6);
    EXPECT_EQ(a < b, KeyOfDouble(a) < KeyOfDouble(b));
  }
}

TEST_P(KeyCodecPropertyTest, RandomStringsSortIdentically) {
  Random rng(static_cast<uint64_t>(GetParam()));
  std::vector<std::string> raw;
  for (int i = 0; i < 200; ++i) {
    std::string s;
    size_t len = rng.Uniform(12);
    for (size_t j = 0; j < len; ++j) {
      s.push_back(static_cast<char>(rng.Uniform(4)));  // Dense in {0,1,2,3}.
    }
    raw.push_back(s);
  }
  std::vector<std::string> encoded;
  for (const auto& s : raw) encoded.push_back(KeyOfString(s));
  std::vector<size_t> order_raw(raw.size()), order_enc(raw.size());
  for (size_t i = 0; i < raw.size(); ++i) order_raw[i] = order_enc[i] = i;
  std::sort(order_raw.begin(), order_raw.end(),
            [&](size_t a, size_t b) { return raw[a] < raw[b]; });
  std::sort(order_enc.begin(), order_enc.end(),
            [&](size_t a, size_t b) { return encoded[a] < encoded[b]; });
  for (size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(raw[order_raw[i]], raw[order_enc[i]]) << i;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KeyCodecPropertyTest,
                         ::testing::Values(11, 22, 33));

}  // namespace
}  // namespace odh
