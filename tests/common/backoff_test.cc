// Deadline and ExponentialBackoff: the primitives under every network
// retry. Determinism matters most — identical seeds must give identical
// delay schedules, or chaos tests stop replaying.

#include "common/backoff.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace odh::common {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline dl;
  EXPECT_TRUE(dl.infinite());
  EXPECT_FALSE(dl.expired());
  EXPECT_EQ(dl.remaining_millis(), -1);  // poll(2)'s "block forever".
}

TEST(DeadlineTest, AfterMillisExpires) {
  Deadline dl = Deadline::AfterMillis(20);
  EXPECT_FALSE(dl.infinite());
  EXPECT_GT(dl.remaining_millis(), 0);
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_TRUE(dl.expired());
  EXPECT_EQ(dl.remaining_millis(), 0);
}

TEST(DeadlineTest, NonPositiveMeansAlreadyExpired) {
  EXPECT_TRUE(Deadline::AfterMillis(0).expired());
  EXPECT_TRUE(Deadline::AfterMillis(-5).expired());
}

TEST(DeadlineTest, OrInfiniteTreatsZeroAsDisabled) {
  EXPECT_TRUE(Deadline::AfterMillisOrInfinite(0).infinite());
  EXPECT_TRUE(Deadline::AfterMillisOrInfinite(-1).infinite());
  EXPECT_FALSE(Deadline::AfterMillisOrInfinite(100).infinite());
}

TEST(BackoffTest, SameSeedSameSchedule) {
  ExponentialBackoff a(10, 1000, 42);
  ExponentialBackoff b(10, 1000, 42);
  for (int i = 0; i < 16; ++i) {
    EXPECT_EQ(a.NextDelayMillis(), b.NextDelayMillis()) << "step " << i;
  }
}

TEST(BackoffTest, DelaysStayWithinDoublingCeilingAndCap) {
  ExponentialBackoff backoff(10, 80, 7);
  int64_t ceiling = 10;
  for (int i = 0; i < 12; ++i) {
    int64_t delay = backoff.NextDelayMillis();
    EXPECT_GE(delay, 0);
    EXPECT_LE(delay, ceiling) << "step " << i;
    ceiling = std::min<int64_t>(80, ceiling * 2);
  }
}

TEST(BackoffTest, JitterActuallyVaries) {
  // Full jitter: over a few dozen draws at a 1000ms ceiling, the delays
  // must not all collapse to one value (that would re-correlate the herd).
  ExponentialBackoff backoff(1000, 1000, 99);
  std::vector<int64_t> delays;
  for (int i = 0; i < 32; ++i) delays.push_back(backoff.NextDelayMillis());
  int64_t distinct = 0;
  for (size_t i = 1; i < delays.size(); ++i) {
    if (delays[i] != delays[0]) ++distinct;
  }
  EXPECT_GT(distinct, 0);
}

TEST(BackoffTest, ResetRestartsTheDoubling) {
  ExponentialBackoff backoff(10, 10000, 5);
  for (int i = 0; i < 6; ++i) backoff.NextDelayMillis();
  backoff.Reset();
  // Post-reset first delay is again bounded by the initial ceiling.
  EXPECT_LE(backoff.NextDelayMillis(), 10);
}

}  // namespace
}  // namespace odh::common
