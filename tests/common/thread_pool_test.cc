#include "common/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace odh::common {
namespace {

TEST(ThreadPoolTest, ClampsThreadCount) {
  ThreadPool pool(0);
  EXPECT_EQ(pool.num_threads(), 1);
  ThreadPool pool4(4);
  EXPECT_EQ(pool4.num_threads(), 4);
}

TEST(ThreadPoolTest, SubmitRunsEveryTask) {
  ThreadPool pool(4);
  std::atomic<int> counter{0};
  constexpr int kTasks = 200;
  for (int i = 0; i < kTasks; ++i) {
    pool.Submit([&] { counter.fetch_add(1); });
  }
  // Poll rather than wait on a condvar: a task notifying a stack-allocated
  // condvar races with the test tearing it down once the count is reached.
  for (int i = 0; i < 30000 && counter.load() < kTasks; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(counter.load(), kTasks);
}

TEST(ThreadPoolTest, DestructorDrainsQueue) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(2);
    for (int i = 0; i < 100; ++i) {
      pool.Submit([&] { counter.fetch_add(1); });
    }
  }  // Join here: every submitted task must have run.
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr int64_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  pool.ParallelFor(kN, [&](int64_t i) { hits[i].fetch_add(1); });
  for (int64_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, ParallelForUsesMultipleThreads) {
  ThreadPool pool(4);
  std::mutex mu;
  std::set<std::thread::id> workers;
  pool.ParallelFor(256, [&](int64_t) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
    std::lock_guard<std::mutex> lock(mu);
    workers.insert(std::this_thread::get_id());
  });
  // The caller drives too, so at least the caller finished; with 256 slow
  // tasks the helpers virtually always join in. Require > 1 to catch a
  // pool that silently stopped dispatching.
  EXPECT_GT(workers.size(), 1u);
}

TEST(ThreadPoolTest, ParallelForHandlesSmallAndEmptyRanges) {
  ThreadPool pool(4);
  std::atomic<int> count{0};
  pool.ParallelFor(0, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 0);
  pool.ParallelFor(1, [&](int64_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 1);
}

}  // namespace
}  // namespace odh::common
