#include "common/coding.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace odh {
namespace {

TEST(CodingTest, Fixed32RoundTrip) {
  std::string buf;
  PutFixed32(&buf, 0);
  PutFixed32(&buf, 12345);
  PutFixed32(&buf, UINT32_MAX);
  ASSERT_EQ(buf.size(), 12u);
  EXPECT_EQ(DecodeFixed32(buf.data()), 0u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 4), 12345u);
  EXPECT_EQ(DecodeFixed32(buf.data() + 8), UINT32_MAX);
}

TEST(CodingTest, Fixed64RoundTrip) {
  std::string buf;
  PutFixed64(&buf, UINT64_MAX);
  PutFixed64(&buf, 1);
  EXPECT_EQ(DecodeFixed64(buf.data()), UINT64_MAX);
  EXPECT_EQ(DecodeFixed64(buf.data() + 8), 1u);
}

TEST(CodingTest, DoubleRoundTrip) {
  std::string buf;
  PutDouble(&buf, 3.14159);
  PutDouble(&buf, -0.0);
  EXPECT_DOUBLE_EQ(DecodeDouble(buf.data()), 3.14159);
  EXPECT_DOUBLE_EQ(DecodeDouble(buf.data() + 8), -0.0);
}

TEST(CodingTest, Varint64Boundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (uint64_t{1} << 32) - 1,
                            uint64_t{1} << 32,
                            UINT64_MAX};
  std::string buf;
  for (uint64_t v : cases) PutVarint64(&buf, v);
  Slice in(buf);
  for (uint64_t expected : cases) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    EXPECT_EQ(got, expected);
  }
  EXPECT_TRUE(in.empty());
}

TEST(CodingTest, Varint32RejectsOverflow) {
  std::string buf;
  PutVarint64(&buf, uint64_t{1} << 40);
  Slice in(buf);
  uint32_t v;
  EXPECT_FALSE(GetVarint32(&in, &v));
}

TEST(CodingTest, VarintTruncatedFails) {
  std::string buf;
  PutVarint64(&buf, UINT64_MAX);
  for (size_t cut = 0; cut < buf.size(); ++cut) {
    Slice in(buf.data(), cut);
    uint64_t v;
    EXPECT_FALSE(GetVarint64(&in, &v)) << "cut=" << cut;
  }
}

TEST(CodingTest, ZigZag) {
  EXPECT_EQ(ZigZagEncode(0), 0u);
  EXPECT_EQ(ZigZagEncode(-1), 1u);
  EXPECT_EQ(ZigZagEncode(1), 2u);
  EXPECT_EQ(ZigZagEncode(-2), 3u);
  const int64_t cases[] = {0, 1, -1, 123456789, -123456789, INT64_MAX,
                           INT64_MIN};
  for (int64_t v : cases) {
    EXPECT_EQ(ZigZagDecode(ZigZagEncode(v)), v) << v;
  }
}

TEST(CodingTest, SignedVarintRoundTrip) {
  std::string buf;
  const int64_t cases[] = {0, -5, 5, INT64_MIN, INT64_MAX, -1000000};
  for (int64_t v : cases) PutVarintSigned64(&buf, v);
  Slice in(buf);
  for (int64_t expected : cases) {
    int64_t got;
    ASSERT_TRUE(GetVarintSigned64(&in, &got));
    EXPECT_EQ(got, expected);
  }
}

TEST(CodingTest, LengthPrefixedRoundTrip) {
  std::string buf;
  PutLengthPrefixed(&buf, Slice("hello"));
  PutLengthPrefixed(&buf, Slice(""));
  std::string with_nul("a\0b", 3);
  PutLengthPrefixed(&buf, Slice(with_nul));
  Slice in(buf);
  Slice out;
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_EQ(out.ToString(), "hello");
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_TRUE(out.empty());
  ASSERT_TRUE(GetLengthPrefixed(&in, &out));
  EXPECT_EQ(out.ToString(), with_nul);
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

TEST(CodingTest, LengthPrefixedTruncatedBodyFails) {
  std::string buf;
  PutVarint32(&buf, 100);
  buf += "short";
  Slice in(buf);
  Slice out;
  EXPECT_FALSE(GetLengthPrefixed(&in, &out));
}

// Property sweep: random values round-trip through varints.
class VarintPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(VarintPropertyTest, RandomRoundTrip) {
  Random rng(static_cast<uint64_t>(GetParam()));
  std::string buf;
  std::vector<uint64_t> values;
  for (int i = 0; i < 1000; ++i) {
    // Mix magnitudes so all byte lengths are exercised.
    int shift = static_cast<int>(rng.Uniform(64));
    uint64_t v = rng.Next() >> shift;
    values.push_back(v);
    PutVarint64(&buf, v);
  }
  Slice in(buf);
  for (uint64_t expected : values) {
    uint64_t got;
    ASSERT_TRUE(GetVarint64(&in, &got));
    ASSERT_EQ(got, expected);
  }
  EXPECT_TRUE(in.empty());
}

INSTANTIATE_TEST_SUITE_P(Seeds, VarintPropertyTest,
                         ::testing::Values(1, 2, 3, 42, 1337));

}  // namespace
}  // namespace odh
