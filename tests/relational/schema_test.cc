#include "relational/schema.h"

#include <gtest/gtest.h>

namespace odh::relational {
namespace {

Schema MakeSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"ts", DataType::kTimestamp},
                 {"temp", DataType::kDouble},
                 {"name", DataType::kString}});
}

TEST(SchemaTest, FindColumnIsCaseInsensitive) {
  Schema s = MakeSchema();
  EXPECT_EQ(s.FindColumn("id"), 0);
  EXPECT_EQ(s.FindColumn("TS"), 1);
  EXPECT_EQ(s.FindColumn("Temp"), 2);
  EXPECT_EQ(s.FindColumn("missing"), -1);
}

TEST(SchemaTest, RowMatchesChecksArityAndTypes) {
  Schema s = MakeSchema();
  Row good = {Datum::Int64(1), Datum::Time(2), Datum::Double(3.0),
              Datum::String("x")};
  EXPECT_TRUE(s.RowMatches(good));

  Row short_row = {Datum::Int64(1)};
  EXPECT_FALSE(s.RowMatches(short_row));

  Row bad_type = {Datum::String("1"), Datum::Time(2), Datum::Double(3.0),
                  Datum::String("x")};
  EXPECT_FALSE(s.RowMatches(bad_type));
}

TEST(SchemaTest, NullsMatchAnyColumn) {
  Schema s = MakeSchema();
  Row nulls = {Datum::Null(), Datum::Null(), Datum::Null(), Datum::Null()};
  EXPECT_TRUE(s.RowMatches(nulls));
}

TEST(SchemaTest, Int64WidensToDouble) {
  Schema s = MakeSchema();
  Row widened = {Datum::Int64(1), Datum::Time(2), Datum::Int64(3),
                 Datum::String("x")};
  EXPECT_TRUE(s.RowMatches(widened));
}

TEST(SchemaTest, NameEquals) {
  EXPECT_TRUE(NameEquals("abc", "ABC"));
  EXPECT_TRUE(NameEquals("", ""));
  EXPECT_FALSE(NameEquals("ab", "abc"));
  EXPECT_FALSE(NameEquals("abd", "abc"));
}

TEST(SchemaTest, ToStringListsColumns) {
  Schema s({{"a", DataType::kInt64}, {"b", DataType::kString}});
  EXPECT_EQ(s.ToString(), "(a BIGINT, b VARCHAR)");
}

}  // namespace
}  // namespace odh::relational
