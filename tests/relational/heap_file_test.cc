#include "relational/heap_file.h"

#include <gtest/gtest.h>

#include <map>

#include "common/random.h"

namespace odh::relational {
namespace {

class HeapFileTest : public ::testing::Test {
 protected:
  HeapFileTest() : disk_(512), pool_(&disk_, 16) {
    heap_ = HeapFile::Create(&pool_, "h").value();
  }

  storage::SimDisk disk_;
  storage::BufferPool pool_;
  std::unique_ptr<HeapFile> heap_;
};

TEST_F(HeapFileTest, RidEncodesRoundTrip) {
  Rid rid{12345, 67};
  Rid out;
  ASSERT_TRUE(Rid::Decode(Slice(rid.Encode()), &out));
  EXPECT_EQ(out, rid);
  EXPECT_FALSE(Rid::Decode(Slice("short"), &out));
}

TEST_F(HeapFileTest, InsertAndGet) {
  Rid a = heap_->Insert(Slice("hello")).value();
  Rid b = heap_->Insert(Slice("world!")).value();
  EXPECT_EQ(heap_->Get(a).value(), "hello");
  EXPECT_EQ(heap_->Get(b).value(), "world!");
  EXPECT_EQ(heap_->record_count(), 2);
}

TEST_F(HeapFileTest, FillsMultiplePages) {
  std::vector<Rid> rids;
  for (int i = 0; i < 200; ++i) {
    rids.push_back(heap_->Insert(Slice(std::to_string(i))).value());
  }
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(heap_->Get(rids[i]).value(), std::to_string(i)) << i;
  }
  // 200 small records cannot fit in one 512-byte page.
  EXPECT_GT(rids.back().page, 0u);
}

TEST_F(HeapFileTest, OverflowRecordSpanningPages) {
  std::string big(2000, 'x');  // ~4 pages at 512B.
  for (size_t i = 0; i < big.size(); ++i) big[i] = static_cast<char>(i % 251);
  Rid rid = heap_->Insert(Slice(big)).value();
  EXPECT_EQ(heap_->Get(rid).value(), big);
}

TEST_F(HeapFileTest, MixedSmallAndOverflow) {
  Rid small1 = heap_->Insert(Slice("aa")).value();
  std::string big(1500, 'B');
  Rid over = heap_->Insert(Slice(big)).value();
  Rid small2 = heap_->Insert(Slice("cc")).value();
  EXPECT_EQ(heap_->Get(small1).value(), "aa");
  EXPECT_EQ(heap_->Get(over).value(), big);
  EXPECT_EQ(heap_->Get(small2).value(), "cc");
}

TEST_F(HeapFileTest, DeleteHidesRecord) {
  Rid a = heap_->Insert(Slice("doomed")).value();
  Rid b = heap_->Insert(Slice("keep")).value();
  ASSERT_TRUE(heap_->Delete(a).ok());
  EXPECT_TRUE(heap_->Get(a).status().IsNotFound());
  EXPECT_TRUE(heap_->Delete(a).IsNotFound());
  EXPECT_EQ(heap_->Get(b).value(), "keep");
  EXPECT_EQ(heap_->record_count(), 1);
}

TEST_F(HeapFileTest, DeleteOverflowRecord) {
  std::string big(1500, 'Z');
  Rid rid = heap_->Insert(Slice(big)).value();
  ASSERT_TRUE(heap_->Delete(rid).ok());
  EXPECT_TRUE(heap_->Get(rid).status().IsNotFound());
}

TEST_F(HeapFileTest, ScanVisitsAllLiveRecordsIncludingOverflow) {
  std::vector<std::string> expected;
  for (int i = 0; i < 50; ++i) {
    std::string rec = "small" + std::to_string(i);
    heap_->Insert(Slice(rec)).value();
    expected.push_back(rec);
  }
  std::string big(1200, 'Q');
  heap_->Insert(Slice(big)).value();
  expected.push_back(big);
  for (int i = 0; i < 10; ++i) {
    std::string rec = "tail" + std::to_string(i);
    heap_->Insert(Slice(rec)).value();
    expected.push_back(rec);
  }

  std::multiset<std::string> want(expected.begin(), expected.end());
  auto it = heap_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  std::multiset<std::string> got;
  while (it.Valid()) {
    got.insert(it.record());
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(got, want);
}

TEST_F(HeapFileTest, ScanSkipsDeleted) {
  Rid a = heap_->Insert(Slice("a")).value();
  heap_->Insert(Slice("b")).value();
  Rid c = heap_->Insert(Slice("c")).value();
  ASSERT_TRUE(heap_->Delete(a).ok());
  ASSERT_TRUE(heap_->Delete(c).ok());
  auto it = heap_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.record(), "b");
  ASSERT_TRUE(it.Next().ok());
  EXPECT_FALSE(it.Valid());
}

struct HeapPropertyParam {
  uint64_t seed;
  int ops;
};

class HeapFilePropertyTest
    : public ::testing::TestWithParam<HeapPropertyParam> {};

TEST_P(HeapFilePropertyTest, RandomInsertGetDeleteMatchesReference) {
  storage::SimDisk disk(512);
  storage::BufferPool pool(&disk, 8);
  auto heap = HeapFile::Create(&pool, "h").value();
  Random rng(GetParam().seed);
  std::map<std::string, std::string> live;  // encoded rid -> record.
  std::vector<Rid> rids;

  for (int op = 0; op < GetParam().ops; ++op) {
    uint64_t action = rng.Uniform(3);
    if (action == 0 || rids.empty()) {
      size_t len = rng.OneIn(10) ? 400 + rng.Uniform(1500) : rng.Uniform(50);
      std::string rec;
      for (size_t i = 0; i < len; ++i) {
        rec.push_back(static_cast<char>(rng.Uniform(256)));
      }
      Rid rid = heap->Insert(Slice(rec)).value();
      rids.push_back(rid);
      live[rid.Encode()] = rec;
    } else if (action == 1) {
      Rid rid = rids[rng.Uniform(rids.size())];
      auto got = heap->Get(rid);
      auto it = live.find(rid.Encode());
      if (it == live.end()) {
        EXPECT_TRUE(got.status().IsNotFound());
      } else {
        ASSERT_TRUE(got.ok());
        EXPECT_EQ(got.value(), it->second);
      }
    } else {
      Rid rid = rids[rng.Uniform(rids.size())];
      Status s = heap->Delete(rid);
      auto it = live.find(rid.Encode());
      if (it == live.end()) {
        EXPECT_TRUE(s.IsNotFound());
      } else {
        EXPECT_TRUE(s.ok());
        live.erase(it);
      }
    }
  }
  EXPECT_EQ(heap->record_count(), static_cast<int64_t>(live.size()));
}

INSTANTIATE_TEST_SUITE_P(RandomOps, HeapFilePropertyTest,
                         ::testing::Values(HeapPropertyParam{1, 1500},
                                           HeapPropertyParam{2, 3000},
                                           HeapPropertyParam{3, 800}));

}  // namespace
}  // namespace odh::relational
