#include "relational/row_codec.h"

#include <gtest/gtest.h>

#include "common/random.h"

namespace odh::relational {
namespace {

Schema WideSchema() {
  return Schema({{"id", DataType::kInt64},
                 {"ts", DataType::kTimestamp},
                 {"flag", DataType::kBool},
                 {"temp", DataType::kDouble},
                 {"name", DataType::kString},
                 {"wind", DataType::kDouble}});
}

TEST(RowCodecTest, RoundTripFullRow) {
  Schema schema = WideSchema();
  RowCodec codec(&schema, 16);
  Row row = {Datum::Int64(-99),     Datum::Time(1700000000000000),
             Datum::Bool(true),     Datum::Double(21.5),
             Datum::String("hello"), Datum::Double(-3.25)};
  std::string buf;
  ASSERT_TRUE(codec.Encode(row, &buf).ok());
  EXPECT_GE(buf.size(), 16u);  // At least the reserved header.
  Row out;
  ASSERT_TRUE(codec.Decode(Slice(buf), &out).ok());
  ASSERT_EQ(out.size(), row.size());
  for (size_t i = 0; i < row.size(); ++i) EXPECT_EQ(out[i], row[i]) << i;
}

TEST(RowCodecTest, RoundTripAllNulls) {
  Schema schema = WideSchema();
  RowCodec codec(&schema, 4);
  Row row(6, Datum::Null());
  std::string buf;
  ASSERT_TRUE(codec.Encode(row, &buf).ok());
  Row out;
  ASSERT_TRUE(codec.Decode(Slice(buf), &out).ok());
  for (const Datum& d : out) EXPECT_TRUE(d.is_null());
}

TEST(RowCodecTest, HeaderBytesAffectSize) {
  Schema schema = WideSchema();
  RowCodec small(&schema, 4);
  RowCodec big(&schema, 20);
  Row row = {Datum::Int64(1), Datum::Time(2),      Datum::Bool(false),
             Datum::Double(3), Datum::String("x"), Datum::Double(4)};
  std::string a, b;
  ASSERT_TRUE(small.Encode(row, &a).ok());
  ASSERT_TRUE(big.Encode(row, &b).ok());
  EXPECT_EQ(b.size() - a.size(), 16u);
}

TEST(RowCodecTest, DecodeColumnsProjects) {
  Schema schema = WideSchema();
  RowCodec codec(&schema, 0);
  Row row = {Datum::Int64(7),  Datum::Time(8),      Datum::Bool(true),
             Datum::Double(9), Datum::String("yo"), Datum::Double(10)};
  std::string buf;
  ASSERT_TRUE(codec.Encode(row, &buf).ok());
  Row out;
  ASSERT_TRUE(codec.DecodeColumns(Slice(buf), {0, 4}, &out).ok());
  EXPECT_EQ(out[0], Datum::Int64(7));
  EXPECT_TRUE(out[1].is_null());
  EXPECT_TRUE(out[2].is_null());
  EXPECT_TRUE(out[3].is_null());
  EXPECT_EQ(out[4], Datum::String("yo"));
  EXPECT_TRUE(out[5].is_null());
}

TEST(RowCodecTest, RejectsMismatchedRow) {
  Schema schema = WideSchema();
  RowCodec codec(&schema, 0);
  std::string buf;
  Row bad = {Datum::String("nope")};
  EXPECT_TRUE(codec.Encode(bad, &buf).IsInvalidArgument());
}

TEST(RowCodecTest, DecodeTruncatedFails) {
  Schema schema = WideSchema();
  RowCodec codec(&schema, 0);
  Row row = {Datum::Int64(7),  Datum::Time(8),       Datum::Bool(true),
             Datum::Double(9), Datum::String("abc"), Datum::Double(10)};
  std::string buf;
  ASSERT_TRUE(codec.Encode(row, &buf).ok());
  Row out;
  EXPECT_FALSE(codec.Decode(Slice(buf.data(), buf.size() / 2), &out).ok());
}

TEST(RowCodecTest, Int64AcceptedForDoubleColumn) {
  Schema schema({{"v", DataType::kDouble}});
  RowCodec codec(&schema, 0);
  std::string buf;
  ASSERT_TRUE(codec.Encode({Datum::Int64(5)}, &buf).ok());
  Row out;
  ASSERT_TRUE(codec.Decode(Slice(buf), &out).ok());
  EXPECT_DOUBLE_EQ(out[0].double_value(), 5.0);
}

class RowCodecPropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(RowCodecPropertyTest, RandomRowsRoundTripWithRandomNulls) {
  Random rng(static_cast<uint64_t>(GetParam()));
  Schema schema = WideSchema();
  RowCodec codec(&schema, 8);
  for (int trial = 0; trial < 500; ++trial) {
    Row row(6);
    row[0] = rng.OneIn(5) ? Datum::Null()
                          : Datum::Int64(static_cast<int64_t>(rng.Next()));
    row[1] = rng.OneIn(5) ? Datum::Null()
                          : Datum::Time(rng.UniformRange(0, int64_t{1} << 50));
    row[2] = rng.OneIn(5) ? Datum::Null() : Datum::Bool(rng.OneIn(2));
    row[3] = rng.OneIn(5) ? Datum::Null()
                          : Datum::Double(rng.UniformDouble(-1e9, 1e9));
    std::string s;
    for (uint64_t i = rng.Uniform(20); i > 0; --i) {
      s.push_back(static_cast<char>('a' + rng.Uniform(26)));
    }
    row[4] = rng.OneIn(5) ? Datum::Null() : Datum::String(s);
    row[5] = rng.OneIn(5) ? Datum::Null()
                          : Datum::Double(rng.UniformDouble(-10, 10));

    std::string buf;
    ASSERT_TRUE(codec.Encode(row, &buf).ok());
    Row out;
    ASSERT_TRUE(codec.Decode(Slice(buf), &out).ok());
    for (size_t i = 0; i < 6; ++i) ASSERT_EQ(out[i], row[i]) << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RowCodecPropertyTest,
                         ::testing::Values(7, 77, 777));

}  // namespace
}  // namespace odh::relational
