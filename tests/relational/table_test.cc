#include "relational/table.h"

#include <gtest/gtest.h>

#include "common/key_codec.h"
#include "common/logging.h"
#include "common/random.h"
#include "relational/database.h"

namespace odh::relational {
namespace {

Schema TradeSchema() {
  return Schema({{"t_dts", DataType::kTimestamp},
                 {"t_ca_id", DataType::kInt64},
                 {"t_trade_price", DataType::kDouble},
                 {"t_chrg", DataType::kDouble}});
}

Row MakeTrade(Timestamp ts, int64_t account, double price, double chrg) {
  return {Datum::Time(ts), Datum::Int64(account), Datum::Double(price),
          Datum::Double(chrg)};
}

class TableTest : public ::testing::Test {
 protected:
  TableTest() : db_(EngineProfile::Rdb()) {
    table_ = db_.CreateTable("trade", TradeSchema()).value();
    ODH_CHECK_OK(table_->AddIndex({"by_ts", {0}}));
    ODH_CHECK_OK(table_->AddIndex({"by_account", {1}}));
  }

  Database db_;
  Table* table_;
};

TEST_F(TableTest, InsertGetRoundTrip) {
  Rid rid = table_->Insert(MakeTrade(1000, 42, 9.5, 0.1)).value();
  Row row = table_->Get(rid).value();
  EXPECT_EQ(row[0], Datum::Time(1000));
  EXPECT_EQ(row[1], Datum::Int64(42));
  EXPECT_EQ(row[2], Datum::Double(9.5));
  EXPECT_EQ(table_->row_count(), 1);
}

TEST_F(TableTest, RejectsBadRow) {
  Row bad = {Datum::String("x")};
  EXPECT_FALSE(table_->Insert(bad).ok());
}

TEST_F(TableTest, IndexScanByAccount) {
  for (int i = 0; i < 100; ++i) {
    table_->Insert(MakeTrade(1000 + i, i % 10, i * 1.0, 0.1)).value();
  }
  // Account 3 has 10 trades.
  std::string lo = EncodeKey({Datum::Int64(3)});
  std::string hi = EncodeKey({Datum::Int64(3)});
  auto it = table_->IndexScan(1, lo, hi).value();
  int count = 0;
  while (it.Valid()) {
    Row row = table_->Get(it.rid()).value();
    EXPECT_EQ(row[1], Datum::Int64(3));
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 10);
}

TEST_F(TableTest, IndexRangeScanByTimestamp) {
  for (int i = 0; i < 50; ++i) {
    table_->Insert(MakeTrade(i * 100, 7, 1.0, 0.1)).value();
  }
  std::string lo = EncodeKey({Datum::Time(1000)});
  std::string hi = EncodeKey({Datum::Time(2000)});
  auto it = table_->IndexScan(0, lo, hi).value();
  std::vector<Timestamp> seen;
  while (it.Valid()) {
    Row row = table_->Get(it.rid()).value();
    seen.push_back(row[0].timestamp_value());
    ASSERT_TRUE(it.Next().ok());
  }
  // Timestamps 1000..2000 step 100, inclusive both ends.
  ASSERT_EQ(seen.size(), 11u);
  EXPECT_EQ(seen.front(), 1000);
  EXPECT_EQ(seen.back(), 2000);
  for (size_t i = 1; i < seen.size(); ++i) EXPECT_LE(seen[i - 1], seen[i]);
}

TEST_F(TableTest, IndexScanEmptyRange) {
  table_->Insert(MakeTrade(100, 1, 1.0, 0.1)).value();
  std::string lo = EncodeKey({Datum::Time(500)});
  std::string hi = EncodeKey({Datum::Time(600)});
  auto it = table_->IndexScan(0, lo, hi).value();
  EXPECT_FALSE(it.Valid());
}

TEST_F(TableTest, AddIndexRetroactivelyIndexesRows) {
  for (int i = 0; i < 20; ++i) {
    table_->Insert(MakeTrade(i, 5, i * 2.0, 0.1)).value();
  }
  ASSERT_TRUE(table_->AddIndex({"by_price", {2}}).ok());
  std::string lo = EncodeKey({Datum::Double(10.0)});
  std::string hi = EncodeKey({Datum::Double(20.0)});
  auto it = table_->IndexScan(2, lo, hi).value();
  int count = 0;
  while (it.Valid()) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 6);  // Prices 10,12,14,16,18,20.
}

TEST_F(TableTest, DuplicateIndexNameRejected) {
  EXPECT_TRUE(table_->AddIndex({"by_ts", {0}}).code() ==
              StatusCode::kAlreadyExists);
}

TEST_F(TableTest, DeleteMaintainsIndexes) {
  Rid rid = table_->Insert(MakeTrade(100, 9, 1.0, 0.1)).value();
  table_->Insert(MakeTrade(100, 9, 2.0, 0.1)).value();
  ASSERT_TRUE(table_->Delete(rid).ok());
  std::string key = EncodeKey({Datum::Int64(9)});
  auto it = table_->IndexScan(1, key, key).value();
  int count = 0;
  while (it.Valid()) {
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 1);
  EXPECT_EQ(table_->row_count(), 1);
}

TEST_F(TableTest, CommitWritesWal) {
  for (int i = 0; i < 10; ++i) {
    table_->Insert(MakeTrade(i, 1, 1.0, 0.1)).value();
  }
  EXPECT_EQ(table_->wal_bytes_written(), 0u);
  ASSERT_TRUE(table_->Commit().ok());
  uint64_t after_one = table_->wal_bytes_written();
  EXPECT_GT(after_one, 0u);
  // Empty commit writes nothing.
  ASSERT_TRUE(table_->Commit().ok());
  EXPECT_EQ(table_->wal_bytes_written(), after_one);
}

TEST_F(TableTest, AutocommitWritesMoreWalThanBatched) {
  Database db_auto(EngineProfile::Rdb());
  Table* t_auto = db_auto.CreateTable("t", TradeSchema()).value();
  Database db_batch(EngineProfile::Rdb());
  Table* t_batch = db_batch.CreateTable("t", TradeSchema()).value();
  for (int i = 0; i < 100; ++i) {
    t_auto->Insert(MakeTrade(i, 1, 1.0, 0.1)).value();
    ODH_CHECK_OK(t_auto->Commit());
    t_batch->Insert(MakeTrade(i, 1, 1.0, 0.1)).value();
  }
  ODH_CHECK_OK(t_batch->Commit());
  EXPECT_GT(t_auto->wal_bytes_written(), 2 * t_batch->wal_bytes_written());
}

TEST_F(TableTest, FullScanSeesAllRows) {
  for (int i = 0; i < 30; ++i) {
    table_->Insert(MakeTrade(i, i, i * 1.0, 0.0)).value();
  }
  auto it = table_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  int count = 0;
  while (it.Valid()) {
    Row row = it.row().value();
    EXPECT_EQ(row.size(), 4u);
    ++count;
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_EQ(count, 30);
}

TEST_F(TableTest, GetColumnsProjection) {
  Rid rid = table_->Insert(MakeTrade(55, 66, 7.5, 0.25)).value();
  Row row = table_->GetColumns(rid, {1, 3}).value();
  EXPECT_TRUE(row[0].is_null());
  EXPECT_EQ(row[1], Datum::Int64(66));
  EXPECT_TRUE(row[2].is_null());
  EXPECT_EQ(row[3], Datum::Double(0.25));
}

TEST_F(TableTest, FindIndexOnColumn) {
  EXPECT_EQ(table_->FindIndexOnColumn(0), 0);
  EXPECT_EQ(table_->FindIndexOnColumn(1), 1);
  EXPECT_EQ(table_->FindIndexOnColumn(2), -1);
}

TEST(DatabaseTest, CreateAndLookupTables) {
  Database db;
  ASSERT_TRUE(db.CreateTable("A", TradeSchema()).ok());
  EXPECT_TRUE(db.GetTable("a").ok());
  EXPECT_TRUE(db.GetTable("A").ok());
  EXPECT_TRUE(db.CreateTable("a", TradeSchema()).status().code() ==
              StatusCode::kAlreadyExists);
  EXPECT_TRUE(db.GetTable("missing").status().IsNotFound());
  EXPECT_EQ(db.ListTables().size(), 1u);
}

TEST(DatabaseTest, ProfilesDifferInRowOverhead) {
  Database rdb(EngineProfile::Rdb());
  Database mysql(EngineProfile::MySql());
  Table* tr = rdb.CreateTable("t", TradeSchema()).value();
  Table* tm = mysql.CreateTable("t", TradeSchema()).value();
  for (int i = 0; i < 2000; ++i) {
    Row row = MakeTrade(i, i % 7, 1.5, 0.1);
    tr->Insert(row).value();
    tm->Insert(row).value();
  }
  ODH_CHECK_OK(tr->Commit());
  ODH_CHECK_OK(tm->Commit());
  EXPECT_GT(mysql.TotalBytesStored(), rdb.TotalBytesStored());
}

struct TablePropertyParam {
  uint64_t seed;
  int rows;
};

class TablePropertyTest
    : public ::testing::TestWithParam<TablePropertyParam> {};

TEST_P(TablePropertyTest, IndexScanMatchesFullScanFilter) {
  Database db;
  Table* table = db.CreateTable("t", TradeSchema()).value();
  ODH_CHECK_OK(table->AddIndex({"by_account", {1}}));
  Random rng(GetParam().seed);
  std::map<int64_t, int> expected_per_account;
  for (int i = 0; i < GetParam().rows; ++i) {
    int64_t account = static_cast<int64_t>(rng.Uniform(20));
    table->Insert(MakeTrade(i, account, rng.NextDouble(), 0.0)).value();
    ++expected_per_account[account];
  }
  for (const auto& [account, expected] : expected_per_account) {
    std::string key = EncodeKey({Datum::Int64(account)});
    auto it = table->IndexScan(0, key, key).value();
    int count = 0;
    while (it.Valid()) {
      ++count;
      ODH_CHECK_OK(it.Next());
    }
    EXPECT_EQ(count, expected) << account;
  }
}

INSTANTIATE_TEST_SUITE_P(RandomRows, TablePropertyTest,
                         ::testing::Values(TablePropertyParam{1, 500},
                                           TablePropertyParam{2, 2000},
                                           TablePropertyParam{3, 100}));

// Regression: entries sharing an index key must iterate in insertion order
// even when their heap pages span the byte boundaries of the Rid encoding
// (Rids uniquify index keys and must be memcmp-ordered).
TEST(TableOrderingTest, EqualKeysIterateInInsertionOrder) {
  Database db;
  Table* table =
      db.CreateTable("t", Schema({{"k", DataType::kInt64},
                                  {"seq", DataType::kInt64},
                                  {"pad", DataType::kString}}))
          .value();
  ODH_CHECK_OK(table->AddIndex({"by_k", {0}}));
  // Large padding forces many heap pages (page numbers beyond one byte).
  std::string pad(512, 'x');
  const int n = 3000;
  for (int i = 0; i < n; ++i) {
    table->Insert({Datum::Int64(7), Datum::Int64(i), Datum::String(pad)})
        .value();
  }
  std::string key = EncodeKey({Datum::Int64(7)});
  auto it = table->IndexScan(0, key, key).value();
  int64_t expected = 0;
  while (it.Valid()) {
    Row row = table->Get(it.rid()).value();
    ASSERT_EQ(row[1], Datum::Int64(expected)) << expected;
    ++expected;
    ODH_CHECK_OK(it.Next());
  }
  EXPECT_EQ(expected, n);
}

TEST(TableOrderingTest, DropTableReleasesStorage) {
  Database db;
  Table* table = db.CreateTable("t", TradeSchema()).value();
  ODH_CHECK_OK(table->AddIndex({"by_ts", {0}}));
  for (int i = 0; i < 500; ++i) {
    table->Insert(MakeTrade(i, i, 1.0, 0.1)).value();
  }
  ODH_CHECK_OK(table->Commit());
  uint64_t before = db.TotalBytesStored();
  ASSERT_GT(before, 0u);
  ODH_CHECK_OK(db.DropTable("t"));
  EXPECT_LT(db.TotalBytesStored(), before / 4);
  EXPECT_TRUE(db.GetTable("t").status().IsNotFound());
  EXPECT_TRUE(db.DropTable("t").IsNotFound());
  // The name can be reused.
  EXPECT_TRUE(db.CreateTable("t", TradeSchema()).ok());
}

}  // namespace
}  // namespace odh::relational
