#include "core/odh.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "common/logging.h"
#include "common/random.h"

namespace odh::core {
namespace {

OdhOptions TestOptions(bool sql_router = false) {
  OdhOptions options;
  options.batch_size = 16;
  options.mg_group_size = 8;
  options.sql_metadata_router = sql_router;
  return options;
}

/// End-to-end fixture: one high-frequency environment schema type plus a
/// relational sensor_info table (the paper's running example).
class OdhSystemTest : public ::testing::Test {
 protected:
  OdhSystemTest() : odh_(TestOptions()) {
    type_ = odh_.DefineSchemaType("environ_data",
                                  {"temperature", "wind"}).value();
    for (SourceId id = 1; id <= 4; ++id) {
      ODH_CHECK_OK(odh_.RegisterSource(id, type_, kMicrosPerSecond, true));
    }
    Exec("CREATE TABLE sensor_info (id BIGINT, area VARCHAR)");
    Exec("INSERT INTO sensor_info VALUES (1,'S1'), (2,'S1'), (3,'S2'), "
         "(4,'S2')");
    // 100 seconds of data for each sensor.
    for (int i = 0; i < 100; ++i) {
      for (SourceId id = 1; id <= 4; ++id) {
        OperationalRecord r{id, i * kMicrosPerSecond,
                            {20.0 + id + 0.01 * i, 3.0 * id}};
        ODH_CHECK_OK(odh_.Ingest(r));
      }
    }
    ODH_CHECK_OK(odh_.FlushAll());
  }

  sql::QueryResult Exec(const std::string& sql) {
    auto result = odh_.engine()->Execute(sql);
    if (!result.ok()) {
      ADD_FAILURE() << sql << " -> " << result.status().ToString();
      return sql::QueryResult{};
    }
    return std::move(result).value();
  }

  OdhSystem odh_;
  int type_;
};

TEST_F(OdhSystemTest, VirtualTableExposesAllData) {
  sql::QueryResult r = Exec("SELECT COUNT(*) FROM environ_data_v");
  EXPECT_EQ(r.rows[0][0], Datum::Int64(400));
}

TEST_F(OdhSystemTest, HistoricalQueryThroughSql) {
  sql::QueryResult r = Exec("SELECT * FROM environ_data_v WHERE id = 2");
  EXPECT_EQ(r.rows.size(), 100u);
  for (const Row& row : r.rows) EXPECT_EQ(row[0], Datum::Int64(2));
}

TEST_F(OdhSystemTest, SliceQueryThroughSql) {
  sql::QueryResult r = Exec(
      "SELECT id, ts, temperature FROM environ_data_v WHERE ts BETWEEN "
      "'1970-01-01 00:00:10' AND '1970-01-01 00:00:19'");
  EXPECT_EQ(r.rows.size(), 4u * 10);
}

TEST_F(OdhSystemTest, PaperFusionQuery) {
  // The paper's §3 example: virtual table joined with sensor_info.
  sql::QueryResult r = Exec(
      "SELECT ts, temperature, wind FROM environ_data_v a, sensor_info b "
      "WHERE a.id = b.id AND b.area = 'S1' AND ts BETWEEN "
      "'1970-01-01 00:00:00' AND '1970-01-01 00:00:49'");
  // Sensors 1 and 2, 50 seconds each.
  EXPECT_EQ(r.rows.size(), 100u);
}

TEST_F(OdhSystemTest, TagValuesSurviveRoundTrip) {
  sql::QueryResult r = Exec(
      "SELECT temperature, wind FROM environ_data_v WHERE id = 3 AND "
      "ts = '1970-01-01 00:00:42'");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(r.rows[0][0].double_value(), 20.0 + 3 + 0.42);
  EXPECT_DOUBLE_EQ(r.rows[0][1].double_value(), 9.0);
}

TEST_F(OdhSystemTest, AggregationOverVirtualTable) {
  sql::QueryResult r = Exec(
      "SELECT id, AVG(wind) FROM environ_data_v GROUP BY id ORDER BY id");
  ASSERT_EQ(r.rows.size(), 4u);
  for (int i = 0; i < 4; ++i) {
    EXPECT_DOUBLE_EQ(r.rows[i][1].double_value(), 3.0 * (i + 1));
  }
}

TEST_F(OdhSystemTest, DirtyReadSeesUnflushedData) {
  OperationalRecord r{1, 200 * kMicrosPerSecond, {99.0, 98.0}};
  ODH_CHECK_OK(odh_.Ingest(r));  // Stays in the writer buffer (batch 16).
  sql::QueryResult q = Exec(
      "SELECT temperature FROM environ_data_v WHERE id = 1 AND ts > "
      "'1970-01-01 00:03:00'");
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_DOUBLE_EQ(q.rows[0][0].double_value(), 99.0);
}

TEST_F(OdhSystemTest, NativeHistoricalMatchesSql) {
  auto cursor = odh_.HistoricalQuery(type_, 2, 0, kMaxTimestamp).value();
  int count = 0;
  OperationalRecord record;
  double temp_sum = 0;
  while (cursor->Next(&record).value()) {
    EXPECT_EQ(record.id, 2);
    temp_sum += record.tags[0];
    ++count;
  }
  EXPECT_EQ(count, 100);
  sql::QueryResult r =
      Exec("SELECT SUM(temperature) FROM environ_data_v WHERE id = 2");
  EXPECT_NEAR(r.rows[0][0].double_value(), temp_sum, 1e-9);
}

TEST_F(OdhSystemTest, NativeSliceMatchesSql) {
  Timestamp lo = 10 * kMicrosPerSecond, hi = 12 * kMicrosPerSecond;
  auto cursor = odh_.SliceQuery(type_, lo, hi).value();
  int count = 0;
  OperationalRecord record;
  while (cursor->Next(&record).value()) ++count;
  EXPECT_EQ(count, 12);  // 4 sensors x 3 seconds.
}

TEST_F(OdhSystemTest, WantedTagsLimitDecoding) {
  auto cursor =
      odh_.HistoricalQuery(type_, 1, 0, kMaxTimestamp, {1}).value();
  OperationalRecord record;
  ASSERT_TRUE(cursor->Next(&record).value());
  EXPECT_TRUE(std::isnan(record.tags[0]));  // temperature not decoded.
  EXPECT_FALSE(std::isnan(record.tags[1]));
}

TEST_F(OdhSystemTest, ProjectionPushdownReducesBlobBytes) {
  odh_.reader()->ResetStats();
  Exec("SELECT wind FROM environ_data_v WHERE id = 1");
  int64_t narrow = odh_.reader()->stats().blob_bytes_read;
  // blob_bytes_read counts whole blobs fetched; the tag-oriented saving
  // shows up in decode work, which we proxy by comparing a full-row query's
  // decoded output. Here we simply check both paths return data and the
  // stats counter moves.
  EXPECT_GT(narrow, 0);
}

TEST_F(OdhSystemTest, SqlRouterModeWorksAndCountsLookups) {
  OdhSystem odh(TestOptions(/*sql_router=*/true));
  int type = odh.DefineSchemaType("t", {"v"}).value();
  ODH_CHECK_OK(odh.RegisterSource(1, type, kMicrosPerSecond, true));
  for (int i = 0; i < 20; ++i) {
    ODH_CHECK_OK(odh.Ingest({1, i * kMicrosPerSecond, {1.0 * i}}));
  }
  ODH_CHECK_OK(odh.FlushAll());
  auto r = odh.engine()->Execute("SELECT COUNT(*) FROM t_v WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(20));
  EXPECT_GE(odh.router()->lookups(), 1);
}

TEST_F(OdhSystemTest, UnregisteredSourceHistoricalFails) {
  EXPECT_FALSE(odh_.HistoricalQuery(type_, 99, 0, kMaxTimestamp).ok());
}

TEST_F(OdhSystemTest, CostModelScalesWithRangeAndTags) {
  OdhCostModel* model = odh_.cost_model();
  auto full = model->EstimateHistorical(type_, 1, 0, kMaxTimestamp, 1.0);
  auto half = model->EstimateHistorical(type_, 1, 0,
                                        50 * kMicrosPerSecond, 1.0);
  EXPECT_GT(full.bytes, 0);
  EXPECT_LT(half.bytes, full.bytes);
  auto one_tag = model->EstimateHistorical(type_, 1, 0, kMaxTimestamp, 0.5);
  EXPECT_LT(one_tag.bytes, full.bytes);
  auto slice = model->EstimateSlice(type_, 0, kMaxTimestamp, 1.0);
  EXPECT_GT(slice.bytes, full.bytes);  // All sources vs one.
}

TEST(OdhStorageTest, StorageSmallerThanRelationalBaseline) {
  // Enough data that fixed page overheads wash out: 8 sensors x 2000 s.
  OdhSystem odh_(TestOptions());
  int type_ = odh_.DefineSchemaType("environ_data",
                                    {"temperature", "wind"}).value();
  for (SourceId id = 1; id <= 8; ++id) {
    ODH_CHECK_OK(odh_.RegisterSource(id, type_, kMicrosPerSecond, true));
  }
  for (int i = 0; i < 2000; ++i) {
    for (SourceId id = 1; id <= 8; ++id) {
      ODH_CHECK_OK(odh_.Ingest({id, i * kMicrosPerSecond,
                                {20.0 + id + 0.01 * i, 3.0 * id}}));
    }
  }
  ODH_CHECK_OK(odh_.FlushAll());

  // Same data into an RDB-profile relational table with the paper's two
  // indexes; ODH storage must be several times smaller.
  relational::Database rdb(relational::EngineProfile::Rdb());
  relational::Table* table =
      rdb.CreateTable("obs", relational::Schema(
                                 {{"ts", DataType::kTimestamp},
                                  {"id", DataType::kInt64},
                                  {"temperature", DataType::kDouble},
                                  {"wind", DataType::kDouble}}))
          .value();
  ODH_CHECK_OK(table->AddIndex({"by_ts", {0}}));
  ODH_CHECK_OK(table->AddIndex({"by_id", {1}}));
  for (int i = 0; i < 2000; ++i) {
    for (SourceId id = 1; id <= 8; ++id) {
      table
          ->Insert({Datum::Time(i * kMicrosPerSecond), Datum::Int64(id),
                    Datum::Double(20.0 + id + 0.01 * i),
                    Datum::Double(3.0 * id)})
          .value();
    }
  }
  ODH_CHECK_OK(table->Commit());
  EXPECT_LT(odh_.storage_bytes() * 2, rdb.TotalBytesStored());
}

TEST_F(OdhSystemTest, LowFrequencyEndToEnd) {
  OdhSystem odh(TestOptions());
  int type = odh.DefineSchemaType("meters", {"kwh"}).value();
  for (SourceId id = 0; id < 20; ++id) {
    ODH_CHECK_OK(
        odh.RegisterSource(id, type, 15 * kMicrosPerMinute, true));
  }
  for (int reading = 0; reading < 4; ++reading) {
    for (SourceId id = 0; id < 20; ++id) {
      ODH_CHECK_OK(odh.Ingest(
          {id, reading * 15 * kMicrosPerMinute, {100.0 * id + reading}}));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());
  EXPECT_GT(odh.writer()->stats().mg_blobs, 0);
  // Slice: one reading round across all meters.
  auto r = odh.engine()->Execute(
      "SELECT COUNT(*) FROM meters_v WHERE ts = '1970-01-01 00:15:00'");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(20));
  // Historical: one meter across readings (served from MG before reorg).
  auto h = odh.engine()->Execute(
      "SELECT COUNT(*), MAX(kwh) FROM meters_v WHERE id = 7");
  ASSERT_TRUE(h.ok());
  EXPECT_EQ(h->rows[0][0], Datum::Int64(4));
  EXPECT_DOUBLE_EQ(h->rows[0][1].double_value(), 703.0);
}

class OdhPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(OdhPropertyTest, SqlAndNativeAgreeOnRandomWorkload) {
  OdhOptions options;
  options.batch_size = 7;  // Awkward batch size exercises partial blobs.
  options.mg_group_size = 3;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("rand", {"x", "y", "z"}).value();
  Random rng(GetParam());
  const int num_sources = 6;
  std::vector<Timestamp> clocks(num_sources, 0);
  for (SourceId id = 0; id < num_sources; ++id) {
    bool high = rng.OneIn(2);
    ODH_CHECK_OK(odh.RegisterSource(
        id, type, high ? kMicrosPerSecond / 10 : 20 * kMicrosPerMinute,
        rng.OneIn(2)));
  }
  int64_t expected_total = 0;
  std::map<SourceId, int> per_source;
  for (int i = 0; i < 500; ++i) {
    SourceId id = static_cast<SourceId>(rng.Uniform(num_sources));
    clocks[id] += rng.Uniform(2 * kMicrosPerMinute) + 1;
    OperationalRecord r{id, clocks[id],
                        {rng.NextDouble(), rng.NextDouble(),
                         rng.OneIn(3) ? std::nan("") : rng.NextDouble()}};
    ODH_CHECK_OK(odh.Ingest(r));
    ++expected_total;
    ++per_source[id];
  }
  if (rng.OneIn(2)) ODH_CHECK_OK(odh.FlushAll());

  auto total = odh.engine()->Execute("SELECT COUNT(*) FROM rand_v");
  ASSERT_TRUE(total.ok());
  EXPECT_EQ(total->rows[0][0], Datum::Int64(expected_total));

  for (const auto& [id, expected] : per_source) {
    auto cursor = odh.HistoricalQuery(type, id, 0, kMaxTimestamp).value();
    int count = 0;
    OperationalRecord rec;
    while (cursor->Next(&rec).value()) {
      EXPECT_EQ(rec.id, id);
      ++count;
    }
    EXPECT_EQ(count, expected) << "source " << id;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OdhPropertyTest,
                         ::testing::Values(101, 102, 103, 104, 105));

}  // namespace
}  // namespace odh::core
