// Cursor poison contract over a fault-injecting SimDisk: once a scan
// cursor returns a non-OK Next, every later Next must return the SAME
// error — never a fresh attempt that silently skips the failed blob and
// truncates the result, and never a crash. Regression for the contract
// documented in sql/table_provider.h, exercised end to end: the fault is
// injected at the disk, surfaces through the buffer pool's bounded
// retries, and must stick at the record cursor, the SQL streaming cursor
// and the vectorized batch adapter alike.

#include <gtest/gtest.h>

#include <string>

#include "common/logging.h"
#include "core/odh.h"
#include "sql/session.h"
#include "storage/fault_policy.h"

namespace odh::core {
namespace {

constexpr SourceId kSource = 1;
constexpr int kPoints = 60000;  // ~40 blobs at batch_size 1500.

/// A historian whose working set does not fit the buffer pool, so a scan
/// must touch the disk mid-flight — where the fault policy is waiting.
class CursorPoisonTest : public ::testing::Test {
 protected:
  CursorPoisonTest() : odh_(SmallPool()) {
    int type = odh_.DefineSchemaType("env", {"temperature", "wind"}).value();
    ODH_CHECK_OK(odh_.RegisterSource(kSource, type, kMicrosPerSecond,
                                     /*regular=*/true));
    // Hash-noise tags: linear compression cannot shrink them, so the
    // flushed blobs genuinely exceed the 64-page pool and a full scan
    // must go back to disk.
    for (int i = 0; i < kPoints; ++i) {
      double noise_a = static_cast<double>((i * 1103515245u + 12345u) % 1000);
      double noise_b = static_cast<double>((i * 48271u + 7u) % 997);
      ODH_CHECK_OK(odh_.Ingest(
          {kSource, i * kMicrosPerSecond, {noise_a * 0.01, noise_b * 0.1}}));
    }
    ODH_CHECK_OK(odh_.FlushAll());
    type_ = type;
  }

  static OdhOptions SmallPool() {
    OdhOptions options;
    options.pool_pages = 64;  // Far smaller than the flushed data.
    options.batch_size = 1500;
    return options;
  }

  /// All reads fail from now on (transient faults at rate 1.0 exhaust the
  /// buffer pool's bounded retries and surface as Unavailable).
  void KillDisk() {
    policy_.set_read_fault_rate(1.0);
    odh_.database()->disk()->set_fault_policy(&policy_);
  }

  OdhSystem odh_;
  int type_ = 0;
  storage::FaultPolicy policy_{/*seed=*/7};
};

TEST_F(CursorPoisonTest, RecordCursorSticksToFirstError) {
  // Slice scans stream blob rows off the store tables as they go (a
  // historical scan preloads its blob list at open, before the fault).
  auto cursor = odh_.SliceQuery(type_, 0, kMaxTimestamp);
  ASSERT_TRUE(cursor.ok());
  OperationalRecord record;
  // A healthy prefix: the first blob decodes from cache/disk normally.
  ASSERT_TRUE((*cursor)->Next(&record).value());
  KillDisk();
  // Drive until the first refill fails.
  Result<bool> more = true;
  while (more.ok() && more.value()) more = (*cursor)->Next(&record);
  ASSERT_FALSE(more.ok()) << "scan survived a dead disk";
  const std::string first = more.status().ToString();
  // Poisoned: same error, forever, even after the disk heals.
  for (int i = 0; i < 3; ++i) {
    Result<bool> again = (*cursor)->Next(&record);
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(first, again.status().ToString());
  }
  odh_.database()->disk()->set_fault_policy(nullptr);
  Result<bool> healed = (*cursor)->Next(&record);
  ASSERT_FALSE(healed.ok()) << "cursor forgot its poison when the disk healed";
  EXPECT_EQ(first, healed.status().ToString());
}

TEST_F(CursorPoisonTest, SqlStreamingCursorSticksToFirstError) {
  sql::Session session(odh_.engine());
  // No id predicate: the planner routes this as a slice scan, which
  // reads store pages incrementally — mid-stream faults reach the cursor.
  auto stream = session.ExecuteStreaming("SELECT ts, temperature FROM env_v");
  ASSERT_TRUE(stream.ok()) << stream.status().ToString();
  Row row;
  ASSERT_TRUE((*stream)->Next(&row).value());
  KillDisk();
  Result<bool> more = true;
  while (more.ok() && more.value()) more = (*stream)->Next(&row);
  ASSERT_FALSE(more.ok()) << "stream survived a dead disk";
  const std::string first = more.status().ToString();
  for (int i = 0; i < 3; ++i) {
    Result<bool> again = (*stream)->Next(&row);
    ASSERT_FALSE(again.ok());
    EXPECT_EQ(first, again.status().ToString());
  }
  // A poisoned stream reports the error through its profile-free terminal
  // state; the session itself stays usable for the next statement.
  odh_.database()->disk()->set_fault_policy(nullptr);
  auto retry = session.Execute("SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_EQ(retry->rows[0][0], Datum::Int64(kPoints));
}

TEST_F(CursorPoisonTest, MaterializedExecutionReportsErrorNotTruncation) {
  sql::Session session(odh_.engine());
  KillDisk();
  // Aggregate pushdown still reads blob summaries from disk; whichever
  // path runs, the result must be an error — not a truncated row set.
  auto result = session.Execute("SELECT ts FROM env_v WHERE id = 1");
  EXPECT_FALSE(result.ok()) << "materialized scan over a dead disk returned "
                            << result->rows.size() << " rows";
}

}  // namespace
}  // namespace odh::core
