#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"

namespace odh::core {
namespace {

/// Satellite regressions for the partition-elimination boundary audit:
/// a time predicate landing exactly on a blob boundary (inclusive start,
/// exclusive end) must neither drop nor double-read the edge blob on any
/// of the three scan paths.
///
/// Layout: 10 RTS blobs of 50 one-second points for source 1, so blob k
/// covers seconds [50k, 50k+49] and second 50k is a blob boundary.
class ScanBoundaryTest : public ::testing::Test {
 protected:
  ScanBoundaryTest() {
    OdhOptions options;
    options.batch_size = 50;
    options.sql_metadata_router = false;
    odh_ = std::make_unique<OdhSystem>(options);
    type_ = odh_->DefineSchemaType("m", {"temp"}).value();
    ODH_CHECK_OK(odh_->RegisterSource(1, type_, kMicrosPerSecond, true));
    for (int i = 0; i < 500; ++i) {
      ODH_CHECK_OK(odh_->Ingest({1, i * kMicrosPerSecond, {1.0 * i}}));
    }
    ODH_CHECK_OK(odh_->FlushAll());
  }

  std::string TsLiteral(int64_t second) {
    return "'" + FormatTimestamp(second * kMicrosPerSecond) + "'";
  }

  /// Runs `query` on all three scan paths and checks every path returns
  /// identical rows; returns the row-path result.
  sql::QueryResult AllPaths(const std::string& query) {
    odh_->config()->SetScanPathOptions(true, true);
    auto pushed = odh_->engine()->Execute(query);
    odh_->config()->SetScanPathOptions(true, false);
    auto vectorized = odh_->engine()->Execute(query);
    odh_->config()->SetScanPathOptions(false, false);
    auto rowwise = odh_->engine()->Execute(query);
    odh_->config()->SetScanPathOptions(true, true);
    ODH_CHECK(pushed.ok());
    ODH_CHECK(vectorized.ok());
    ODH_CHECK(rowwise.ok());
    EXPECT_EQ(pushed->rows.size(), rowwise->rows.size()) << query;
    EXPECT_EQ(vectorized->rows.size(), rowwise->rows.size()) << query;
    const size_t n = std::min(
        {pushed->rows.size(), vectorized->rows.size(), rowwise->rows.size()});
    for (size_t r = 0; r < n; ++r) {
      for (size_t c = 0; c < rowwise->rows[r].size(); ++c) {
        EXPECT_EQ(pushed->rows[r][c], rowwise->rows[r][c])
            << query << " row " << r << " col " << c << " (pushdown)";
        EXPECT_EQ(vectorized->rows[r][c], rowwise->rows[r][c])
            << query << " row " << r << " col " << c << " (vectorized)";
      }
    }
    return std::move(*rowwise);
  }

  std::unique_ptr<OdhSystem> odh_;
  int type_;
};

TEST_F(ScanBoundaryTest, HalfOpenRangeOnBlobBoundary) {
  // [100, 150): exactly blob 2; the edge blob starting at second 150 must
  // not leak its first point, and second 100 must not be dropped.
  const std::string where = " FROM m_v WHERE id = 1 AND ts >= " +
                            TsLiteral(100) + " AND ts < " + TsLiteral(150);
  sql::QueryResult agg =
      AllPaths("SELECT COUNT(*), SUM(temp), MIN(temp), MAX(temp)" + where);
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0][0], Datum::Int64(50));
  EXPECT_EQ(agg.rows[0][1], Datum::Double(6225.0));  // sum 100..149
  EXPECT_EQ(agg.rows[0][2], Datum::Double(100.0));
  EXPECT_EQ(agg.rows[0][3], Datum::Double(149.0));

  sql::QueryResult rows = AllPaths("SELECT ts, temp" + where);
  ASSERT_EQ(rows.rows.size(), 50u);
  EXPECT_EQ(rows.rows.front()[1], Datum::Double(100.0));
  EXPECT_EQ(rows.rows.back()[1], Datum::Double(149.0));
}

TEST_F(ScanBoundaryTest, ExclusiveLowerBoundOnBlobBoundary) {
  // (150, 200]: the blob starting exactly at 150 contributes 151..199 and
  // the next blob contributes its first point only.
  const std::string where = " FROM m_v WHERE id = 1 AND ts > " +
                            TsLiteral(150) + " AND ts <= " + TsLiteral(200);
  sql::QueryResult agg =
      AllPaths("SELECT COUNT(*), MIN(temp), MAX(temp)" + where);
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0][0], Datum::Int64(50));
  EXPECT_EQ(agg.rows[0][1], Datum::Double(151.0));
  EXPECT_EQ(agg.rows[0][2], Datum::Double(200.0));
}

TEST_F(ScanBoundaryTest, EqualityOnBlobBoundary) {
  const std::string query = "SELECT COUNT(*), MIN(temp), MAX(temp) FROM m_v "
                            "WHERE id = 1 AND ts = " +
                            TsLiteral(250);
  sql::QueryResult agg = AllPaths(query);
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0][0], Datum::Int64(1));
  EXPECT_EQ(agg.rows[0][1], Datum::Double(250.0));
  EXPECT_EQ(agg.rows[0][2], Datum::Double(250.0));
}

TEST_F(ScanBoundaryTest, EmptyHalfOpenRangeOnBoundary) {
  // [150, 150) is empty; no path may resurrect the boundary point.
  sql::QueryResult agg = AllPaths(
      "SELECT COUNT(*), SUM(temp) FROM m_v WHERE id = 1 AND ts >= " +
      TsLiteral(150) + " AND ts < " + TsLiteral(150));
  ASSERT_EQ(agg.rows.size(), 1u);
  EXPECT_EQ(agg.rows[0][0], Datum::Int64(0));
  EXPECT_EQ(agg.rows[0][1], Datum::Null());
}

TEST_F(ScanBoundaryTest, RedundantBoundsKeepExclusiveSemantics) {
  // Merging `ts BETWEEN a AND b` with `ts < b` must keep the strict upper
  // bound regardless of conjunct order (regression: the looser inclusive
  // bound used to win the merge when the values tied).
  for (const std::string& where :
       {" FROM m_v WHERE id = 1 AND ts < " + TsLiteral(150) +
            " AND ts BETWEEN " + TsLiteral(100) + " AND " + TsLiteral(150),
        " FROM m_v WHERE id = 1 AND ts BETWEEN " + TsLiteral(100) + " AND " +
            TsLiteral(150) + " AND ts < " + TsLiteral(150),
        " FROM m_v WHERE id = 1 AND ts >= " + TsLiteral(100) +
            " AND ts <= " + TsLiteral(150) + " AND ts < " + TsLiteral(150)}) {
    sql::QueryResult agg = AllPaths("SELECT COUNT(*), MAX(temp)" + where);
    ASSERT_EQ(agg.rows.size(), 1u);
    EXPECT_EQ(agg.rows[0][0], Datum::Int64(50)) << where;
    EXPECT_EQ(agg.rows[0][1], Datum::Double(149.0)) << where;
  }
  // Same on the lower bound: `ts > a` must survive a later `ts >= a`.
  for (const std::string& where :
       {" FROM m_v WHERE id = 1 AND ts > " + TsLiteral(150) + " AND ts >= " +
            TsLiteral(150) + " AND ts <= " + TsLiteral(200),
        " FROM m_v WHERE id = 1 AND ts >= " + TsLiteral(150) + " AND ts > " +
            TsLiteral(150) + " AND ts <= " + TsLiteral(200)}) {
    sql::QueryResult agg = AllPaths("SELECT COUNT(*), MIN(temp)" + where);
    ASSERT_EQ(agg.rows.size(), 1u);
    EXPECT_EQ(agg.rows[0][0], Datum::Int64(50)) << where;
    EXPECT_EQ(agg.rows[0][1], Datum::Double(151.0)) << where;
  }
}

TEST_F(ScanBoundaryTest, NativeScanHalfOpenViaInclusiveMicros) {
  // The native API takes inclusive [lo, hi]; hi = boundary - 1 micro must
  // exclude the edge blob's first point exactly.
  auto cursor = odh_->HistoricalQuery(type_, 1, 100 * kMicrosPerSecond,
                                      150 * kMicrosPerSecond - 1);
  ASSERT_TRUE(cursor.ok());
  int64_t n = 0;
  OperationalRecord rec;
  while (true) {
    auto more = (*cursor)->Next(&rec);
    ASSERT_TRUE(more.ok());
    if (!*more) break;
    EXPECT_GE(rec.ts, 100 * kMicrosPerSecond);
    EXPECT_LT(rec.ts, 150 * kMicrosPerSecond);
    ++n;
  }
  EXPECT_EQ(n, 50);
}

TEST(MgBoundaryTest, SliceHalfOpenOnMgWindowBoundary) {
  // Low-frequency sources land in MG blobs; the same half-open boundary
  // contract must hold on the MG scan path (begin_ts index + group filter).
  OdhOptions options;
  options.batch_size = 10;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("lf", {"v"}).value();
  ODH_CHECK_OK(odh.RegisterSource(7, type, 10 * kMicrosPerSecond, false));
  for (int i = 0; i < 40; ++i) {
    ODH_CHECK_OK(odh.Ingest({7, i * 10 * kMicrosPerSecond, {1.0 * i}}));
  }
  ODH_CHECK_OK(odh.FlushAll());

  // Blobs hold 10 records each: [0,90], [100,190], [200,290], [300,390]
  // seconds*10. Query [100s, 300s) must return exactly records 10..29.
  const std::string query =
      "SELECT COUNT(*), MIN(v), MAX(v) FROM lf_v WHERE ts >= '" +
      FormatTimestamp(100 * kMicrosPerSecond) + "' AND ts < '" +
      FormatTimestamp(300 * kMicrosPerSecond) + "'";
  for (const auto& [vec, push] :
       std::vector<std::pair<bool, bool>>{{true, true}, {true, false},
                                          {false, false}}) {
    odh.config()->SetScanPathOptions(vec, push);
    auto r = odh.engine()->Execute(query);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->rows[0][0], Datum::Int64(20)) << vec << push;
    EXPECT_EQ(r->rows[0][1], Datum::Double(10.0)) << vec << push;
    EXPECT_EQ(r->rows[0][2], Datum::Double(29.0)) << vec << push;
  }
}

}  // namespace
}  // namespace odh::core
