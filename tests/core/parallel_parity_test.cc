// Parallel-vs-serial twin parity: every query of a bench-shaped workload
// must return the same answer with query_parallelism 0 and N. Scan rows
// are compared EXACTLY in emission order — the parallel merge promises a
// byte-identical stream, not just the same set — while aggregate doubles
// get a relative tolerance (partial-accumulator merge reassociates sums).

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "sql/session.h"

namespace odh::core {
namespace {

constexpr Timestamp kSpan = 100 * kMicrosPerSecond;
constexpr int kSeconds = 500;
constexpr Timestamp kMeterStep = 15 * kMicrosPerMinute;
constexpr int kMeterReadings = 8;

bool DatumsClose(const Datum& a, const Datum& b) {
  if (a.is_double() && b.is_double()) {
    const double x = a.double_value();
    const double y = b.double_value();
    if (x == y) return true;
    if (std::isnan(x) && std::isnan(y)) return true;
    return std::fabs(x - y) <=
           1e-9 * std::max(std::fabs(x), std::fabs(y));
  }
  return a == b;
}

/// Two types in one historian, bench-shaped: a segmented env type whose
/// history spans five segments of RTS + IRTS blobs, and a metered type
/// left half-reorganized so queries cross an MG + RTS structure boundary.
class ParallelParityTest : public ::testing::Test {
 protected:
  static OdhOptions Opts() {
    OdhOptions options;
    options.batch_size = 25;
    options.segment_span = kSpan;
    options.query_parallelism = 4;
    options.mg_group_size = 4;
    options.sql_metadata_router = false;
    return options;
  }

  ParallelParityTest() : odh_(Opts()) {
    env_ = odh_.DefineSchemaType("env", {"temperature", "wind"}).value();
    for (SourceId id = 1; id <= 2; ++id) {
      ODH_CHECK_OK(odh_.RegisterSource(id, env_, kMicrosPerSecond, true));
    }
    for (SourceId id = 3; id <= 4; ++id) {
      ODH_CHECK_OK(odh_.RegisterSource(id, env_, kMicrosPerSecond, false));
    }
    for (int i = 0; i < kSeconds; ++i) {
      for (SourceId id = 1; id <= 4; ++id) {
        Timestamp ts = static_cast<Timestamp>(i) * kMicrosPerSecond;
        if (id >= 3) ts += (i % 7) * 1000;
        ODH_CHECK_OK(
            odh_.Ingest({id, ts, {20.0 + id + 0.01 * i, 1.0 * id}}));
      }
    }

    meters_ = odh_.DefineSchemaType("meters", {"kwh"}).value();
    for (SourceId id = 11; id <= 18; ++id) {
      ODH_CHECK_OK(odh_.RegisterSource(id, meters_, kMeterStep, true));
    }
    for (int r = 0; r < kMeterReadings; ++r) {
      for (SourceId id = 11; id <= 18; ++id) {
        ODH_CHECK_OK(
            odh_.Ingest({id, r * kMeterStep, {id * 10.0 + r}}));
      }
    }
    ODH_CHECK_OK(odh_.FlushAll());
    // Reorganize only the first half of the meter history: queries now
    // stitch RTS (old readings) and MG (recent readings) together.
    ODH_CHECK_OK(
        odh_.Reorganize(meters_, (kMeterReadings / 2) * kMeterStep)
            .status());
  }

  /// Materializes `sql` through a throwaway Session.
  std::vector<Row> Materialize(const std::string& sql) {
    auto r = odh_.engine()->Execute(sql);
    ODH_CHECK_OK(r.status());
    return std::move(r->rows);
  }

  /// Streams `sql` row by row through sql::Session::ExecuteStreaming.
  std::vector<Row> Stream(const std::string& sql) {
    sql::Session session(odh_.engine());
    auto stream = session.ExecuteStreaming(sql);
    ODH_CHECK_OK(stream.status());
    std::vector<Row> rows;
    Row row;
    while ((*stream)->Next(&row).value()) rows.push_back(row);
    return rows;
  }

  static void ExpectRowsEqual(const std::vector<Row>& got,
                              const std::vector<Row>& want,
                              const std::string& context) {
    ASSERT_EQ(got.size(), want.size()) << context;
    for (size_t i = 0; i < got.size(); ++i) {
      ASSERT_EQ(got[i].size(), want[i].size()) << context << " row " << i;
      for (size_t c = 0; c < got[i].size(); ++c) {
        EXPECT_TRUE(DatumsClose(got[i][c], want[i][c]))
            << context << " row " << i << " col " << c << ": "
            << got[i][c].ToString() << " vs " << want[i][c].ToString();
      }
    }
  }

  OdhSystem odh_;
  int env_ = 0;
  int meters_ = 0;
};

std::vector<std::string> BenchQuerySet() {
  const auto ts = [](int seconds) {
    return std::to_string(static_cast<Timestamp>(seconds) *
                          kMicrosPerSecond);
  };
  return {
      // TQ1-shaped: full per-source history (RTS, all segments).
      "SELECT id, ts, temperature, wind FROM env_v WHERE id = 1",
      // Jittery source -> IRTS path.
      "SELECT id, ts, temperature FROM env_v WHERE id = 4",
      // TQ2-shaped: per-source range, interior segment subset.
      "SELECT ts, temperature FROM env_v WHERE id = 2 AND ts >= " +
          ts(120) + " AND ts <= " + ts(380),
      // Slice: no id, all sources interleaved by timestamp.
      "SELECT id, ts, wind FROM env_v WHERE ts >= " + ts(150) +
          " AND ts <= " + ts(250),
      // Single-tag projection with a value predicate.
      "SELECT id, ts, temperature FROM env_v WHERE temperature > 23.5",
      // AQ1/AQ3-shaped aggregates (per source and global-range).
      "SELECT COUNT(*), SUM(temperature), AVG(temperature) FROM env_v "
      "WHERE id = 3",
      "SELECT MIN(temperature), MAX(wind), COUNT(*) FROM env_v "
      "WHERE ts >= " + ts(100) + " AND ts <= " + ts(400),
      // LIMIT short-circuits the parallel merge mid-stream.
      "SELECT id, ts, temperature FROM env_v WHERE ts >= " + ts(50) +
          " LIMIT 17",
      // Metered type: MG + RTS structure boundary in one scan.
      "SELECT id, ts, kwh FROM meters_v WHERE id = 12",
      "SELECT id, ts, kwh FROM meters_v",
      "SELECT COUNT(*), SUM(kwh) FROM meters_v WHERE id = 15",
  };
}

TEST_F(ParallelParityTest, ParallelMatchesSerialOnBenchQuerySet) {
  for (bool vectorized : {false, true}) {
    odh_.config()->SetScanPathOptions(vectorized,
                                      /*aggregate_pushdown=*/false);
    for (const std::string& sql : BenchQuerySet()) {
      odh_.config()->SetQueryParallelism(0);
      const std::vector<Row> serial = Materialize(sql);
      odh_.config()->SetQueryParallelism(4);
      const std::vector<Row> parallel = Materialize(sql);
      ExpectRowsEqual(parallel, serial,
                      sql + (vectorized ? " [vec]" : " [row]"));
    }
  }
}

TEST_F(ParallelParityTest, StreamedEqualsMaterializedUnderParallelism) {
  odh_.config()->SetScanPathOptions(false, false);
  odh_.config()->SetQueryParallelism(4);
  for (const std::string& sql : BenchQuerySet()) {
    ExpectRowsEqual(Stream(sql), Materialize(sql), sql + " [stream]");
  }
}

TEST_F(ParallelParityTest, SummaryPushdownAggregatesUnaffected) {
  odh_.config()->SetScanPathOptions(/*vectorized=*/true,
                                    /*aggregate_pushdown=*/true);
  const std::string sql =
      "SELECT COUNT(*), SUM(temperature), MIN(wind), MAX(wind) "
      "FROM env_v WHERE id = 1";
  odh_.config()->SetQueryParallelism(0);
  const std::vector<Row> serial = Materialize(sql);
  odh_.config()->SetQueryParallelism(4);
  ExpectRowsEqual(Materialize(sql), serial, sql + " [pushdown]");
}

TEST_F(ParallelParityTest, NativeCursorsEmitIdenticalStreams) {
  auto drain = [](Result<std::unique_ptr<RecordCursor>> cursor) {
    ODH_CHECK_OK(cursor.status());
    std::vector<std::string> lines;
    OperationalRecord rec;
    while ((*cursor)->Next(&rec).value()) {
      std::string line =
          std::to_string(rec.id) + "@" + std::to_string(rec.ts);
      for (double v : rec.tags) line += "," + std::to_string(v);
      lines.push_back(std::move(line));
    }
    return lines;
  };
  const Timestamp lo = 80 * kMicrosPerSecond;
  const Timestamp hi = 420 * kMicrosPerSecond;
  for (SourceId id : {SourceId{1}, SourceId{3}}) {
    odh_.config()->SetQueryParallelism(0);
    const auto serial = drain(odh_.HistoricalQuery(env_, id, lo, hi));
    odh_.config()->SetQueryParallelism(4);
    EXPECT_EQ(drain(odh_.HistoricalQuery(env_, id, lo, hi)), serial)
        << "id " << id;
  }
  odh_.config()->SetQueryParallelism(0);
  const auto serial_slice = drain(odh_.SliceQuery(env_, lo, hi));
  odh_.config()->SetQueryParallelism(4);
  EXPECT_EQ(drain(odh_.SliceQuery(env_, lo, hi)), serial_slice);

  odh_.config()->SetQueryParallelism(0);
  const auto serial_mg = drain(odh_.SliceQuery(meters_, 0, kMaxTimestamp));
  odh_.config()->SetQueryParallelism(4);
  EXPECT_EQ(drain(odh_.SliceQuery(meters_, 0, kMaxTimestamp)), serial_mg);
}

TEST_F(ParallelParityTest, DirtyRowsMergeIdenticallyMidStream) {
  // Unflushed points after the last segment must appear in both modes, in
  // the same position of the emission order.
  for (int i = kSeconds; i < kSeconds + 5; ++i) {
    ODH_CHECK_OK(odh_.Ingest(
        {1, static_cast<Timestamp>(i) * kMicrosPerSecond, {99.0, 0.0}}));
  }
  const std::string sql =
      "SELECT id, ts, temperature FROM env_v WHERE id = 1";
  odh_.config()->SetQueryParallelism(0);
  const std::vector<Row> serial = Materialize(sql);
  EXPECT_EQ(serial.size(), static_cast<size_t>(kSeconds + 5));
  odh_.config()->SetQueryParallelism(4);
  ExpectRowsEqual(Materialize(sql), serial, sql + " [dirty]");
}

TEST_F(ParallelParityTest, AbandonedStreamShutsDownWorkersCleanly) {
  // Destroying a stream mid-scan (the LIMIT/cancel shape) must tear down
  // parked and in-flight workers without hanging or touching freed state.
  odh_.config()->SetQueryParallelism(4);
  for (int rows_taken : {0, 1, 7}) {
    sql::Session session(odh_.engine());
    auto stream = session.ExecuteStreaming(
        "SELECT id, ts, temperature, wind FROM env_v");
    ODH_CHECK_OK(stream.status());
    Row row;
    for (int i = 0; i < rows_taken; ++i) {
      ASSERT_TRUE((*stream)->Next(&row).value());
    }
    // Stream destroyed here with most of the scan unconsumed.
  }
  // The system remains fully usable afterwards.
  auto r = odh_.engine()->Execute("SELECT COUNT(*) FROM env_v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(4 * kSeconds));
}

}  // namespace
}  // namespace odh::core
