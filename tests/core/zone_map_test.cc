#include "core/zone_map.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/coding.h"
#include "common/logging.h"
#include "core/odh.h"

namespace odh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TagFilter Filter(int tag, double min, double max) {
  TagFilter f;
  f.tag = tag;
  f.min = min;
  f.max = max;
  return f;
}

TEST(ZoneMapTest, FromColumnsComputesRanges) {
  ZoneMap map = ZoneMap::FromColumns({{1.0, 5.0, 3.0}, {kNaN, kNaN, kNaN}});
  ASSERT_EQ(map.num_tags(), 2);
  EXPECT_TRUE(map.has_values(0));
  EXPECT_DOUBLE_EQ(map.min(0), 1.0);
  EXPECT_DOUBLE_EQ(map.max(0), 5.0);
  EXPECT_FALSE(map.has_values(1));
}

TEST(ZoneMapTest, FromRecordsMatchesFromColumns) {
  std::vector<OperationalRecord> records = {{1, 0, {2.0, kNaN}},
                                            {2, 1, {7.0, -1.0}}};
  ZoneMap map = ZoneMap::FromRecords(records, 2);
  EXPECT_DOUBLE_EQ(map.min(0), 2.0);
  EXPECT_DOUBLE_EQ(map.max(0), 7.0);
  EXPECT_DOUBLE_EQ(map.min(1), -1.0);
  EXPECT_DOUBLE_EQ(map.max(1), -1.0);
}

TEST(ZoneMapTest, EncodeDecodeRoundTrip) {
  ZoneMap map = ZoneMap::FromColumns({{1.5, 2.5}, {kNaN, kNaN}, {-3.0, 9.0}});
  auto decoded = ZoneMap::Decode(Slice(map.Encode()));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_tags(), 3);
  EXPECT_DOUBLE_EQ(decoded->min(0), 1.5);
  EXPECT_DOUBLE_EQ(decoded->max(2), 9.0);
  EXPECT_FALSE(decoded->has_values(1));
}

TEST(ZoneMapTest, DecodeRejectsGarbage) {
  EXPECT_FALSE(ZoneMap::Decode(Slice("\xff\xff", 2)).ok());
}

TEST(ZoneMapTest, V2RoundTripCarriesAggregates) {
  ZoneMap map = ZoneMap::FromColumns({{1.0, 5.0, 3.0}, {2.0, kNaN, 4.0}});
  auto decoded = ZoneMap::Decode(Slice(map.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_TRUE(decoded->has_aggregates());
  EXPECT_TRUE(decoded->exact());
  EXPECT_EQ(decoded->count(0), 3);
  EXPECT_DOUBLE_EQ(decoded->sum(0), 9.0);
  EXPECT_EQ(decoded->count(1), 2);  // NaN holes are not counted.
  EXPECT_DOUBLE_EQ(decoded->sum(1), 6.0);
}

TEST(ZoneMapTest, V1DecodeCompatibility) {
  // A v1 summary: varint32 tag count, then per tag a presence byte and
  // min/max doubles — no marker, no flags, no count/sum.
  std::string v1;
  PutVarint32(&v1, 2);
  v1.push_back(1);
  PutDouble(&v1, 10.0);
  PutDouble(&v1, 20.0);
  v1.push_back(0);
  auto decoded = ZoneMap::Decode(Slice(v1));
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded->num_tags(), 2);
  EXPECT_DOUBLE_EQ(decoded->min(0), 10.0);
  EXPECT_DOUBLE_EQ(decoded->max(0), 20.0);
  EXPECT_FALSE(decoded->has_values(1));
  // v1 carries no aggregates: pruning still works, pushdown must not.
  EXPECT_FALSE(decoded->has_aggregates());
  EXPECT_TRUE(decoded->MayMatch({Filter(0, 15, 25)}));
  EXPECT_FALSE(decoded->AllMatch({Filter(0, 0, 100)}, 1));
}

TEST(ZoneMapTest, WidenClearsExactButKeepsCounts) {
  ZoneMap map = ZoneMap::FromColumns({{10.0, 20.0}});
  EXPECT_TRUE(map.exact());
  map.Widen(0.5);
  EXPECT_FALSE(map.exact());
  // Counts survive widening (lossy codecs preserve which values are
  // missing), so count-only pushdown can still prove AllMatch.
  EXPECT_EQ(map.count(0), 2);
  EXPECT_TRUE(map.AllMatch({Filter(0, 0, 100)}, 2));
  // The widened range participates in the proof: [9.5, 20.5] now.
  EXPECT_FALSE(map.AllMatch({Filter(0, 10, 20)}, 2));
  auto decoded = ZoneMap::Decode(Slice(map.Encode()));
  ASSERT_TRUE(decoded.ok());
  EXPECT_FALSE(decoded->exact());  // The bit survives the wire.
  // A zero margin (lossless codec) must not clear exact.
  ZoneMap lossless = ZoneMap::FromColumns({{1.0}});
  lossless.Widen(0);
  EXPECT_TRUE(lossless.exact());
}

TEST(ZoneMapTest, AllMatchSemantics) {
  ZoneMap map = ZoneMap::FromColumns({{10.0, 20.0}, {1.0, kNaN}});
  // Full containment with full counts proves every row passes.
  EXPECT_TRUE(map.AllMatch({Filter(0, 10, 20)}, 2));
  EXPECT_TRUE(map.AllMatch({Filter(0, 0, 100)}, 2));
  // Partial overlap cannot prove.
  EXPECT_FALSE(map.AllMatch({Filter(0, 15, 100)}, 2));
  // A NaN hole on the filtered tag breaks the proof (NULL never matches).
  EXPECT_FALSE(map.AllMatch({Filter(1, 0, 100)}, 2));
  // Exclusive bounds: touching an exclusive endpoint disproves.
  TagFilter exclusive = Filter(0, 10, 20);
  exclusive.min_exclusive = true;
  EXPECT_FALSE(map.AllMatch({exclusive}, 2));
  exclusive.min_exclusive = false;
  exclusive.max_exclusive = true;
  EXPECT_FALSE(map.AllMatch({exclusive}, 2));
  // Unknown tags stay conservative; empty filter lists are vacuous.
  EXPECT_FALSE(map.AllMatch({Filter(9, 0, 1)}, 2));
  EXPECT_TRUE(map.AllMatch({}, 2));
}

TEST(ZoneMapTest, MayMatchSemantics) {
  ZoneMap map = ZoneMap::FromColumns({{10.0, 20.0}, {kNaN, kNaN}});
  // Overlapping filter matches.
  EXPECT_TRUE(map.MayMatch({Filter(0, 15, 100)}));
  // Disjoint above and below.
  EXPECT_FALSE(map.MayMatch({Filter(0, 21, 100)}));
  EXPECT_FALSE(map.MayMatch({Filter(0, -100, 9.9)}));
  // Boundary touch is a (conservative) match.
  EXPECT_TRUE(map.MayMatch({Filter(0, 20, 25)}));
  // Filter on an all-missing tag can never match (SQL NULL semantics).
  EXPECT_FALSE(map.MayMatch({Filter(1, 0, 1)}));
  // Filter on an out-of-range tag index is ignored.
  EXPECT_TRUE(map.MayMatch({Filter(9, 0, 1)}));
  // Conjunction: one failing filter prunes.
  EXPECT_FALSE(map.MayMatch({Filter(0, 15, 100), Filter(0, 30, 40)}));
  // No filters -> match.
  EXPECT_TRUE(map.MayMatch({}));
}

// End-to-end: tag-predicate queries skip non-matching blobs.
class ZoneMapSystemTest : public ::testing::Test {
 protected:
  ZoneMapSystemTest() {
    OdhOptions options;
    options.batch_size = 50;
    options.sql_metadata_router = false;
    odh_ = std::make_unique<OdhSystem>(options);
    type_ = odh_->DefineSchemaType("m", {"temp", "load"}).value();
    ODH_CHECK_OK(odh_->RegisterSource(1, type_, 1000, true));
    // 10 blobs of 50 points each; temp ramps 0..499, so exactly one blob
    // covers temp in [200, 249].
    for (int i = 0; i < 500; ++i) {
      ODH_CHECK_OK(odh_->Ingest({1, i * 1000, {1.0 * i, 5.0}}));
    }
    ODH_CHECK_OK(odh_->FlushAll());
  }

  std::unique_ptr<OdhSystem> odh_;
  int type_;
};

TEST_F(ZoneMapSystemTest, SqlTagPredicatePrunesBlobs) {
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute(
      "SELECT COUNT(*) FROM m_v WHERE id = 1 AND temp BETWEEN 210 AND 220");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(11));
  const ReadStats& stats = odh_->reader()->stats();
  EXPECT_EQ(stats.blobs_decoded, 1);
  EXPECT_EQ(stats.blobs_pruned, 9);
}

TEST_F(ZoneMapSystemTest, UnfilteredAggregateAnsweredFromSummaries) {
  // With aggregate pushdown, an unconstrained COUNT is answered entirely
  // from the per-blob summaries: zero decodes, every blob skipped.
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute("SELECT COUNT(*) FROM m_v WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(500));
  EXPECT_EQ(odh_->reader()->stats().blobs_pruned, 0);
  EXPECT_EQ(odh_->reader()->stats().blobs_decoded, 0);
  EXPECT_EQ(odh_->reader()->stats().blobs_skipped_by_summary, 10);

  // The decode path (pushdown off) reads all ten blobs and agrees.
  odh_->config()->SetScanPathOptions(/*vectorized=*/true,
                                     /*aggregate_pushdown=*/false);
  odh_->reader()->ResetStats();
  auto scanned =
      odh_->engine()->Execute("SELECT COUNT(*) FROM m_v WHERE id = 1");
  ASSERT_TRUE(scanned.ok());
  EXPECT_EQ(scanned->rows[0][0], Datum::Int64(500));
  EXPECT_EQ(odh_->reader()->stats().blobs_decoded, 10);
  EXPECT_EQ(odh_->reader()->stats().blobs_skipped_by_summary, 0);
}

TEST_F(ZoneMapSystemTest, ImpossiblePredicatePrunesEverything) {
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute(
      "SELECT COUNT(*) FROM m_v WHERE id = 1 AND temp > 10000");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(0));
  EXPECT_EQ(odh_->reader()->stats().blobs_decoded, 0);
  EXPECT_EQ(odh_->reader()->stats().blobs_pruned, 10);
}

TEST_F(ZoneMapSystemTest, ResultsIdenticalWithZoneMapsDisabled) {
  OdhOptions options;
  options.batch_size = 50;
  options.sql_metadata_router = false;
  options.enable_zone_maps = false;
  OdhSystem plain(options);
  int type = plain.DefineSchemaType("m", {"temp", "load"}).value();
  ODH_CHECK_OK(plain.RegisterSource(1, type, 1000, true));
  for (int i = 0; i < 500; ++i) {
    ODH_CHECK_OK(plain.Ingest({1, i * 1000, {1.0 * i, 5.0}}));
  }
  ODH_CHECK_OK(plain.FlushAll());

  const char* query =
      "SELECT COUNT(*), SUM(load) FROM m_v WHERE temp BETWEEN 100 AND 150";
  auto with = odh_->engine()->Execute(query);
  auto without = plain.engine()->Execute(query);
  ASSERT_TRUE(with.ok());
  ASSERT_TRUE(without.ok());
  EXPECT_EQ(with->rows[0][0], without->rows[0][0]);
  EXPECT_EQ(with->rows[0][1], without->rows[0][1]);
  EXPECT_EQ(plain.reader()->stats().blobs_pruned, 0);
}

TEST_F(ZoneMapSystemTest, LossyCompressionKeepsZoneMapsConservative) {
  // Zone maps are computed from the ORIGINAL values before lossy encoding;
  // decoded values deviate by <= e, so a widened filter must still find
  // every qualifying original value. Here we just verify agreement between
  // a zone-mapped query and a full scan under lossy compression.
  OdhOptions options;
  options.batch_size = 50;
  options.sql_metadata_router = false;
  OdhSystem lossy(options);
  CompressionSpec spec;
  spec.max_error = 0.5;
  int type = lossy.DefineSchemaType("m", {"temp"}, spec).value();
  ODH_CHECK_OK(lossy.RegisterSource(1, type, 1000, true));
  for (int i = 0; i < 500; ++i) {
    ODH_CHECK_OK(lossy.Ingest({1, i * 1000, {1.0 * i}}));
  }
  ODH_CHECK_OK(lossy.FlushAll());
  auto filtered = lossy.engine()->Execute(
      "SELECT COUNT(*) FROM m_v WHERE temp > 100.25 AND temp < 110.25");
  auto all = lossy.engine()->Execute("SELECT temp FROM m_v");
  ASSERT_TRUE(filtered.ok());
  ASSERT_TRUE(all.ok());
  int64_t expected = 0;
  for (const Row& row : all->rows) {
    double v = row[0].double_value();
    if (v > 100.25 && v < 110.25) ++expected;
  }
  EXPECT_EQ(filtered->rows[0][0], Datum::Int64(expected));
}

}  // namespace
}  // namespace odh::core
