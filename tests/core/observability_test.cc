#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"

namespace odh::core {
namespace {

/// Returns the index of `name` in the result's column list, or -1.
int ColumnIndex(const sql::QueryResult& r, const std::string& name) {
  for (size_t i = 0; i < r.columns.size(); ++i) {
    if (r.columns[i] == name) return static_cast<int>(i);
  }
  return -1;
}

/// Finds the value of a metric row by name in a `SELECT * FROM odh_metrics`
/// result; fails the test if the metric is absent.
double MetricValue(const sql::QueryResult& r, const std::string& name) {
  const int name_col = ColumnIndex(r, "name");
  const int value_col = ColumnIndex(r, "value");
  EXPECT_GE(name_col, 0);
  EXPECT_GE(value_col, 0);
  for (const Row& row : r.rows) {
    if (row[static_cast<size_t>(name_col)] == Datum::String(name)) {
      return row[static_cast<size_t>(value_col)].double_value();
    }
  }
  ADD_FAILURE() << "metric not exported: " << name;
  return 0;
}

/// 500 points for one source: the same shape as the aggregate-pushdown
/// fixture, so summary/vectorized/row paths are all reachable.
class SystemTablesTest : public ::testing::Test {
 protected:
  SystemTablesTest() {
    OdhOptions options;
    options.batch_size = 50;
    options.sql_metadata_router = false;
    odh_ = std::make_unique<OdhSystem>(options);
    type_ = odh_->DefineSchemaType("env", {"temp", "load"}).value();
    ODH_CHECK_OK(odh_->RegisterSource(1, type_, kMicrosPerSecond, true));
    for (int i = 0; i < 500; ++i) {
      ODH_CHECK_OK(odh_->Ingest({1, i * kMicrosPerSecond, {1.0 * i, 5.0}}));
    }
    ODH_CHECK_OK(odh_->FlushAll());
  }

  std::unique_ptr<OdhSystem> odh_;
  int type_;
};

TEST_F(SystemTablesTest, MetricsTableExportsLiveInstruments) {
  auto r = odh_->engine()->Execute("SELECT name, kind, value FROM odh_metrics");
  ASSERT_TRUE(r.ok());
  ASSERT_FALSE(r->rows.empty());

  // Gauges sample the components' real counters.
  EXPECT_EQ(MetricValue(*r, "odh.writer.points_ingested"), 500.0);
  EXPECT_EQ(MetricValue(*r, "odh.writer.blobs_flushed"), 10.0);
  EXPECT_GT(MetricValue(*r, "odh.disk.page_writes"), 0.0);

  // The writer flush histogram appears expanded and has observations.
  EXPECT_GT(MetricValue(*r, "odh.writer.flush_micros.count"), 0.0);
  EXPECT_GE(MetricValue(*r, "odh.writer.flush_micros.p95"),
            MetricValue(*r, "odh.writer.flush_micros.p50"));

  // Constraints push through the provider like any other table.
  auto one = odh_->engine()->Execute(
      "SELECT value FROM odh_metrics "
      "WHERE name = 'odh.writer.points_ingested'");
  ASSERT_TRUE(one.ok());
  ASSERT_EQ(one->rows.size(), 1u);
  EXPECT_EQ(one->rows[0][0], Datum::Double(500.0));
}

TEST_F(SystemTablesTest, QueriesTableRecordsProfiles) {
  const std::string query =
      "SELECT COUNT(*), SUM(temp) FROM env_v WHERE id = 1";
  auto direct = odh_->engine()->Execute(query);
  ASSERT_TRUE(direct.ok());

  auto log = odh_->engine()->Execute("SELECT * FROM odh_queries");
  ASSERT_TRUE(log.ok());
  const int stmt_col = ColumnIndex(*log, "statement");
  const int path_col = ColumnIndex(*log, "path");
  const int skipped_col = ColumnIndex(*log, "blobs_skipped_by_summary");
  const int total_col = ColumnIndex(*log, "total_micros");
  ASSERT_GE(stmt_col, 0);
  ASSERT_GE(path_col, 0);
  ASSERT_GE(skipped_col, 0);
  ASSERT_GE(total_col, 0);
  bool found = false;
  for (const Row& row : log->rows) {
    if (row[static_cast<size_t>(stmt_col)] != Datum::String(query)) continue;
    found = true;
    // The logged profile matches the one returned with the result.
    EXPECT_EQ(row[static_cast<size_t>(path_col)],
              Datum::String(direct->profile.path));
    EXPECT_EQ(row[static_cast<size_t>(skipped_col)],
              Datum::Int64(direct->profile.blobs_skipped_by_summary));
    EXPECT_GT(row[static_cast<size_t>(total_col)].double_value(), 0.0);
  }
  EXPECT_TRUE(found) << "statement missing from odh_queries: " << query;

  // The odh_queries scan itself is logged once it finishes.
  auto again = odh_->engine()->Execute("SELECT * FROM odh_queries");
  ASSERT_TRUE(again.ok());
  found = false;
  for (const Row& row : again->rows) {
    if (row[static_cast<size_t>(stmt_col)] ==
        Datum::String("SELECT * FROM odh_queries")) {
      found = true;
    }
  }
  EXPECT_TRUE(found);
}

TEST_F(SystemTablesTest, StorageTableReportsPartitionStats) {
  auto r = odh_->engine()->Execute(
      "SELECT * FROM odh_storage WHERE container = 'rts'");
  ASSERT_TRUE(r.ok());
  const int type_col = ColumnIndex(*r, "schema_type");
  const int name_col = ColumnIndex(*r, "type_name");
  const int blobs_col = ColumnIndex(*r, "blob_count");
  const int points_col = ColumnIndex(*r, "point_count");
  const int blob_bytes_col = ColumnIndex(*r, "blob_bytes");
  const int raw_col = ColumnIndex(*r, "raw_bytes");
  const int ratio_col = ColumnIndex(*r, "compression_ratio");
  ASSERT_EQ(r->rows.size(), 1u);
  const Row& row = r->rows[0];
  EXPECT_EQ(row[static_cast<size_t>(type_col)], Datum::Int64(type_));
  EXPECT_EQ(row[static_cast<size_t>(name_col)], Datum::String("env"));
  EXPECT_EQ(row[static_cast<size_t>(blobs_col)], Datum::Int64(10));
  EXPECT_EQ(row[static_cast<size_t>(points_col)], Datum::Int64(500));
  // Raw row-format size: 8 bytes each for ts, temp, load per point.
  EXPECT_EQ(row[static_cast<size_t>(raw_col)], Datum::Int64(500 * 24));
  const int64_t blob_bytes =
      row[static_cast<size_t>(blob_bytes_col)].int64_value();
  EXPECT_GT(blob_bytes, 0);
  EXPECT_NEAR(row[static_cast<size_t>(ratio_col)].double_value(),
              static_cast<double>(500 * 24) / static_cast<double>(blob_bytes),
              1e-9);
}

TEST_F(SystemTablesTest, ExplainProfileReturnsMetricRows) {
  auto r = odh_->engine()->Execute(
      "explain profile SELECT COUNT(*) FROM env_v WHERE id = 1");
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->columns, (std::vector<std::string>{"metric", "value"}));
  ASSERT_EQ(r->rows.size(), 16u);
  EXPECT_EQ(r->rows[0][0], Datum::String("path"));
  EXPECT_EQ(r->rows[0][1], Datum::String("summary-pushdown"));
  bool saw_total = false;
  bool saw_parallel = false;
  bool saw_cache = false;
  bool saw_spill = false;
  for (const Row& row : r->rows) {
    if (row[0] == Datum::String("rows_returned")) {
      EXPECT_EQ(row[1], Datum::Int64(1));
    }
    if (row[0] == Datum::String("blobs_skipped_by_summary")) {
      EXPECT_EQ(row[1], Datum::Int64(10));
    }
    if (row[0] == Datum::String("segments_scanned_parallel")) {
      saw_parallel = true;  // Serial fixture: present but zero.
      EXPECT_EQ(row[1], Datum::Int64(0));
    }
    if (row[0] == Datum::String("blob_cache_hits")) {
      saw_cache = true;  // Cache disabled here: present but zero.
      EXPECT_EQ(row[1], Datum::Int64(0));
    }
    if (row[0] == Datum::String("spill_runs")) {
      saw_spill = true;  // Summary pushdown never sorts: present but zero.
      EXPECT_EQ(row[1], Datum::Int64(0));
    }
    if (row[0] == Datum::String("total_micros")) {
      saw_total = true;
      EXPECT_GT(row[1].double_value(), 0.0);
    }
  }
  EXPECT_TRUE(saw_total);
  EXPECT_TRUE(saw_parallel);
  EXPECT_TRUE(saw_cache);
  EXPECT_TRUE(saw_spill);

  // Only SELECT can be profiled.
  auto bad = odh_->engine()->Execute(
      "EXPLAIN PROFILE CREATE TABLE t (x INT)");
  EXPECT_FALSE(bad.ok());
}

TEST_F(SystemTablesTest, PerQueryCountersAreScopedToTheStatement) {
  // Two identical statements must report the same per-query counters:
  // the profile is scoped to its statement, not a view of global state.
  const std::string query =
      "SELECT SUM(temp) FROM env_v WHERE id = 1 AND temp BETWEEN 110 AND 180";
  auto first = odh_->engine()->Execute(query);
  auto second = odh_->engine()->Execute(query);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(first->profile.blobs_decoded, second->profile.blobs_decoded);
  EXPECT_EQ(first->profile.blobs_pruned, second->profile.blobs_pruned);
  EXPECT_EQ(first->profile.rows_scanned, second->profile.rows_scanned);
  EXPECT_GT(first->profile.blobs_decoded, 0);
}

/// Parallel scans and the decoded-blob cache share the fixture's counters:
/// these tests pin down the accounting contract — parallel workers feed the
/// same atomics, per-query counters stay scoped to their statement, and the
/// pruning/summary counters are counted exactly once no matter which driver
/// ran the scan.
class ParallelObservabilityTest : public ::testing::Test {
 protected:
  ParallelObservabilityTest() {
    OdhOptions options;
    options.batch_size = 25;
    options.segment_span = 100 * kMicrosPerSecond;  // 5 segments.
    options.query_parallelism = 4;
    options.blob_cache_bytes = 8u << 20;
    options.sql_metadata_router = false;
    odh_ = std::make_unique<OdhSystem>(options);
    type_ = odh_->DefineSchemaType("env", {"temp", "load"}).value();
    for (SourceId id = 1; id <= 2; ++id) {
      ODH_CHECK_OK(odh_->RegisterSource(id, type_, kMicrosPerSecond, true));
    }
    for (int i = 0; i < 500; ++i) {
      for (SourceId id = 1; id <= 2; ++id) {
        ODH_CHECK_OK(odh_->Ingest(
            {id, i * kMicrosPerSecond, {1.0 * i + id, 5.0 * id}}));
      }
    }
    ODH_CHECK_OK(odh_->FlushAll());
  }

  /// Runs `sql` with the given parallelism cap and returns its profile.
  sql::QueryProfile Profiled(int parallelism, const std::string& sql) {
    odh_->config()->SetQueryParallelism(parallelism);
    auto r = odh_->engine()->Execute(sql);
    ODH_CHECK_OK(r.status());
    return r->profile;
  }

  std::unique_ptr<OdhSystem> odh_;
  int type_ = 0;
};

TEST_F(ParallelObservabilityTest, ParallelCountersMatchSerialNoDoubleCount) {
  // A range query touching 3 of the 5 segments, so both drivers prune the
  // same two segments; the parallel driver must count each pruned segment
  // and each decoded blob exactly once even though its workers share the
  // per-query atomics.
  const std::string sql =
      "SELECT ts, temp FROM env_v WHERE id = 1 AND ts >= " +
      std::to_string(120 * kMicrosPerSecond) + " AND ts <= " +
      std::to_string(380 * kMicrosPerSecond);
  const sql::QueryProfile serial = Profiled(0, sql);
  const sql::QueryProfile parallel = Profiled(4, sql);
  EXPECT_EQ(serial.rows_returned, parallel.rows_returned);
  EXPECT_EQ(serial.rows_scanned, parallel.rows_scanned);
  EXPECT_EQ(serial.blobs_pruned, parallel.blobs_pruned);
  EXPECT_EQ(serial.segments_pruned, parallel.segments_pruned);
  EXPECT_EQ(serial.blobs_skipped_by_summary,
            parallel.blobs_skipped_by_summary);
  EXPECT_EQ(serial.segments_scanned_parallel, 0);
  EXPECT_GT(parallel.segments_scanned_parallel, 0);
}

TEST_F(ParallelObservabilityTest, SliceScanPruningCountedOnceUnderParallel) {
  // No id constraint: the slice path lists surviving segments up front for
  // the parallel driver (SliceSegments) instead of streaming; the pruning
  // count must be identical to the streaming serial scan.
  const std::string sql =
      "SELECT ts, id, temp FROM env_v WHERE ts >= " +
      std::to_string(220 * kMicrosPerSecond) + " AND ts <= " +
      std::to_string(280 * kMicrosPerSecond);
  const sql::QueryProfile serial = Profiled(0, sql);
  const sql::QueryProfile parallel = Profiled(4, sql);
  EXPECT_EQ(serial.rows_returned, parallel.rows_returned);
  EXPECT_EQ(serial.segments_pruned, parallel.segments_pruned);
  EXPECT_GT(serial.segments_pruned, 0);
  EXPECT_GT(parallel.segments_scanned_parallel, 0);
}

TEST_F(ParallelObservabilityTest, WarmCacheRepeatDecodesNothing) {
  const std::string sql =
      "SELECT ts, temp, load FROM env_v WHERE id = 2 AND ts >= " +
      std::to_string(50 * kMicrosPerSecond) + " AND ts <= " +
      std::to_string(450 * kMicrosPerSecond);
  const sql::QueryProfile cold = Profiled(0, sql);
  ASSERT_GT(cold.blobs_decoded, 0);
  // The warm run goes parallel: cache entries are shared across execution
  // paths, so the parallel workers hit what the serial run decoded.
  const sql::QueryProfile warm = Profiled(4, sql);
  EXPECT_EQ(warm.rows_returned, cold.rows_returned);
  // Every blob the cold run decoded now hits; nothing decodes again.
  EXPECT_EQ(warm.blobs_decoded, 0);
  EXPECT_EQ(warm.blob_cache_hits, cold.blobs_decoded);

  // The instance-wide gauges see the same story.
  auto metrics = odh_->engine()->Execute("SELECT * FROM odh_metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_GE(MetricValue(*metrics, "odh.blob_cache.hits"),
            static_cast<double>(cold.blobs_decoded));
  EXPECT_GT(MetricValue(*metrics, "odh.blob_cache.bytes"), 0.0);
  EXPECT_GT(MetricValue(*metrics, "odh.parallel_scan.tasks"), 0.0);
}

TEST_F(ParallelObservabilityTest, PerQueryCountersScopedUnderParallelism) {
  // Twin statements under the parallel driver report identical per-query
  // counters: worker tasks must not leak counts across statements. (The
  // cache warms on the first run, so compare run 2 against run 3.)
  const std::string sql =
      "SELECT ts, temp FROM env_v WHERE id = 1 AND ts >= " +
      std::to_string(100 * kMicrosPerSecond) + " AND ts <= " +
      std::to_string(400 * kMicrosPerSecond);
  (void)Profiled(4, sql);
  const sql::QueryProfile second = Profiled(4, sql);
  const sql::QueryProfile third = Profiled(4, sql);
  EXPECT_EQ(second.rows_scanned, third.rows_scanned);
  EXPECT_EQ(second.blobs_decoded, third.blobs_decoded);
  EXPECT_EQ(second.blob_cache_hits, third.blob_cache_hits);
  EXPECT_EQ(second.segments_scanned_parallel,
            third.segments_scanned_parallel);
  EXPECT_GT(second.blob_cache_hits, 0);
}

/// Satellite 5: the observability surface must be safe to read while other
/// threads ingest and scan. SQL stays on this thread (the engine is
/// single-threaded by contract); the system-table providers snapshot their
/// sources, so their cursors race with nothing.
TEST(ObservabilityConcurrencyTest, SystemTablesReadCleanlyDuringIngest) {
  OdhOptions options;
  options.batch_size = 64;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("env", {"temp"}).value();
  constexpr int kSources = 3;
  constexpr int kPointsPerSource = 3000;
  for (int s = 1; s <= kSources; ++s) {
    ODH_CHECK_OK(odh.RegisterSource(s, type, kMicrosPerSecond, true));
  }

  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  // One ingest thread per source (per-source monotonicity holds).
  for (int s = 1; s <= kSources; ++s) {
    workers.emplace_back([&odh, s] {
      for (int i = 0; i < kPointsPerSource; ++i) {
        ODH_CHECK_OK(odh.Ingest({s, i * kMicrosPerSecond, {1.0 * i}}));
      }
    });
  }
  // One native-scan thread hammering the read path concurrently.
  workers.emplace_back([&odh, type, &done] {
    while (!done.load(std::memory_order_relaxed)) {
      auto cursor = odh.HistoricalQuery(type, 1, 0,
                                        kPointsPerSource * kMicrosPerSecond);
      if (!cursor.ok()) continue;
      OperationalRecord rec;
      while (true) {
        auto next = (*cursor)->Next(&rec);
        if (!next.ok() || !*next) break;
      }
    }
  });

  // Meanwhile: SQL reads of every system table plus EXPLAIN PROFILE, all
  // from this thread. Each must succeed and return live (non-empty) data
  // mid-ingest.
  for (int round = 0; round < 50; ++round) {
    auto metrics = odh.engine()->Execute("SELECT * FROM odh_metrics");
    ASSERT_TRUE(metrics.ok());
    ASSERT_FALSE(metrics->rows.empty());
    auto storage = odh.engine()->Execute("SELECT * FROM odh_storage");
    ASSERT_TRUE(storage.ok());
    ASSERT_FALSE(storage->rows.empty());
    auto profiled = odh.engine()->Execute(
        "EXPLAIN PROFILE SELECT COUNT(*) FROM env_v");
    ASSERT_TRUE(profiled.ok());
    ASSERT_FALSE(profiled->rows.empty());
    auto queries = odh.engine()->Execute("SELECT * FROM odh_queries");
    ASSERT_TRUE(queries.ok());
    ASSERT_FALSE(queries->rows.empty());
  }

  for (size_t i = 0; i + 1 < workers.size(); ++i) workers[i].join();
  done.store(true, std::memory_order_relaxed);
  workers.back().join();
  ODH_CHECK_OK(odh.FlushAll());

  // After the dust settles the gauges account for every ingested point.
  auto metrics = odh.engine()->Execute("SELECT * FROM odh_metrics");
  ASSERT_TRUE(metrics.ok());
  EXPECT_EQ(MetricValue(*metrics, "odh.writer.points_ingested"),
            static_cast<double>(kSources * kPointsPerSource));
  auto count = odh.engine()->Execute("SELECT COUNT(*) FROM env_v");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0], Datum::Int64(kSources * kPointsPerSource));
}

}  // namespace
}  // namespace odh::core
