#include "core/config.h"

#include <gtest/gtest.h>

namespace odh::core {
namespace {

OdhOptions SmallGroups() {
  OdhOptions options;
  options.mg_group_size = 4;
  return options;
}

TEST(ConfigTest, DefineAndFindSchemaTypes) {
  ConfigComponent config{OdhOptions{}};
  int a = config.DefineSchemaType({"environ", {"temp", "wind"}, {}}).value();
  int b = config.DefineSchemaType({"trade", {"price"}, {}}).value();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
  EXPECT_EQ(config.FindSchemaType("trade").value(), 1);
  EXPECT_TRUE(config.FindSchemaType("nope").status().IsNotFound());
  EXPECT_EQ(config.GetSchemaType(a).value()->tag_names.size(), 2u);
  EXPECT_TRUE(config.GetSchemaType(9).status().IsNotFound());
  EXPECT_TRUE(config.DefineSchemaType({"trade", {"x"}, {}})
                  .status()
                  .code() == StatusCode::kAlreadyExists);
  EXPECT_TRUE(config.DefineSchemaType({"", {}, {}})
                  .status()
                  .IsInvalidArgument());
}

TEST(ConfigTest, SourceClassification) {
  ConfigComponent config{OdhOptions{}};
  int type = config.DefineSchemaType({"t", {"v"}, {}}).value();
  // 50 Hz regular -> regular high frequency.
  ASSERT_TRUE(
      config.RegisterSource(1, type, kMicrosPerSecond / 50, true).ok());
  EXPECT_EQ(config.GetSource(1).value()->source_class,
            SourceClass::kRegularHighFrequency);
  // 10 Hz irregular -> irregular high frequency.
  ASSERT_TRUE(
      config.RegisterSource(2, type, kMicrosPerSecond / 10, false).ok());
  EXPECT_EQ(config.GetSource(2).value()->source_class,
            SourceClass::kIrregularHighFrequency);
  // 15-minute meter -> regular low frequency.
  ASSERT_TRUE(config.RegisterSource(3, type, 15 * kMicrosPerMinute, true)
                  .ok());
  EXPECT_EQ(config.GetSource(3).value()->source_class,
            SourceClass::kRegularLowFrequency);
  // 23-minute weather station, irregular -> irregular low frequency.
  ASSERT_TRUE(config.RegisterSource(4, type, 23 * kMicrosPerMinute, false)
                  .ok());
  EXPECT_EQ(config.GetSource(4).value()->source_class,
            SourceClass::kIrregularLowFrequency);
}

TEST(ConfigTest, ExactlyOneHzIsHighFrequency) {
  ConfigComponent config{OdhOptions{}};
  int type = config.DefineSchemaType({"t", {"v"}, {}}).value();
  ASSERT_TRUE(config.RegisterSource(1, type, kMicrosPerSecond, true).ok());
  EXPECT_TRUE(IsHighFrequency(config.GetSource(1).value()->source_class));
}

TEST(ConfigTest, RegistrationValidation) {
  ConfigComponent config{OdhOptions{}};
  int type = config.DefineSchemaType({"t", {"v"}, {}}).value();
  EXPECT_TRUE(config.RegisterSource(1, 99, 100, true).IsInvalidArgument());
  EXPECT_TRUE(config.RegisterSource(1, type, 0, true).IsInvalidArgument());
  ASSERT_TRUE(config.RegisterSource(1, type, 100, true).ok());
  EXPECT_EQ(config.RegisterSource(1, type, 100, true).code(),
            StatusCode::kAlreadyExists);
  EXPECT_TRUE(config.GetSource(77).status().IsNotFound());
}

TEST(ConfigTest, MgGroupAssignment) {
  ConfigComponent config{SmallGroups()};
  int type = config.DefineSchemaType({"meters", {"kwh"}, {}}).value();
  // 10 low-frequency sources with group size 4 -> groups 0,0,0,0,1,...,2.
  for (SourceId id = 0; id < 10; ++id) {
    ASSERT_TRUE(
        config.RegisterSource(id, type, 15 * kMicrosPerMinute, true).ok());
  }
  EXPECT_EQ(config.GetSource(0).value()->group, 0);
  EXPECT_EQ(config.GetSource(3).value()->group, 0);
  EXPECT_EQ(config.GetSource(4).value()->group, 1);
  EXPECT_EQ(config.GetSource(9).value()->group, 2);
  std::vector<int64_t> groups = config.GroupsOf(type);
  EXPECT_EQ(groups, (std::vector<int64_t>{0, 1, 2}));
}

TEST(ConfigTest, HighFrequencySourcesGetNoGroup) {
  ConfigComponent config{SmallGroups()};
  int type = config.DefineSchemaType({"pmu", {"v"}, {}}).value();
  ASSERT_TRUE(config.RegisterSource(1, type, 20000, true).ok());
  EXPECT_TRUE(config.GroupsOf(type).empty());
}

TEST(ConfigTest, SourcesOfFiltersByType) {
  ConfigComponent config{OdhOptions{}};
  int a = config.DefineSchemaType({"a", {"v"}, {}}).value();
  int b = config.DefineSchemaType({"b", {"v"}, {}}).value();
  ASSERT_TRUE(config.RegisterSource(1, a, 100, true).ok());
  ASSERT_TRUE(config.RegisterSource(2, b, 100, true).ok());
  ASSERT_TRUE(config.RegisterSource(3, a, 100, true).ok());
  EXPECT_EQ(config.SourcesOf(a), (std::vector<SourceId>{1, 3}));
  EXPECT_EQ(config.SourcesOf(b), (std::vector<SourceId>{2}));
}

}  // namespace
}  // namespace odh::core
