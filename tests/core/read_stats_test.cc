#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"

namespace odh::core {
namespace {

/// Satellite regression: snapshotting reader stats and resetting them used
/// to be two separate operations (load then store), so increments landing
/// in between were silently lost and multi-counter snapshots could tear.
/// SnapshotAndResetStats must hand every increment to exactly one epoch.
class ReadStatsTest : public ::testing::Test {
 protected:
  ReadStatsTest() {
    OdhOptions options;
    options.batch_size = 100;
    options.sql_metadata_router = false;
    odh_ = std::make_unique<OdhSystem>(options);
    type_ = odh_->DefineSchemaType("m", {"temp"}).value();
    ODH_CHECK_OK(odh_->RegisterSource(1, type_, kMicrosPerSecond, true));
    for (int i = 0; i < 400; ++i) {
      ODH_CHECK_OK(odh_->Ingest({1, i * kMicrosPerSecond, {1.0 * i}}));
    }
    ODH_CHECK_OK(odh_->FlushAll());
  }

  /// Drains one full historical scan (4 blobs, 400 records).
  void RunScan() {
    auto cursor = odh_->HistoricalQuery(type_, 1, kMinTimestamp,
                                        kMaxTimestamp);
    ODH_CHECK(cursor.ok());
    OperationalRecord rec;
    while (true) {
      auto more = (*cursor)->Next(&rec);
      ODH_CHECK(more.ok());
      if (!*more) break;
    }
  }

  std::unique_ptr<OdhSystem> odh_;
  int type_;
};

TEST_F(ReadStatsTest, SnapshotReturnsCountsAndZeroes) {
  odh_->reader()->ResetStats();
  RunScan();
  const ReadStats first = odh_->reader()->SnapshotAndResetStats();
  EXPECT_EQ(first.records_emitted, 400);
  EXPECT_EQ(first.blobs_decoded, 4);
  const ReadStats second = odh_->reader()->SnapshotAndResetStats();
  EXPECT_EQ(second.records_emitted, 0);
  EXPECT_EQ(second.blobs_decoded, 0);
  EXPECT_EQ(second.blob_bytes_read, 0);
}

TEST_F(ReadStatsTest, ConcurrentResetLosesNoIncrements) {
  // Scanner threads emit a known record total while the main thread
  // repeatedly snapshots+resets; every emitted record must land in
  // exactly one snapshot epoch or the final drain.
  constexpr int kThreads = 4;
  constexpr int kScansPerThread = 25;
  constexpr int64_t kExpected =
      int64_t{kThreads} * kScansPerThread * 400;

  odh_->reader()->ResetStats();
  std::atomic<int> running{kThreads};
  std::vector<std::thread> scanners;
  scanners.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    scanners.emplace_back([&] {
      for (int s = 0; s < kScansPerThread; ++s) RunScan();
      running.fetch_sub(1, std::memory_order_release);
    });
  }

  int64_t harvested = 0;
  while (running.load(std::memory_order_acquire) > 0) {
    harvested += odh_->reader()->SnapshotAndResetStats().records_emitted;
  }
  for (std::thread& t : scanners) t.join();
  harvested += odh_->reader()->SnapshotAndResetStats().records_emitted;
  EXPECT_EQ(harvested, kExpected);
}

}  // namespace
}  // namespace odh::core
