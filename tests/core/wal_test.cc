#include "core/wal.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "common/logging.h"
#include "storage/fault_policy.h"
#include "storage/sim_disk.h"

namespace odh::core {
namespace {

using storage::FaultPolicy;
using storage::FileId;
using storage::SimDisk;

constexpr char kWalName[] = "wal";

std::string Payload(int i, size_t size) {
  std::string p = "record-" + std::to_string(i) + ":";
  p.resize(size, static_cast<char>('a' + i % 26));
  return p;
}

/// Reads the raw bytes of a file (all pages concatenated).
std::string RawBytes(SimDisk* disk, const std::string& name) {
  FileId f = disk->OpenFile(name).value();
  uint32_t pages = disk->PageCount(f).value();
  std::string out(pages * disk->page_size(), '\0');
  for (uint32_t p = 0; p < pages; ++p) {
    ODH_CHECK_OK(disk->ReadPage(f, p, &out[p * disk->page_size()]));
  }
  return out;
}

/// Creates a file on a fresh disk holding exactly `bytes` (zero-padded to
/// page granularity) — the harness for hand-crafted torn tails.
void WriteRaw(SimDisk* disk, const std::string& name,
              const std::string& bytes) {
  FileId f = disk->CreateFile(name).value();
  const size_t ps = disk->page_size();
  size_t pages = (bytes.size() + ps - 1) / ps;
  std::string page(ps, '\0');
  for (size_t p = 0; p < pages; ++p) {
    ODH_CHECK_OK(disk->AllocatePage(f).status());
    page.assign(ps, '\0');
    size_t n = std::min(ps, bytes.size() - p * ps);
    page.replace(0, n, bytes, p * ps, n);
    ODH_CHECK_OK(disk->WritePage(f, static_cast<uint32_t>(p), page.data()));
  }
}

TEST(WalTest, MissingFileReadsAsEmptyLog) {
  SimDisk disk(512);
  auto result = Wal::ReadLog(&disk, "nope");
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(result->records.empty());
  EXPECT_EQ(result->valid_bytes, 0u);
  EXPECT_EQ(result->torn_bytes_dropped, 0u);
}

TEST(WalTest, AppendSyncReadRoundTrip) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  std::vector<std::string> payloads;
  for (int i = 0; i < 20; ++i) payloads.push_back(Payload(i, 40 + i));
  for (const auto& p : payloads) wal->Append(p);
  EXPECT_EQ(wal->records_appended(), 20u);
  EXPECT_EQ(wal->records_synced(), 0u);
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->records_synced(), 20u);
  EXPECT_EQ(wal->pending_bytes(), 0u);

  auto log = Wal::ReadLog(&disk, kWalName).value();
  EXPECT_EQ(log.records, payloads);
  EXPECT_EQ(log.torn_bytes_dropped, 0u);
  EXPECT_EQ(log.valid_bytes, wal->synced_bytes());
}

TEST(WalTest, RecordsStraddlePages) {
  SimDisk disk(256);
  auto wal = Wal::Create(&disk, kWalName).value();
  // Each record spans multiple 256-byte pages.
  std::vector<std::string> payloads = {Payload(0, 700), Payload(1, 900),
                                       Payload(2, 300)};
  for (const auto& p : payloads) wal->Append(p);
  ASSERT_TRUE(wal->Sync().ok());
  auto log = Wal::ReadLog(&disk, kWalName).value();
  EXPECT_EQ(log.records, payloads);
}

TEST(WalTest, RepeatedSyncsExtendTheLog) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  std::vector<std::string> payloads;
  for (int round = 0; round < 5; ++round) {
    for (int i = 0; i < 3; ++i) {
      payloads.push_back(Payload(round * 3 + i, 100));
      wal->Append(payloads.back());
    }
    ASSERT_TRUE(wal->Sync().ok());
    auto log = Wal::ReadLog(&disk, kWalName).value();
    EXPECT_EQ(log.records, payloads);
  }
  ASSERT_TRUE(wal->Sync().ok());  // Nothing pending: a no-op.
}

TEST(WalTest, TornTailIsDropped) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  std::vector<std::string> payloads;
  for (int i = 0; i < 8; ++i) {
    payloads.push_back(Payload(i, 120));
    wal->Append(payloads.back());
  }
  ASSERT_TRUE(wal->Sync().ok());
  std::string bytes = RawBytes(&disk, kWalName);

  // Cut 30 bytes into the 6th record's frame and splatter garbage after it.
  size_t boundary = 0;
  for (int i = 0; i < 5; ++i) boundary += 8 + payloads[i].size();
  std::string torn = bytes.substr(0, boundary + 30);
  torn.append("GARBAGEGARBAGEGARBAGE");

  SimDisk crafted(512);
  WriteRaw(&crafted, kWalName, torn);
  auto log = Wal::ReadLog(&crafted, kWalName).value();
  ASSERT_EQ(log.records.size(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(log.records[i], payloads[i]);
  EXPECT_EQ(log.valid_bytes, boundary);
  EXPECT_GT(log.torn_bytes_dropped, 0u);
}

TEST(WalTest, TruncationAtEveryRecordBoundary) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  std::vector<std::string> payloads;
  std::vector<size_t> boundaries = {0};
  for (int i = 0; i < 16; ++i) {
    payloads.push_back(Payload(i, 64 + 17 * i));
    wal->Append(payloads.back());
    boundaries.push_back(boundaries.back() + 8 + payloads.back().size());
  }
  ASSERT_TRUE(wal->Sync().ok());
  std::string bytes = RawBytes(&disk, kWalName);

  for (size_t k = 0; k <= payloads.size(); ++k) {
    // A power cut that tore everything after the k-th record: keep a clean
    // prefix, then half of the next frame as garbage-like remnants.
    std::string torn = bytes.substr(0, boundaries[k]);
    if (k < payloads.size()) {
      torn += bytes.substr(boundaries[k], (8 + payloads[k].size()) / 2);
    }
    SimDisk crafted(512);
    WriteRaw(&crafted, kWalName, torn);
    auto log = Wal::ReadLog(&crafted, kWalName).value();
    ASSERT_EQ(log.records.size(), k) << "boundary " << k;
    for (size_t i = 0; i < k; ++i) EXPECT_EQ(log.records[i], payloads[i]);
    EXPECT_EQ(log.valid_bytes, boundaries[k]);
  }
}

TEST(WalTest, CrashMidSyncKeepsDurablePrefix) {
  SimDisk disk(256);
  FaultPolicy policy;
  auto wal = Wal::Create(&disk, kWalName).value();
  std::vector<std::string> payloads;
  for (int i = 0; i < 12; ++i) {
    payloads.push_back(Payload(i, 200));  // ~10 pages of log.
    wal->Append(payloads.back());
  }
  policy.CrashAtWrite(4);  // Power dies on the 4th page write of the sync.
  disk.set_fault_policy(&policy);
  EXPECT_FALSE(wal->Sync().ok());
  EXPECT_TRUE(disk.crashed());

  auto rebooted = disk.CloneDurable();
  auto log = Wal::ReadLog(rebooted.get(), kWalName).value();
  // Exactly a prefix survived — no reordering, no phantom records.
  ASSERT_LT(log.records.size(), payloads.size());
  for (size_t i = 0; i < log.records.size(); ++i) {
    EXPECT_EQ(log.records[i], payloads[i]);
  }
  EXPECT_GT(log.records.size(), 0u);  // Three full pages did land.
}

TEST(WalTest, SyncRetriesTransientFaults) {
  SimDisk disk(512);
  FaultPolicy policy;
  policy.FailNthWrite(1);
  policy.FailNthAllocate(1);
  disk.set_fault_policy(&policy);
  auto wal = Wal::Create(&disk, kWalName).value();
  wal->Append(Payload(0, 100));
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->io_retries(), 2u);
  disk.set_fault_policy(nullptr);
  auto log = Wal::ReadLog(&disk, kWalName).value();
  ASSERT_EQ(log.records.size(), 1u);
}

TEST(WalTest, FailedSyncKeepsPendingForRetry) {
  SimDisk disk(512);
  FaultPolicy policy;
  policy.FailWritesPermanentlyAt(1);
  disk.set_fault_policy(&policy);
  auto wal = Wal::Create(&disk, kWalName).value();
  wal->Append(Payload(0, 100));
  EXPECT_FALSE(wal->Sync().ok());
  EXPECT_GT(wal->pending_bytes(), 0u);
  // Device replaced; the retry drains the buffer.
  disk.set_fault_policy(nullptr);
  ASSERT_TRUE(wal->Sync().ok());
  EXPECT_EQ(wal->pending_bytes(), 0u);
  auto log = Wal::ReadLog(&disk, kWalName).value();
  ASSERT_EQ(log.records.size(), 1u);
  EXPECT_EQ(log.records[0], Payload(0, 100));
}

TEST(WalRecordTest, EncodeDecodeRoundTrip) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kRts;
  rec.schema_type = 3;
  rec.id_or_group = -77;
  rec.begin = 1'000'000;
  rec.end = 2'000'000;
  rec.interval = 1000;
  rec.n = 1001;
  rec.blob = std::string("blob\0data", 9);
  rec.zone_map = "zm";
  std::string encoded;
  rec.EncodeTo(&encoded);

  WalRecord out;
  ASSERT_TRUE(WalRecord::Decode(encoded, &out));
  EXPECT_EQ(out.kind, rec.kind);
  EXPECT_EQ(out.schema_type, rec.schema_type);
  EXPECT_EQ(out.id_or_group, rec.id_or_group);
  EXPECT_EQ(out.begin, rec.begin);
  EXPECT_EQ(out.end, rec.end);
  EXPECT_EQ(out.interval, rec.interval);
  EXPECT_EQ(out.n, rec.n);
  EXPECT_EQ(out.blob, rec.blob);
  EXPECT_EQ(out.zone_map, rec.zone_map);
}

TEST(WalRecordTest, EncodePayloadMatchesEncodeTo) {
  WalRecord rec;
  rec.kind = WalRecord::Kind::kMgDelete;
  rec.schema_type = 1;
  rec.id_or_group = 42;
  rec.begin = 5;
  rec.end = 9;
  rec.n = 4;
  std::string via_struct;
  rec.EncodeTo(&via_struct);
  std::string via_fields;
  EncodeWalPayload(WalRecord::Kind::kMgDelete, 1, 42, 5, 9, 0, 4, Slice(),
                   Slice(), &via_fields);
  EXPECT_EQ(via_struct, via_fields);
}

TEST(WalRecordTest, DecodeRejectsCorruption) {
  WalRecord rec;
  rec.blob = "payload";
  std::string encoded;
  rec.EncodeTo(&encoded);
  WalRecord out;
  EXPECT_FALSE(WalRecord::Decode(Slice(), &out));
  EXPECT_FALSE(
      WalRecord::Decode(Slice(encoded.data(), encoded.size() - 1), &out));
  std::string bad_kind = encoded;
  bad_kind[0] = 9;
  EXPECT_FALSE(WalRecord::Decode(bad_kind, &out));
  std::string trailing = encoded + "x";
  EXPECT_FALSE(WalRecord::Decode(trailing, &out));
}


// --- ReadDurable: the replication cursor ------------------------------------

TEST(WalCursorTest, ReadsDurablePrefixInChunks) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  std::vector<std::string> payloads;
  for (int i = 0; i < 30; ++i) payloads.push_back(Payload(i, 50 + i));
  for (const auto& p : payloads) wal->Append(p);
  ASSERT_TRUE(wal->Sync().ok());

  // Walk the whole log with a small byte budget: every chunk's next_lsn
  // feeds the next call, and concatenating the chunks yields the log.
  std::vector<std::string> streamed;
  uint64_t lsn = 0;
  while (true) {
    auto chunk = wal->ReadDurable(lsn, /*max_bytes=*/200);
    ASSERT_TRUE(chunk.ok()) << chunk.status().ToString();
    EXPECT_EQ(chunk->durable_lsn, wal->synced_bytes());
    if (chunk->records.empty()) {
      EXPECT_EQ(chunk->next_lsn, lsn);  // Caught up: position is stable.
      break;
    }
    EXPECT_GT(chunk->next_lsn, lsn);
    for (auto& r : chunk->records) streamed.push_back(std::move(r));
    lsn = chunk->next_lsn;
  }
  EXPECT_EQ(streamed, payloads);
  EXPECT_EQ(lsn, wal->synced_bytes());
}

TEST(WalCursorTest, UnsyncedAppendsAreInvisible) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  wal->Append(Payload(0, 64));
  ASSERT_TRUE(wal->Sync().ok());
  const uint64_t durable = wal->synced_bytes();
  wal->Append(Payload(1, 64));  // Appended but NOT synced.

  auto chunk = wal->ReadDurable(0, 1 << 20);
  ASSERT_TRUE(chunk.ok());
  ASSERT_EQ(chunk->records.size(), 1u);
  EXPECT_EQ(chunk->records[0], Payload(0, 64));
  EXPECT_EQ(chunk->next_lsn, durable);
  EXPECT_EQ(chunk->durable_lsn, durable);
}

TEST(WalCursorTest, ResumesAcrossSyncsAndPageBoundaries) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  // Records bigger than a page force frames to straddle page boundaries.
  std::vector<std::string> payloads;
  uint64_t lsn = 0;
  std::vector<std::string> streamed;
  for (int i = 0; i < 8; ++i) {
    payloads.push_back(Payload(i, 700 + 13 * i));
    wal->Append(payloads.back());
    ASSERT_TRUE(wal->Sync().ok());
    auto chunk = wal->ReadDurable(lsn, 1 << 20);
    ASSERT_TRUE(chunk.ok());
    for (auto& r : chunk->records) streamed.push_back(std::move(r));
    lsn = chunk->next_lsn;
  }
  EXPECT_EQ(streamed, payloads);
}

TEST(WalCursorTest, ReadPastDurableIsEmptyNotAnError) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  wal->Append(Payload(0, 64));
  ASSERT_TRUE(wal->Sync().ok());
  auto chunk = wal->ReadDurable(wal->synced_bytes(), 1 << 20);
  ASSERT_TRUE(chunk.ok());
  EXPECT_TRUE(chunk->records.empty());
  EXPECT_EQ(chunk->next_lsn, wal->synced_bytes());
}

TEST(WalCursorTest, CorruptionBelowWatermarkIsDataLoss) {
  SimDisk disk(512);
  auto wal = Wal::Create(&disk, kWalName).value();
  const std::string first = Payload(0, 60);
  wal->Append(first);
  wal->Append(Payload(1, 60));
  ASSERT_TRUE(wal->Sync().ok());

  // Rot a CRC byte of the second frame on disk, below the durable
  // watermark: the cursor re-reads pages from disk, and corruption under
  // the watermark is bit rot, never a torn tail.
  FileId f = disk.OpenFile(kWalName).value();
  std::string page(disk.page_size(), '\0');
  ODH_CHECK_OK(disk.ReadPage(f, 0, page.data()));
  page[(8 + first.size()) + 4] ^= 0x40;
  ODH_CHECK_OK(disk.WritePage(f, 0, page.data()));

  auto chunk = wal->ReadDurable(0, 1 << 20);
  EXPECT_TRUE(chunk.status().IsDataLoss()) << chunk.status().ToString();
  // The clean first frame is still readable on its own.
  auto good = wal->ReadDurable(0, /*max_bytes=*/1);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  ASSERT_EQ(good->records.size(), 1u);
  EXPECT_EQ(good->records[0], first);
}

}  // namespace
}  // namespace odh::core
