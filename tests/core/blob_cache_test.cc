// Cache coherence for the decoded-blob cache: a cached answer must be
// bit-identical to a fresh decode on every scan path, and the generation
// component of the key must make stale entries unreachable across
// compaction swaps, MG rebuilds, and retention drop + re-ingest — the
// cache is never explicitly invalidated, it is simply never asked for a
// dead generation again.

#include "core/blob_cache.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "sql/session.h"

namespace odh::core {
namespace {

BlobCacheKey Key(int64_t seg, int64_t generation, uint64_t rid) {
  BlobCacheKey key;
  key.schema_type = 0;
  key.structure = BlobStructure::kRts;
  key.seg = seg;
  key.generation = generation;
  key.rid = rid;
  key.tag_mask = ~0ull;
  return key;
}

std::shared_ptr<const RecordBatch> Batch(double v) {
  auto b = std::make_shared<RecordBatch>();
  b->uniform_id = 1;
  b->timestamps = {1, 2, 3};
  b->columns = {{v, v, v}};
  return b;
}

TEST(BlobCacheUnitTest, LookupInsertAndStats) {
  BlobCache cache(/*capacity_bytes=*/4096, /*num_shards=*/1);
  EXPECT_EQ(cache.Lookup(Key(0, 0, 1)), nullptr);
  cache.Insert(Key(0, 0, 1), Batch(7.0), 1024);
  auto hit = cache.Lookup(Key(0, 0, 1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->columns[0][0], 7.0);

  // Any key component change is a different entry.
  EXPECT_EQ(cache.Lookup(Key(1, 0, 1)), nullptr);
  EXPECT_EQ(cache.Lookup(Key(0, 1, 1)), nullptr);
  EXPECT_EQ(cache.Lookup(Key(0, 0, 2)), nullptr);

  const BlobCacheStats s = cache.stats();
  EXPECT_EQ(s.hits, 1);
  EXPECT_EQ(s.misses, 4);
  EXPECT_EQ(s.inserts, 1);
  EXPECT_EQ(s.entries, 1);
  EXPECT_EQ(s.bytes, 1024);
}

TEST(BlobCacheUnitTest, EvictsLeastRecentlyUsed) {
  BlobCache cache(4096, 1);
  for (int i = 0; i < 4; ++i) {
    cache.Insert(Key(0, 0, static_cast<uint64_t>(i)), Batch(1.0 * i), 1024);
  }
  // Touch rid 0 so rid 1 is the LRU entry when the next insert overflows.
  ASSERT_NE(cache.Lookup(Key(0, 0, 0)), nullptr);
  cache.Insert(Key(0, 0, 99), Batch(99.0), 1024);
  EXPECT_EQ(cache.Lookup(Key(0, 0, 1)), nullptr);
  EXPECT_NE(cache.Lookup(Key(0, 0, 0)), nullptr);
  EXPECT_NE(cache.Lookup(Key(0, 0, 99)), nullptr);
  EXPECT_GE(cache.stats().evictions, 1);
  EXPECT_LE(cache.stats().bytes, 4096);
}

TEST(BlobCacheUnitTest, OversizedValuesAreRefused) {
  BlobCache cache(4096, 1);
  cache.Insert(Key(0, 0, 1), Batch(1.0), 8192);
  EXPECT_EQ(cache.Lookup(Key(0, 0, 1)), nullptr);
  EXPECT_EQ(cache.stats().entries, 0);
}

TEST(BlobCacheUnitTest, DuplicateInsertReplacesInPlace) {
  BlobCache cache(4096, 1);
  cache.Insert(Key(0, 0, 1), Batch(1.0), 1024);
  cache.Insert(Key(0, 0, 1), Batch(2.0), 512);
  auto hit = cache.Lookup(Key(0, 0, 1));
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->columns[0][0], 2.0);
  EXPECT_EQ(cache.stats().entries, 1);
  EXPECT_EQ(cache.stats().bytes, 512);
}

// --- End-to-end coherence over a segmented store ---------------------

constexpr Timestamp kSpan = 100 * kMicrosPerSecond;
constexpr int kSeconds = 500;

OdhOptions CacheOpts(size_t cache_bytes) {
  OdhOptions options;
  options.batch_size = 25;
  options.segment_span = kSpan;  // 5 segments over 500 s.
  options.query_parallelism = 4;
  options.blob_cache_bytes = cache_bytes;
  options.sql_metadata_router = false;
  return options;
}

int DefineAndIngest(OdhSystem* sys) {
  int type = sys->DefineSchemaType("env", {"temperature", "wind"}).value();
  for (SourceId id = 1; id <= 2; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, true));
  }
  for (SourceId id = 3; id <= 4; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, false));
  }
  for (int i = 0; i < kSeconds; ++i) {
    for (SourceId id = 1; id <= 4; ++id) {
      Timestamp ts = static_cast<Timestamp>(i) * kMicrosPerSecond;
      if (id >= 3) ts += (i % 7) * 1000;  // Jitter -> IRTS.
      ODH_CHECK_OK(sys->Ingest({id, ts, {20.0 + id + 0.01 * i, 1.0 * id}}));
    }
  }
  ODH_CHECK_OK(sys->FlushAll());
  return type;
}

/// Streams `sql` and returns one line per row IN EMISSION ORDER — cached
/// and fresh scans must agree byte for byte, order included.
std::vector<std::string> QueryLines(OdhSystem* sys, const std::string& sql) {
  sql::Session session(sys->engine());
  auto stream = session.ExecuteStreaming(sql);
  ODH_CHECK_OK(stream.status());
  std::vector<std::string> rows;
  Row row;
  while ((*stream)->Next(&row).value()) {
    std::string line;
    for (const Datum& d : row) line += d.ToString() + "|";
    rows.push_back(std::move(line));
  }
  return rows;
}

class CacheCoherenceTest : public ::testing::Test {
 protected:
  CacheCoherenceTest()
      : cached_(CacheOpts(32u << 20)), fresh_(CacheOpts(0)) {
    type_ = DefineAndIngest(&cached_);
    DefineAndIngest(&fresh_);
  }

  OdhSystem cached_;
  OdhSystem fresh_;
  int type_ = 0;
};

TEST_F(CacheCoherenceTest, CachedEqualsFreshAcrossAllScanPaths) {
  const std::vector<std::string> queries = {
      "SELECT id, ts, temperature, wind FROM env_v WHERE id = 1",
      "SELECT ts, temperature FROM env_v WHERE id = 3 AND ts >= " +
          std::to_string(120 * kMicrosPerSecond) + " AND ts <= " +
          std::to_string(380 * kMicrosPerSecond),
      "SELECT id, ts, wind FROM env_v WHERE ts >= " +
          std::to_string(150 * kMicrosPerSecond) + " AND ts <= " +
          std::to_string(250 * kMicrosPerSecond),
      "SELECT id, ts, temperature FROM env_v WHERE temperature > 23.5",
      "SELECT COUNT(*), SUM(temperature), MIN(wind), MAX(wind) "
      "FROM env_v WHERE id = 2",
  };
  for (bool vectorized : {false, true}) {
    for (bool pushdown : {false, true}) {
      cached_.config()->SetScanPathOptions(vectorized, pushdown);
      fresh_.config()->SetScanPathOptions(vectorized, pushdown);
      for (int parallelism : {0, 4}) {
        cached_.config()->SetQueryParallelism(parallelism);
        fresh_.config()->SetQueryParallelism(0);
        for (const std::string& sql : queries) {
          // Twice on the cached system: the first run fills the cache, the
          // second is served from it. Both must equal the cache-free twin.
          const auto first = QueryLines(&cached_, sql);
          const auto second = QueryLines(&cached_, sql);
          const auto reference = QueryLines(&fresh_, sql);
          EXPECT_EQ(first, reference)
              << sql << " vec=" << vectorized << " push=" << pushdown
              << " par=" << parallelism;
          EXPECT_EQ(second, reference)
              << sql << " (warm) vec=" << vectorized << " push=" << pushdown
              << " par=" << parallelism;
        }
      }
    }
  }
}

TEST_F(CacheCoherenceTest, NativeCursorsSeeCachedAndFreshIdentically) {
  auto drain = [](Result<std::unique_ptr<RecordCursor>> cursor) {
    ODH_CHECK_OK(cursor.status());
    std::vector<std::string> lines;
    OperationalRecord rec;
    while ((*cursor)->Next(&rec).value()) {
      std::string line = std::to_string(rec.id) + "@" +
                         std::to_string(rec.ts);
      for (double v : rec.tags) line += "," + std::to_string(v);
      lines.push_back(std::move(line));
    }
    return lines;
  };
  const Timestamp lo = 80 * kMicrosPerSecond;
  const Timestamp hi = 420 * kMicrosPerSecond;
  const auto cold = drain(cached_.HistoricalQuery(type_, 1, lo, hi));
  const auto warm = drain(cached_.HistoricalQuery(type_, 1, lo, hi));
  const auto reference = drain(fresh_.HistoricalQuery(type_, 1, lo, hi));
  EXPECT_EQ(cold, reference);
  EXPECT_EQ(warm, reference);
  EXPECT_GT(cached_.reader()->stats().blob_cache_hits, 0);

  const auto slice_cold = drain(cached_.SliceQuery(type_, lo, hi));
  const auto slice_warm = drain(cached_.SliceQuery(type_, lo, hi));
  EXPECT_EQ(slice_cold, drain(fresh_.SliceQuery(type_, lo, hi)));
  EXPECT_EQ(slice_warm, slice_cold);
}

TEST_F(CacheCoherenceTest, CompactionSwapMakesStaleGenerationsUnreachable) {
  const std::string all = "SELECT id, ts, temperature, wind FROM env_v";
  const auto before = QueryLines(&cached_, all);  // Warms generation 0.
  ASSERT_TRUE(cached_.CompactSegments(type_).ok());

  // The compacted segments carry generation 1: every cached generation-0
  // entry is silently unreachable, so the scan decodes fresh blobs and the
  // answers stay exact. Compaction rewrites blob boundaries, so compare as
  // sorted sets against the uncompacted twin (emission order is a
  // same-layout contract; cross-layout only the values must agree).
  auto sorted = [](std::vector<std::string> rows) {
    std::sort(rows.begin(), rows.end());
    return rows;
  };
  cached_.reader()->ResetStats();
  const auto after = QueryLines(&cached_, all);
  EXPECT_EQ(sorted(after), sorted(QueryLines(&fresh_, all)));
  EXPECT_EQ(sorted(after), sorted(before));
  const ReadStats stats = cached_.reader()->SnapshotAndResetStats();
  EXPECT_GT(stats.blobs_decoded, 0)
      << "post-compaction scan was served stale cached generations";

  // The rewritten blobs cache under the new generation: a repeat hits.
  const auto warm = QueryLines(&cached_, all);
  EXPECT_EQ(warm, after);
  const ReadStats warm_stats = cached_.reader()->SnapshotAndResetStats();
  EXPECT_EQ(warm_stats.blobs_decoded, 0);
  EXPECT_GT(warm_stats.blob_cache_hits, 0);
}

TEST_F(CacheCoherenceTest, MgRebuildBumpsEpochAfterReorganize) {
  // A metered type: every blob lands in MG first (the reorganizer_test
  // shape), so reorganize + CompactMg rebuilds the MG heap and reshuffles
  // rids. The epoch in the cache key must keep old rid entries dead.
  OdhOptions options = CacheOpts(32u << 20);
  options.mg_group_size = 4;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("meters", {"kwh"}).value();
  for (SourceId id = 0; id < 8; ++id) {
    ODH_CHECK_OK(odh.RegisterSource(id, type, 15 * kMicrosPerMinute, true));
  }
  for (int reading = 0; reading < 6; ++reading) {
    for (SourceId id = 0; id < 8; ++id) {
      ODH_CHECK_OK(odh.Ingest(
          {id, reading * 15 * kMicrosPerMinute, {id * 10.0 + reading}}));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());

  const std::string all = "SELECT id, ts, kwh FROM meters_v";
  const auto before = QueryLines(&odh, all);  // Warms the MG blobs.
  ASSERT_TRUE(odh.Reorganize(type, kMaxTimestamp).ok());
  // Same answer set (reorganization is lossless), served from the new
  // RTS blobs — never from the pre-rebuild MG cache entries.
  auto after = QueryLines(&odh, all);
  std::sort(after.begin(), after.end());
  auto sorted_before = before;
  std::sort(sorted_before.begin(), sorted_before.end());
  EXPECT_EQ(after, sorted_before);
}

TEST_F(CacheCoherenceTest, RetentionDropThenReingestServesNewValues) {
  // Warm the cache over the full history, then drop the oldest segments
  // and re-ingest different values into the same time range (a fresh
  // source keeps per-source monotonicity). The re-created segment reuses
  // the same key and a fresh table — rids can collide with cached ones —
  // so only the recorded next-generation bump keeps the old entries dead.
  const std::string head = "SELECT id, ts, temperature FROM env_v "
                           "WHERE ts < " +
                           std::to_string(100 * kMicrosPerSecond);
  const auto old_rows = QueryLines(&cached_, head);
  EXPECT_EQ(old_rows.size(), 400u);  // 4 sources x 100 s.

  auto dropped = cached_.SetRetention(type_, 150 * kMicrosPerSecond);
  ASSERT_TRUE(dropped.ok());
  ASSERT_GT(*dropped, 0);
  ASSERT_TRUE(cached_.SetRetention(type_, 0).status().ok());  // Clear.

  ODH_CHECK_OK(cached_.RegisterSource(9, type_, kMicrosPerSecond, true));
  for (int i = 0; i < 100; ++i) {
    ODH_CHECK_OK(cached_.Ingest(
        {9, static_cast<Timestamp>(i) * kMicrosPerSecond, {-5.0 - i, 0.0}}));
  }
  ODH_CHECK_OK(cached_.FlushAll());

  for (int run = 0; run < 2; ++run) {  // Cold, then warm.
    const auto rows = QueryLines(&cached_, head);
    ASSERT_EQ(rows.size(), 100u) << "run " << run;
    for (const std::string& line : rows) {
      EXPECT_EQ(line.substr(0, 2), "9|")
          << "dropped row resurrected (run " << run << "): " << line;
    }
  }
}

TEST_F(CacheCoherenceTest, DirtyRowsAreNeverMaskedByTheCache) {
  const std::string sql =
      "SELECT id, ts, temperature FROM env_v WHERE id = 1 AND ts >= " +
      std::to_string(480 * kMicrosPerSecond);
  const auto flushed = QueryLines(&cached_, sql);  // Warms the tail blobs.
  // New unflushed rows live in the writer's dirty buffers; the warm cached
  // scan must still merge them in.
  for (int i = kSeconds; i < kSeconds + 5; ++i) {
    ODH_CHECK_OK(cached_.Ingest(
        {1, static_cast<Timestamp>(i) * kMicrosPerSecond, {99.0, 0.0}}));
  }
  const auto with_dirty = QueryLines(&cached_, sql);
  EXPECT_EQ(with_dirty.size(), flushed.size() + 5);
  ODH_CHECK_OK(cached_.FlushAll());
  const auto after_flush = QueryLines(&cached_, sql);
  EXPECT_EQ(after_flush, with_dirty);
}

/// TSAN target: hit/miss/evict churn on a deliberately tiny cache while
/// ingest, flush, and compaction run concurrently with parallel scans.
TEST(BlobCacheStressTest, ConcurrentScansSurviveEvictionAndCompaction) {
  OdhOptions options;
  options.batch_size = 32;
  options.segment_span = 50 * kMicrosPerSecond;
  options.query_parallelism = 4;
  options.blob_cache_bytes = 64u << 10;  // Tiny: constant eviction.
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("env", {"temp"}).value();
  constexpr int kSources = 3;
  constexpr int kPoints = 2000;
  for (SourceId s = 1; s <= kSources; ++s) {
    ODH_CHECK_OK(odh.RegisterSource(s, type, kMicrosPerSecond, true));
  }
  for (int i = 0; i < kPoints / 2; ++i) {
    for (SourceId s = 1; s <= kSources; ++s) {
      ODH_CHECK_OK(odh.Ingest({s, i * kMicrosPerSecond, {1.0 * i}}));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());

  std::atomic<bool> done{false};
  std::vector<std::thread> workers;
  // Ingest the second half while readers run.
  workers.emplace_back([&] {
    for (int i = kPoints / 2; i < kPoints; ++i) {
      for (SourceId s = 1; s <= kSources; ++s) {
        ODH_CHECK_OK(odh.Ingest({s, i * kMicrosPerSecond, {1.0 * i}}));
      }
      if (i % 200 == 0) ODH_CHECK_OK(odh.FlushAll());
    }
    ODH_CHECK_OK(odh.FlushAll());
  });
  // Compaction bumps generations mid-scan.
  workers.emplace_back([&] {
    while (!done.load(std::memory_order_relaxed)) {
      ODH_CHECK_OK(odh.CompactSegments(type).status());
      std::this_thread::yield();
    }
  });
  // Parallel historical + slice readers through the native API.
  for (int r = 0; r < 2; ++r) {
    workers.emplace_back([&, r] {
      const Timestamp hi = kPoints * kMicrosPerSecond;
      while (!done.load(std::memory_order_relaxed)) {
        auto hist = odh.HistoricalQuery(type, 1 + r, 0, hi);
        ODH_CHECK_OK(hist.status());
        OperationalRecord rec;
        int64_t rows = 0;
        Result<bool> more = true;
        while ((more = (*hist)->Next(&rec)).value()) ++rows;
        ODH_CHECK_OK(more.status());
        EXPECT_GE(rows, kPoints / 2);
        auto slice = odh.SliceQuery(type, 0, 100 * kMicrosPerSecond);
        ODH_CHECK_OK(slice.status());
        while ((more = (*slice)->Next(&rec)).value()) {
        }
        ODH_CHECK_OK(more.status());
      }
    });
  }
  workers[0].join();  // Let the full ingest land...
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  done.store(true, std::memory_order_relaxed);
  for (size_t i = 1; i < workers.size(); ++i) workers[i].join();

  // Every point is still exactly once in the store.
  auto count = odh.engine()->Execute("SELECT COUNT(*) FROM env_v");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count->rows[0][0], Datum::Int64(kSources * kPoints));
  EXPECT_GT(odh.blob_cache()->stats().evictions, 0);
}

}  // namespace
}  // namespace odh::core
