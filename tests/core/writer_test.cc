#include "core/writer.h"

#include <gtest/gtest.h>

#include <cmath>

#include "common/logging.h"
#include "common/random.h"
#include "core/odh.h"

namespace odh::core {
namespace {

OdhOptions TestOptions() {
  OdhOptions options;
  options.batch_size = 10;
  options.mg_group_size = 5;
  options.sql_metadata_router = false;
  return options;
}

class WriterTest : public ::testing::Test {
 protected:
  WriterTest() : odh_(TestOptions()) {
    type_ = odh_.DefineSchemaType("t", {"a", "b"}).value();
  }

  OperationalRecord Rec(SourceId id, Timestamp ts, double a, double b) {
    return OperationalRecord{id, ts, {a, b}};
  }

  OdhSystem odh_;
  int type_;
};

TEST_F(WriterTest, RegularHighFrequencyFlushesRtsBlobs) {
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, true).ok());
  for (int i = 0; i < 25; ++i) {
    ASSERT_TRUE(odh_.Ingest(Rec(1, i * 1000, i, -i)).ok());
  }
  // 25 points, batch 10 -> two full blobs flushed, 5 buffered.
  EXPECT_EQ(odh_.writer()->stats().rts_blobs, 2);
  EXPECT_EQ(odh_.writer()->stats().irts_blobs, 0);
  EXPECT_EQ(odh_.writer()->stats().points_ingested, 25);
  EXPECT_EQ(odh_.store()->rts_stats(type_).point_count, 20);
  ASSERT_TRUE(odh_.FlushAll().ok());
  EXPECT_EQ(odh_.store()->rts_stats(type_).point_count, 25);
}

TEST_F(WriterTest, JitteryRegularSourceFallsBackToIrts) {
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, true).ok());
  Random rng(1);
  for (int i = 0; i < 10; ++i) {
    // 30% jitter breaks the 1% regularity tolerance.
    Timestamp ts = i * 1000 + rng.UniformRange(0, 300);
    ASSERT_TRUE(odh_.Ingest(Rec(1, ts, i, i)).ok());
  }
  EXPECT_EQ(odh_.writer()->stats().rts_blobs, 0);
  EXPECT_EQ(odh_.writer()->stats().irts_blobs, 1);
}

TEST_F(WriterTest, IrregularHighFrequencyUsesIrts) {
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, false).ok());
  Random rng(2);
  Timestamp t = 0;
  for (int i = 0; i < 10; ++i) {
    t += rng.UniformRange(100, 2000);
    ASSERT_TRUE(odh_.Ingest(Rec(1, t, i, i)).ok());
  }
  EXPECT_EQ(odh_.writer()->stats().irts_blobs, 1);
}

TEST_F(WriterTest, LowFrequencySourcesGroupIntoMg) {
  // 10 meters at 15-minute intervals, group size 5 -> 2 groups.
  for (SourceId id = 0; id < 10; ++id) {
    ASSERT_TRUE(
        odh_.RegisterSource(id, type_, 15 * kMicrosPerMinute, true).ok());
  }
  // One reading per meter: 10 records over 2 groups of 5 -> each group
  // buffer reaches batch_size 10? No: 5 records per group, under batch
  // size, so nothing flushes until FlushAll.
  for (SourceId id = 0; id < 10; ++id) {
    ASSERT_TRUE(odh_.Ingest(Rec(id, 1000 + id, 1.0, 2.0)).ok());
  }
  EXPECT_EQ(odh_.writer()->stats().mg_blobs, 0);
  ASSERT_TRUE(odh_.FlushAll().ok());
  EXPECT_EQ(odh_.writer()->stats().mg_blobs, 2);
  EXPECT_EQ(odh_.store()->mg_stats(type_).point_count, 10);
}

TEST_F(WriterTest, MgFlushesWhenBatchFills) {
  for (SourceId id = 0; id < 5; ++id) {
    ASSERT_TRUE(
        odh_.RegisterSource(id, type_, 15 * kMicrosPerMinute, true).ok());
  }
  // Two rounds of readings from 5 meters = 10 records = batch size.
  for (int round = 0; round < 2; ++round) {
    for (SourceId id = 0; id < 5; ++id) {
      ASSERT_TRUE(
          odh_.Ingest(Rec(id, round * kMicrosPerMinute, 1, 2)).ok());
    }
  }
  EXPECT_EQ(odh_.writer()->stats().mg_blobs, 1);
}

TEST_F(WriterTest, MgWindowCloseForcesFlush) {
  ASSERT_TRUE(
      odh_.RegisterSource(1, type_, 15 * kMicrosPerMinute, true).ok());
  ASSERT_TRUE(odh_.Ingest(Rec(1, 0, 1, 2)).ok());
  // Next record far beyond the MG window (default 15 min) closes it.
  ASSERT_TRUE(odh_.Ingest(Rec(1, kMicrosPerHour, 3, 4)).ok());
  EXPECT_EQ(odh_.writer()->stats().mg_blobs, 1);
}

TEST_F(WriterTest, RejectsUnknownSourceAndBadArity) {
  EXPECT_TRUE(odh_.Ingest(Rec(99, 0, 1, 2)).IsNotFound());
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, true).ok());
  OperationalRecord bad{1, 0, {1.0}};
  EXPECT_TRUE(odh_.Ingest(bad).IsInvalidArgument());
}

TEST_F(WriterTest, RejectsTimeTravel) {
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, true).ok());
  ASSERT_TRUE(odh_.Ingest(Rec(1, 5000, 1, 2)).ok());
  EXPECT_TRUE(odh_.Ingest(Rec(1, 4000, 1, 2)).IsInvalidArgument());
  // Equal timestamps are allowed.
  EXPECT_TRUE(odh_.Ingest(Rec(1, 5000, 1, 2)).ok());
}

TEST_F(WriterTest, DirtyReadSeesBufferedRecords) {
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, true).ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(odh_.Ingest(Rec(1, i * 1000, i, i)).ok());
  }
  std::vector<OperationalRecord> dirty;
  ASSERT_TRUE(
      odh_.writer()->CollectDirty(type_, 1, 0, kMaxTimestamp, &dirty).ok());
  EXPECT_EQ(dirty.size(), 5u);
  // Range-filtered.
  dirty.clear();
  ASSERT_TRUE(odh_.writer()->CollectDirty(type_, 1, 1000, 2000, &dirty).ok());
  EXPECT_EQ(dirty.size(), 2u);
  // Wrong id.
  dirty.clear();
  ASSERT_TRUE(odh_.writer()->CollectDirty(type_, 2, 0, kMaxTimestamp, &dirty)
                  .ok());
  EXPECT_TRUE(dirty.empty());
}

TEST_F(WriterTest, StoreScansRespectTimeRange) {
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, true).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(odh_.Ingest(Rec(1, i * 1000, i, i)).ok());
  }
  ASSERT_TRUE(odh_.FlushAll().ok());
  // Blobs: [0,9k],[10k,19k],[20k,29k],[30k,39k].
  auto all = odh_.store()->GetRts(type_, 1, 0, kMaxTimestamp).value();
  EXPECT_EQ(all.size(), 4u);
  auto some = odh_.store()->GetRts(type_, 1, 15000, 25000).value();
  EXPECT_EQ(some.size(), 2u);
  auto none = odh_.store()->GetRts(type_, 2, 0, kMaxTimestamp).value();
  EXPECT_TRUE(none.empty());
}

TEST_F(WriterTest, MultipleSourcesInterleaved) {
  ASSERT_TRUE(odh_.RegisterSource(1, type_, 1000, true).ok());
  ASSERT_TRUE(odh_.RegisterSource(2, type_, 1000, true).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(odh_.Ingest(Rec(1, i * 1000, i, i)).ok());
    ASSERT_TRUE(odh_.Ingest(Rec(2, i * 1000, -i, -i)).ok());
  }
  EXPECT_EQ(odh_.writer()->stats().rts_blobs, 2);
  auto blobs1 = odh_.store()->GetRts(type_, 1, 0, kMaxTimestamp).value();
  auto blobs2 = odh_.store()->GetRts(type_, 2, 0, kMaxTimestamp).value();
  EXPECT_EQ(blobs1.size(), 1u);
  EXPECT_EQ(blobs2.size(), 1u);
  EXPECT_EQ(blobs1[0].n, 10);
}

}  // namespace
}  // namespace odh::core
