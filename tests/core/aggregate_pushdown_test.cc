#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/logging.h"
#include "core/odh.h"

namespace odh::core {
namespace {

/// 10 RTS blobs of 50 points each for source 1: one point per second
/// (SQL timestamp literals have second granularity), temp = i
/// (integer-valued, so double sums are FP-exact), load = 5.
class AggregatePushdownTest : public ::testing::Test {
 protected:
  AggregatePushdownTest() {
    OdhOptions options;
    options.batch_size = 50;
    options.sql_metadata_router = false;
    odh_ = std::make_unique<OdhSystem>(options);
    type_ = odh_->DefineSchemaType("m", {"temp", "load"}).value();
    ODH_CHECK_OK(odh_->RegisterSource(1, type_, kMicrosPerSecond, true));
    for (int i = 0; i < 500; ++i) {
      ODH_CHECK_OK(odh_->Ingest({1, i * kMicrosPerSecond, {1.0 * i, 5.0}}));
    }
    ODH_CHECK_OK(odh_->FlushAll());
  }

  std::string TsLiteral(Timestamp ts) {
    return "'" + FormatTimestamp(ts) + "'";
  }

  std::unique_ptr<OdhSystem> odh_;
  int type_;
};

TEST_F(AggregatePushdownTest, FullyCoveredAggregatesDecodeZeroBlobs) {
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute(
      "SELECT COUNT(*), SUM(temp), AVG(temp), MIN(temp), MAX(temp) "
      "FROM m_v WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(500));
  EXPECT_EQ(r->rows[0][1], Datum::Double(124750.0));  // sum 0..499
  EXPECT_EQ(r->rows[0][2], Datum::Double(249.5));
  EXPECT_EQ(r->rows[0][3], Datum::Double(0.0));
  EXPECT_EQ(r->rows[0][4], Datum::Double(499.0));
  const ReadStats stats = odh_->reader()->stats();
  EXPECT_EQ(stats.blobs_decoded, 0);
  EXPECT_EQ(stats.blobs_skipped_by_summary, 10);
}

TEST_F(AggregatePushdownTest, BoundaryBlobsDecodeInteriorBlobsSkip) {
  // Seconds 25..474 half-cover the first and last blob; the eight
  // interior blobs are answered from summaries alone.
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute(
      "SELECT COUNT(*), SUM(temp), MIN(temp), MAX(temp) FROM m_v "
      "WHERE id = 1 AND ts BETWEEN " +
      TsLiteral(25 * kMicrosPerSecond) + " AND " +
      TsLiteral(474 * kMicrosPerSecond));
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(450));
  EXPECT_EQ(r->rows[0][1], Datum::Double(112275.0));  // sum 25..474
  EXPECT_EQ(r->rows[0][2], Datum::Double(25.0));
  EXPECT_EQ(r->rows[0][3], Datum::Double(474.0));
  const ReadStats stats = odh_->reader()->stats();
  EXPECT_EQ(stats.blobs_decoded, 2);
  EXPECT_EQ(stats.blobs_skipped_by_summary, 8);
}

TEST_F(AggregatePushdownTest, ProvableTagFiltersSkipFilteredBlobs) {
  // temp BETWEEN 100 AND 299 exactly covers blobs 2..5 (values 100..299):
  // those four are provable by AllMatch; the other six are pruned by
  // MayMatch. Nothing decodes.
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute(
      "SELECT COUNT(*), SUM(temp) FROM m_v "
      "WHERE id = 1 AND temp BETWEEN 100 AND 299");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(200));
  EXPECT_EQ(r->rows[0][1], Datum::Double(39900.0));  // sum 100..299
  const ReadStats stats = odh_->reader()->stats();
  EXPECT_EQ(stats.blobs_decoded, 0);
  EXPECT_EQ(stats.blobs_skipped_by_summary, 4);
  EXPECT_EQ(stats.blobs_pruned, 6);
}

TEST_F(AggregatePushdownTest, UnprovableTagFiltersFallBackToDecode) {
  // [110, 180] straddles blob boundaries: blobs 2 and 3 (100..199)
  // overlap but are not fully inside, so they decode; the rest prune.
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute(
      "SELECT COUNT(*) FROM m_v WHERE id = 1 AND temp BETWEEN 110 AND 180");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(71));
  const ReadStats stats = odh_->reader()->stats();
  EXPECT_EQ(stats.blobs_decoded, 2);
  EXPECT_EQ(stats.blobs_skipped_by_summary, 0);
  EXPECT_EQ(stats.blobs_pruned, 8);
}

TEST_F(AggregatePushdownTest, DirtyRowsMergeIntoPushedAggregates) {
  // Five unflushed records must be visible (dirty-read isolation) even
  // when every on-disk blob is answered from its summary.
  for (int i = 500; i < 505; ++i) {
    ODH_CHECK_OK(odh_->Ingest({1, i * kMicrosPerSecond, {1.0 * i, 5.0}}));
  }
  odh_->reader()->ResetStats();
  auto r = odh_->engine()->Execute(
      "SELECT COUNT(*), MAX(temp) FROM m_v WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(505));
  EXPECT_EQ(r->rows[0][1], Datum::Double(504.0));
  const ReadStats stats = odh_->reader()->stats();
  EXPECT_EQ(stats.blobs_decoded, 0);
  EXPECT_EQ(stats.blobs_skipped_by_summary, 10);
}

TEST_F(AggregatePushdownTest, PushdownOffMatchesRowAtATimeExactly) {
  const std::string query =
      "SELECT COUNT(*), SUM(temp), AVG(temp), MIN(temp), MAX(temp), "
      "COUNT(load), SUM(load) FROM m_v WHERE id = 1 AND ts BETWEEN " +
      TsLiteral(25 * kMicrosPerSecond) + " AND " +
      TsLiteral(474 * kMicrosPerSecond);
  auto pushed = odh_->engine()->Execute(query);
  odh_->config()->SetScanPathOptions(/*vectorized=*/false,
                                     /*aggregate_pushdown=*/false);
  auto rows = odh_->engine()->Execute(query);
  ASSERT_TRUE(pushed.ok());
  ASSERT_TRUE(rows.ok());
  ASSERT_EQ(pushed->rows.size(), 1u);
  ASSERT_EQ(rows->rows.size(), 1u);
  for (size_t c = 0; c < rows->rows[0].size(); ++c) {
    EXPECT_EQ(pushed->rows[0][c], rows->rows[0][c]) << "column " << c;
  }
}

TEST_F(AggregatePushdownTest, LossyBlobsAnswerValueAggregatesFromDecode) {
  // Satellite regression: quantized (lossy) blobs widen their zone maps
  // and drop the exact bit, so SUM/MIN/MAX must come from decoded values
  // — never from the pre-quantization summary, which can disagree.
  OdhOptions options;
  options.batch_size = 50;
  options.sql_metadata_router = false;
  OdhSystem lossy(options);
  CompressionSpec spec;
  spec.max_error = 0.5;
  int type = lossy.DefineSchemaType("m", {"temp"}, spec).value();
  ODH_CHECK_OK(lossy.RegisterSource(1, type, kMicrosPerSecond, true));
  for (int i = 0; i < 500; ++i) {
    // Fractional values so quantization genuinely moves them.
    ODH_CHECK_OK(lossy.Ingest({1, i * kMicrosPerSecond, {0.3 + 1.0 * i}}));
  }
  ODH_CHECK_OK(lossy.FlushAll());

  const char* query =
      "SELECT SUM(temp), MIN(temp), MAX(temp) FROM m_v WHERE id = 1";
  lossy.reader()->ResetStats();
  auto pushed = lossy.engine()->Execute(query);
  ASSERT_TRUE(pushed.ok());
  // Value aggregates on inexact summaries: every blob decoded.
  EXPECT_EQ(lossy.reader()->stats().blobs_skipped_by_summary, 0);
  EXPECT_EQ(lossy.reader()->stats().blobs_decoded, 10);

  lossy.config()->SetScanPathOptions(/*vectorized=*/false,
                                     /*aggregate_pushdown=*/false);
  auto scanned = lossy.engine()->Execute(query);
  ASSERT_TRUE(scanned.ok());
  for (size_t c = 0; c < scanned->rows[0].size(); ++c) {
    EXPECT_EQ(pushed->rows[0][c], scanned->rows[0][c]) << "column " << c;
  }

  // Counts stay summary-answerable under lossy compression: codecs
  // preserve which values are missing, only their magnitudes move.
  lossy.config()->SetScanPathOptions(true, true);
  lossy.reader()->ResetStats();
  auto counts = lossy.engine()->Execute(
      "SELECT COUNT(*), COUNT(temp) FROM m_v WHERE id = 1");
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts->rows[0][0], Datum::Int64(500));
  EXPECT_EQ(counts->rows[0][1], Datum::Int64(500));
  EXPECT_EQ(lossy.reader()->stats().blobs_skipped_by_summary, 10);
  EXPECT_EQ(lossy.reader()->stats().blobs_decoded, 0);
}

TEST_F(AggregatePushdownTest, PathLabelMatchesExecutedPath) {
  // Satellite regression: the path label reported by EXPLAIN/profile must
  // describe the path that actually executed. It is derived from runtime
  // evidence (which aggregator produced the result, which counters moved),
  // so a planner choice that falls back at execution time cannot leave a
  // stale label behind.
  const std::string query =
      "SELECT COUNT(*), SUM(temp) FROM m_v WHERE id = 1";
  struct Case {
    bool vectorized;
    bool pushdown;
    const char* label;
  };
  for (const Case& c : {Case{true, true, "summary-pushdown"},
                        Case{true, false, "vectorized-batch"},
                        Case{false, false, "row-scan"}}) {
    odh_->config()->SetScanPathOptions(c.vectorized, c.pushdown);
    auto r = odh_->engine()->Execute(query);
    ASSERT_TRUE(r.ok()) << c.label;
    EXPECT_EQ(r->profile.path, c.label);
    EXPECT_NE(r->explain.find(std::string("path: ") + c.label),
              std::string::npos)
        << "explain missing its path line:\n"
        << r->explain;
    // Each label is backed by the evidence that names it.
    const std::string label = c.label;
    if (label == "summary-pushdown") {
      EXPECT_GT(r->profile.blobs_skipped_by_summary, 0);
      EXPECT_EQ(r->profile.blobs_decoded, 0);
    } else if (label == "vectorized-batch") {
      EXPECT_GT(r->profile.batches, 0);
      EXPECT_EQ(r->profile.blobs_skipped_by_summary, 0);
    } else {
      EXPECT_EQ(r->profile.batches, 0);
      EXPECT_GT(r->profile.rows_scanned, 0);
    }
  }
  odh_->config()->SetScanPathOptions(true, true);

  // EXPLAIN PROFILE reports the same label in its first metric row.
  auto ep = odh_->engine()->Execute("EXPLAIN PROFILE " + query);
  ASSERT_TRUE(ep.ok());
  ASSERT_EQ(ep->columns, (std::vector<std::string>{"metric", "value"}));
  ASSERT_FALSE(ep->rows.empty());
  EXPECT_EQ(ep->rows[0][0], Datum::String("path"));
  EXPECT_EQ(ep->rows[0][1], Datum::String("summary-pushdown"));
}

TEST(ScanPathParityTest, SumAvgOverAllNullTagIsNullOnEveryPath) {
  // Satellite regression: SUM/AVG over a tag that is NULL (NaN-encoded)
  // on every matching row must return SQL NULL — not 0 and not NaN — on
  // the summary fast path, the vectorized path, and the row path alike.
  OdhOptions options;
  options.batch_size = 50;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("m", {"temp", "load"}).value();
  ODH_CHECK_OK(odh.RegisterSource(1, type, kMicrosPerSecond, true));
  constexpr double kHole = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 200; ++i) {
    // `load` is never present; `temp` keeps the blob otherwise normal.
    ODH_CHECK_OK(odh.Ingest({1, i * kMicrosPerSecond, {1.0 * i, kHole}}));
  }
  ODH_CHECK_OK(odh.FlushAll());

  const std::vector<std::string> queries = {
      // All-NULL tag over the whole series.
      "SELECT COUNT(*), COUNT(load), SUM(load), AVG(load), MIN(load), "
      "MAX(load) FROM m_v WHERE id = 1",
      // Empty input: no rows match at all.
      "SELECT COUNT(*), COUNT(load), SUM(load), AVG(load), MIN(load), "
      "MAX(load) FROM m_v WHERE id = 99",
  };
  for (const std::string& query : queries) {
    for (const auto& [vec, push] : std::vector<std::pair<bool, bool>>{
             {true, true}, {true, false}, {false, false}}) {
      odh.config()->SetScanPathOptions(vec, push);
      auto r = odh.engine()->Execute(query);
      ASSERT_TRUE(r.ok()) << query;
      ASSERT_EQ(r->rows.size(), 1u) << query;
      EXPECT_EQ(r->rows[0][1], Datum::Int64(0))
          << query << " vec=" << vec << " push=" << push;
      for (size_t c = 2; c < 6; ++c) {
        EXPECT_EQ(r->rows[0][c], Datum::Null())
            << query << " col " << c << " vec=" << vec << " push=" << push;
      }
    }
    odh.config()->SetScanPathOptions(true, true);
  }
}

TEST(ScanPathParityTest, NaNHolesMatchAcrossVectorizedAndRowScans) {
  // Filter parity satellite: rows whose tag is missing (NaN) must behave
  // as SQL NULL on both scan paths — never matching a range predicate —
  // and aggregates must agree across all three execution strategies.
  OdhOptions options;
  options.batch_size = 50;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("m", {"temp", "load"}).value();
  ODH_CHECK_OK(odh.RegisterSource(1, type, kMicrosPerSecond, true));
  constexpr double kHole = std::numeric_limits<double>::quiet_NaN();
  for (int i = 0; i < 200; ++i) {
    // Every third temp reading is missing; load is never projected below.
    double temp = (i % 3 == 0) ? kHole : 1.0 * i;
    ODH_CHECK_OK(odh.Ingest({1, i * kMicrosPerSecond, {temp, 2.0 * i}}));
  }
  ODH_CHECK_OK(odh.FlushAll());

  const std::vector<std::string> queries = {
      "SELECT ts, temp FROM m_v WHERE id = 1 AND temp BETWEEN 50 AND 120",
      "SELECT COUNT(*), COUNT(temp), SUM(temp), MIN(temp), MAX(temp) "
      "FROM m_v WHERE id = 1 AND temp >= 90",
      "SELECT COUNT(*) FROM m_v WHERE id = 1 AND temp < 30",
  };
  for (const std::string& query : queries) {
    odh.config()->SetScanPathOptions(true, true);
    auto pushed = odh.engine()->Execute(query);
    odh.config()->SetScanPathOptions(true, false);
    auto vectorized = odh.engine()->Execute(query);
    odh.config()->SetScanPathOptions(false, false);
    auto rowwise = odh.engine()->Execute(query);
    odh.config()->SetScanPathOptions(true, true);
    ASSERT_TRUE(pushed.ok()) << query;
    ASSERT_TRUE(vectorized.ok()) << query;
    ASSERT_TRUE(rowwise.ok()) << query;
    ASSERT_EQ(pushed->rows.size(), rowwise->rows.size()) << query;
    ASSERT_EQ(vectorized->rows.size(), rowwise->rows.size()) << query;
    for (size_t r = 0; r < rowwise->rows.size(); ++r) {
      for (size_t c = 0; c < rowwise->rows[r].size(); ++c) {
        EXPECT_EQ(pushed->rows[r][c], rowwise->rows[r][c])
            << query << " row " << r << " col " << c;
        EXPECT_EQ(vectorized->rows[r][c], rowwise->rows[r][c])
            << query << " row " << r << " col " << c;
      }
    }
  }
}

TEST(AggregatePushdownMgTest, HistoricalIdQueriesNeverUseMgSummaries) {
  // MG blobs mix sources, so a per-id historical aggregate cannot be
  // answered from the blob-level summary; a slice aggregate can.
  OdhOptions options;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("lf", {"v"}).value();
  ODH_CHECK_OK(odh.RegisterSource(101, type, 10 * kMicrosPerSecond, false));
  ODH_CHECK_OK(odh.RegisterSource(102, type, 10 * kMicrosPerSecond, false));
  for (int i = 0; i < 20; ++i) {
    ODH_CHECK_OK(odh.Ingest({101, i * 10 * kMicrosPerSecond, {1.0}}));
    ODH_CHECK_OK(odh.Ingest({102, i * 10 * kMicrosPerSecond, {2.0}}));
  }
  ODH_CHECK_OK(odh.FlushAll());

  odh.reader()->ResetStats();
  auto by_id =
      odh.engine()->Execute("SELECT COUNT(*), SUM(v) FROM lf_v WHERE id = 101");
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->rows[0][0], Datum::Int64(20));
  EXPECT_EQ(by_id->rows[0][1], Datum::Double(20.0));
  EXPECT_EQ(odh.reader()->stats().blobs_skipped_by_summary, 0);
  EXPECT_GT(odh.reader()->stats().blobs_decoded, 0);

  odh.reader()->ResetStats();
  auto slice = odh.engine()->Execute("SELECT COUNT(*), SUM(v) FROM lf_v");
  ASSERT_TRUE(slice.ok());
  EXPECT_EQ(slice->rows[0][0], Datum::Int64(40));
  EXPECT_EQ(slice->rows[0][1], Datum::Double(60.0));
  EXPECT_EQ(odh.reader()->stats().blobs_decoded, 0);
  EXPECT_GT(odh.reader()->stats().blobs_skipped_by_summary, 0);
}

}  // namespace
}  // namespace odh::core
