// Time-partitioned segments end to end: routing, manifest-first pruning
// (the segments_pruned counters at every level), background compaction
// (lossless, footprint-shrinking, answer-preserving) and retention drops
// (O(1) metadata ops driven through ALTER TABLE ... RETENTION), all
// against a flat (segment_span == 0) twin running the identical workload
// — the segmented store must never change an answer, only its cost.

#include <gtest/gtest.h>

#include <algorithm>
#include <string>
#include <vector>

#include "common/logging.h"
#include "core/odh.h"
#include "sql/session.h"
#include "storage/segment.h"

namespace odh::core {
namespace {

constexpr int kSeconds = 600;
constexpr Timestamp kSpan = 100 * kMicrosPerSecond;  // 6 segments.
constexpr SourceId kFirstRegular = 1, kLastRegular = 4;    // RTS.
constexpr SourceId kFirstJittery = 5, kLastJittery = 6;    // IRTS.

OdhOptions Opts(Timestamp span) {
  OdhOptions options;
  options.batch_size = 25;
  options.segment_span = span;
  return options;
}

int Define(OdhSystem* sys) {
  int type = sys->DefineSchemaType("env", {"temperature", "wind"}).value();
  for (SourceId id = kFirstRegular; id <= kLastRegular; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, true));
  }
  for (SourceId id = kFirstJittery; id <= kLastJittery; ++id) {
    ODH_CHECK_OK(sys->RegisterSource(id, type, kMicrosPerSecond, false));
  }
  return type;
}

Status IngestAll(OdhSystem* sys) {
  for (int i = 0; i < kSeconds; ++i) {
    for (SourceId id = kFirstRegular; id <= kLastJittery; ++id) {
      Timestamp ts = static_cast<Timestamp>(i) * kMicrosPerSecond;
      if (id >= kFirstJittery) ts += (i % 7) * 1000;  // Jitter -> IRTS.
      OperationalRecord r{id, ts, {20.0 + id + 0.01 * i, 1.0 * id}};
      ODH_RETURN_IF_ERROR(sys->Ingest(r));
    }
    if ((i + 1) % 50 == 0) ODH_RETURN_IF_ERROR(sys->FlushAll());
  }
  return sys->FlushAll();
}

/// Streams `sql` and returns one line per row, sorted (segment scans and
/// flat scans may emit the same rows in different physical orders).
std::vector<std::string> QuerySorted(OdhSystem* sys, const std::string& sql) {
  sql::Session session(sys->engine());
  auto stream = session.ExecuteStreaming(sql);
  ODH_CHECK_OK(stream.status());
  std::vector<std::string> rows;
  Row row;
  while ((*stream)->Next(&row).value()) {
    std::string line;
    for (const Datum& d : row) line += d.ToString() + "|";
    rows.push_back(std::move(line));
  }
  std::sort(rows.begin(), rows.end());
  return rows;
}

int64_t CountRows(OdhSystem* sys, const std::string& sql) {
  auto r = sys->engine()->Execute(sql);
  ODH_CHECK_OK(r.status());
  ODH_CHECK(r->rows.size() == 1 && r->rows[0][0].is_int64());
  return r->rows[0][0].int64_value();
}

/// The segments_pruned row of EXPLAIN PROFILE for `sql`.
int64_t ProfiledSegmentsPruned(OdhSystem* sys, const std::string& sql) {
  auto r = sys->engine()->Execute("EXPLAIN PROFILE " + sql);
  ODH_CHECK_OK(r.status());
  for (const Row& row : r->rows) {
    if (row[0] == Datum::String("segments_pruned")) {
      return row[1].int64_value();
    }
  }
  ODH_CHECK(false);  // The profile always carries the row.
  return -1;
}

class SegmentTest : public ::testing::Test {
 protected:
  SegmentTest() : segmented_(Opts(kSpan)), flat_(Opts(0)) {
    type_ = Define(&segmented_);
    Define(&flat_);
    ODH_CHECK_OK(IngestAll(&segmented_));
    ODH_CHECK_OK(IngestAll(&flat_));
  }

  OdhSystem segmented_;
  OdhSystem flat_;
  int type_ = 0;
};

TEST_F(SegmentTest, RoutingMatchesFloorDivisionKeys) {
  std::vector<SegmentInfo> segs = segmented_.store()->SegmentInfos(type_);
  ASSERT_EQ(segs.size(), 6u);  // 600s of data over 100s segments.
  int64_t prev_key = INT64_MIN;
  for (const SegmentInfo& seg : segs) {
    EXPECT_GT(seg.key, prev_key);  // Key order == time order.
    prev_key = seg.key;
    EXPECT_EQ(seg.lo, seg.key * kSpan);
    EXPECT_EQ(seg.hi, seg.lo + kSpan);
    // Blobs are routed by begin timestamp: the data can spill past the
    // nominal hi (a blob straddling the boundary) but never start early.
    EXPECT_GE(seg.min_ts, seg.lo);
    EXPECT_EQ(seg.key, storage::SegmentKeyFor(seg.min_ts, kSpan));
    EXPECT_GT(seg.blob_count, 0);
  }

  // The flat twin: exactly one unbounded segment, pre-segment behavior.
  std::vector<SegmentInfo> flat = flat_.store()->SegmentInfos(type_);
  ASSERT_EQ(flat.size(), 1u);
  EXPECT_EQ(flat[0].key, 0);
  EXPECT_EQ(flat[0].hi, INT64_MAX);
}

TEST_F(SegmentTest, SegmentedAnswersMatchFlatAnswers) {
  const std::string queries[] = {
      "SELECT id, ts, temperature, wind FROM env_v",
      "SELECT ts, temperature FROM env_v WHERE id = 2",
      "SELECT id, ts, wind FROM env_v WHERE ts BETWEEN 150000000 AND "
      "450000000",
      "SELECT COUNT(*), AVG(temperature) FROM env_v WHERE id = 3",
      "SELECT COUNT(*) FROM env_v WHERE ts >= 550000000",
  };
  for (const std::string& sql : queries) {
    EXPECT_EQ(QuerySorted(&segmented_, sql), QuerySorted(&flat_, sql))
        << sql;
  }
}

TEST_F(SegmentTest, RecentWindowQueryPrunesColdSegments) {
  // Last 50 seconds: 5 of the 6 segments are disjoint from the window.
  const std::string sql =
      "SELECT ts, temperature FROM env_v WHERE id = 1 AND ts >= 550000000";
  const int64_t store_before = segmented_.store()->segments_pruned();
  const int64_t reader_before = segmented_.reader()->stats().segments_pruned;
  const int64_t pruned = ProfiledSegmentsPruned(&segmented_, sql);
  EXPECT_GE(pruned, 5);
  EXPECT_GE(segmented_.store()->segments_pruned() - store_before, 5);
  EXPECT_GE(segmented_.reader()->stats().segments_pruned - reader_before, 5);

  // The flat layout has nothing to prune — and must say so.
  EXPECT_EQ(ProfiledSegmentsPruned(&flat_, sql), 0);
  EXPECT_EQ(flat_.store()->segments_pruned(), 0);
}

TEST_F(SegmentTest, PrunedSegmentsBlobsAppearInNoBlobCounter) {
  // Disjointness is decided on the manifest alone: the pruned segments'
  // blobs must not show up as examined, decoded or blob-pruned (that
  // would be double counting — and page reads).
  const std::string sql =
      "SELECT COUNT(*) FROM env_v WHERE id = 1 AND ts >= 550000000";
  auto r = segmented_.engine()->Execute("EXPLAIN PROFILE " + sql);
  ASSERT_TRUE(r.ok());
  int64_t segments_pruned = -1, blobs_decoded = -1, blobs_pruned = -1;
  for (const Row& row : r->rows) {
    if (row[0] == Datum::String("segments_pruned")) {
      segments_pruned = row[1].int64_value();
    } else if (row[0] == Datum::String("blobs_decoded")) {
      blobs_decoded = row[1].int64_value();
    } else if (row[0] == Datum::String("blobs_pruned")) {
      blobs_pruned = row[1].int64_value();
    }
  }
  EXPECT_GE(segments_pruned, 5);
  // Only the last segment's blobs were ever candidates: 4 RTS blobs for
  // this id (25-point blobs over 100 seconds).
  EXPECT_LE(blobs_decoded + blobs_pruned, 4);
}

TEST_F(SegmentTest, NativeHistoricalQueryPrunes) {
  const int64_t before = segmented_.reader()->stats().segments_pruned;
  auto cursor = segmented_.HistoricalQuery(type_, /*id=*/1,
                                           550 * kMicrosPerSecond,
                                           kMaxTimestamp);
  ASSERT_TRUE(cursor.ok());
  OperationalRecord rec;
  int64_t rows = 0;
  while ((*cursor)->Next(&rec).value()) ++rows;
  EXPECT_EQ(rows, 50);
  EXPECT_GE(segmented_.reader()->stats().segments_pruned - before, 5);
}

TEST_F(SegmentTest, CompactionMergesBlobsAndPreservesEveryAnswer) {
  const std::string all = "SELECT id, ts, temperature, wind FROM env_v";
  std::vector<std::string> before = QuerySorted(&segmented_, all);
  const int64_t blobs_before =
      segmented_.store()->rts_stats(type_).blob_count +
      segmented_.store()->irts_stats(type_).blob_count;

  auto report = segmented_.CompactSegments(type_);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  // 5 sealed segments (the 6th is still ingesting).
  EXPECT_EQ(report->segments_compacted, 5);
  EXPECT_EQ(segmented_.store()->segments_compacted(), 5);
  EXPECT_LT(report->blobs_after, report->blobs_before);
  EXPECT_GT(report->blobs_after, 0);

  // Each compacted segment holds 100s of data: 4 contiguous 25-point RTS
  // blobs per source merge into one 100-point blob, and likewise IRTS.
  const int64_t blobs_after =
      segmented_.store()->rts_stats(type_).blob_count +
      segmented_.store()->irts_stats(type_).blob_count;
  EXPECT_EQ(blobs_before - blobs_after,
            report->blobs_before - report->blobs_after);
  EXPECT_LE(blobs_after, blobs_before - 5 * (kLastJittery - kFirstRegular));

  // Compaction is lossless re-encoding: the exact answer set survives.
  EXPECT_EQ(QuerySorted(&segmented_, all), before);
  // Point counts are untouched (rewrite, not retention).
  EXPECT_EQ(segmented_.store()->rts_stats(type_).point_count,
            flat_.store()->rts_stats(type_).point_count);

  // Manifests: the rewritten segments moved to the cold tier with a
  // bumped generation; the ingesting segment stayed hot.
  std::vector<SegmentInfo> segs = segmented_.store()->SegmentInfos(type_);
  ASSERT_EQ(segs.size(), 6u);
  for (size_t i = 0; i + 1 < segs.size(); ++i) {
    EXPECT_EQ(segs[i].tier, storage::SegmentTier::kCold) << i;
    EXPECT_EQ(segs[i].generation, 1) << i;
  }
  EXPECT_EQ(segs.back().tier, storage::SegmentTier::kHot);
  EXPECT_EQ(segs.back().generation, 0);

  // A second pass finds nothing hot and sealed: compaction converges.
  auto again = segmented_.CompactSegments(type_);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->segments_compacted, 0);
}

TEST_F(SegmentTest, BackgroundCompactionMatchesSynchronous) {
  // Async submission through the compactor (inline fallback without a
  // pool) must land in the same state as the synchronous call.
  const std::string all = "SELECT id, ts, temperature, wind FROM env_v";
  std::vector<std::string> before = QuerySorted(&segmented_, all);
  ASSERT_TRUE(segmented_.FlushAll().ok());
  segmented_.compactor()->CompactSealedAsync(type_);
  segmented_.compactor()->WaitIdle();
  ASSERT_TRUE(segmented_.compactor()->last_status().ok());
  EXPECT_EQ(segmented_.compactor()->last_report().segments_compacted, 5);
  EXPECT_EQ(QuerySorted(&segmented_, all), before);
}

TEST_F(SegmentTest, SqlRetentionDropsOnlyExpiredSegments) {
  const int64_t total = CountRows(&segmented_, "SELECT COUNT(*) FROM env_v");
  // 200 seconds of the 600 ingested: segments whose data lies entirely
  // before max_ts - 200s drop; the segment containing the cutoff stays.
  sql::Session session(segmented_.engine());
  auto r = session.Execute("ALTER TABLE env_v RETENTION 200 SECONDS");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(segmented_.store()->retention(type_), 200 * kMicrosPerSecond);
  EXPECT_GT(segmented_.store()->segments_dropped(), 0);

  const Timestamp cutoff =
      (kSeconds - 1) * kMicrosPerSecond - 200 * kMicrosPerSecond;
  // Nothing inside the retention window may be lost...
  const std::string recent = "SELECT COUNT(*) FROM env_v WHERE ts >= " +
                             std::to_string(cutoff);
  EXPECT_EQ(CountRows(&segmented_, recent), CountRows(&flat_, recent));
  // ...and whole expired segments are gone.
  EXPECT_LT(CountRows(&segmented_, "SELECT COUNT(*) FROM env_v"), total);

  // Tri-path parity over the post-drop store: row-at-a-time, vectorized
  // and pushdown execution agree on the survivor set.
  const std::string window =
      "SELECT id, ts, temperature FROM env_v WHERE ts BETWEEN " +
      std::to_string(cutoff - 50 * kMicrosPerSecond) + " AND " +
      std::to_string(cutoff + 50 * kMicrosPerSecond);
  std::vector<std::vector<std::string>> answers;
  for (bool vectorized : {false, true}) {
    for (bool pushdown : {false, true}) {
      segmented_.config()->SetScanPathOptions(vectorized, pushdown);
      answers.push_back(QuerySorted(&segmented_, window));
    }
  }
  segmented_.config()->SetScanPathOptions(true, true);
  for (size_t i = 1; i < answers.size(); ++i) {
    EXPECT_EQ(answers[i], answers[0]) << "path combination " << i;
  }
}

TEST_F(SegmentTest, RetentionDropIsMetadataNotScan) {
  // Dropping history must not read the history: the drop is a WAL record
  // plus catalog work, never a scan-and-delete of the dropped pages.
  ASSERT_TRUE(segmented_.store()->SetRetention(
      type_, 150 * kMicrosPerSecond).ok());
  segmented_.ResetIoStats();
  auto dropped = segmented_.ApplyRetention(type_);
  ASSERT_TRUE(dropped.ok());
  EXPECT_GE(*dropped, 4);
  const storage::IoStats io = segmented_.io_stats();
  EXPECT_LT(io.page_reads, 64) << "retention drop scanned the dropped data";
}

TEST_F(SegmentTest, RetentionGuardsAndUnits) {
  // Negative intervals and unknown units fail in the parser; unknown
  // tables fail in the handler; a flat store never drops.
  sql::Session session(segmented_.engine());
  EXPECT_FALSE(session.Execute("ALTER TABLE env_v RETENTION -5").ok());
  EXPECT_FALSE(
      session.Execute("ALTER TABLE env_v RETENTION 5 FORTNIGHTS").ok());
  EXPECT_FALSE(session.Execute("ALTER TABLE nope_v RETENTION 5").ok());

  ASSERT_TRUE(
      session.Execute("ALTER TABLE env_v RETENTION 3 MINUTES").ok());
  EXPECT_EQ(segmented_.store()->retention(type_),
            3 * 60 * kMicrosPerSecond);
  // A bare integer is microseconds; 0 clears the window.
  ASSERT_TRUE(session.Execute("ALTER TABLE env_v RETENTION 0").ok());
  EXPECT_EQ(segmented_.store()->retention(type_), 0);

  // The flat twin accepts the statement but can never drop its single
  // unbounded segment.
  sql::Session flat_session(flat_.engine());
  ASSERT_TRUE(
      flat_session.Execute("ALTER TABLE env_v RETENTION 1 SECOND").ok());
  EXPECT_EQ(flat_.store()->segments_dropped(), 0);
  EXPECT_EQ(CountRows(&flat_, "SELECT COUNT(*) FROM env_v"),
            int64_t{kSeconds} * (kLastJittery - kFirstRegular + 1));
}

TEST_F(SegmentTest, DropConcurrentWithOpenStreamIsSafe) {
  // A stream opened before the drop holds no table iterator (chunked
  // cursor contract): dropping segments under it must neither crash nor
  // corrupt — later chunks simply skip the dropped range.
  sql::Session session(segmented_.engine());
  auto stream =
      session.ExecuteStreaming("SELECT id, ts, temperature FROM env_v");
  ASSERT_TRUE(stream.ok());
  Row row;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE((*stream)->Next(&row).value());
  }
  auto dropped = segmented_.SetRetention(type_, 100 * kMicrosPerSecond);
  ASSERT_TRUE(dropped.ok());
  ASSERT_GT(*dropped, 0);
  int64_t rows_after = 0;
  Result<bool> more = true;
  while ((more = (*stream)->Next(&row)).ok() && more.value()) {
    ASSERT_EQ(row.size(), 3u);
    ++rows_after;
  }
  ASSERT_TRUE(more.ok()) << more.status().ToString();
  // The stream saw a prefix of the old data plus the surviving suffix —
  // never garbage, never a crash. It cannot have emitted more rows than
  // existed before the drop.
  EXPECT_LE(rows_after + 10,
            int64_t{kSeconds} * (kLastJittery - kFirstRegular + 1));
}

TEST_F(SegmentTest, StorageSystemTableListsSegments) {
  auto r = segmented_.engine()->Execute(
      "SELECT segment_key, tier, blob_count FROM odh_storage "
      "WHERE container = 'segment'");
  ASSERT_TRUE(r.ok()) << r.status().ToString();
  EXPECT_EQ(r->rows.size(), 6u);
  for (const Row& row : r->rows) {
    EXPECT_EQ(row[1], Datum::String("hot"));
    EXPECT_GT(row[2].int64_value(), 0);
  }
  // The aggregate rows keep their historical shape for old consumers.
  auto agg = segmented_.engine()->Execute(
      "SELECT blob_count FROM odh_storage WHERE container = 'rts'");
  ASSERT_TRUE(agg.ok());
  ASSERT_EQ(agg->rows.size(), 1u);
}

}  // namespace
}  // namespace odh::core
