#include "core/value_blob.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"

namespace odh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

SeriesBatch MakeRegularBatch(SourceId id, Timestamp begin, Timestamp interval,
                             size_t n, int tags, uint64_t seed) {
  Random rng(seed);
  SeriesBatch batch;
  batch.id = id;
  batch.columns.resize(tags);
  for (size_t i = 0; i < n; ++i) {
    batch.timestamps.push_back(begin + static_cast<Timestamp>(i) * interval);
    for (int t = 0; t < tags; ++t) {
      batch.columns[t].push_back(rng.UniformDouble(-10, 10));
    }
  }
  return batch;
}

void ExpectBatchEq(const SeriesBatch& a, const SeriesBatch& b) {
  EXPECT_EQ(a.id, b.id);
  ASSERT_EQ(a.timestamps, b.timestamps);
  ASSERT_EQ(a.columns.size(), b.columns.size());
  for (size_t t = 0; t < a.columns.size(); ++t) {
    ASSERT_EQ(a.columns[t].size(), b.columns[t].size()) << t;
    for (size_t i = 0; i < a.columns[t].size(); ++i) {
      if (std::isnan(a.columns[t][i])) {
        EXPECT_TRUE(std::isnan(b.columns[t][i])) << t << "," << i;
      } else {
        EXPECT_EQ(a.columns[t][i], b.columns[t][i]) << t << "," << i;
      }
    }
  }
}

TEST(ValueBlobTest, RtsRoundTrip) {
  ValueBlobCodec codec{CompressionSpec{}};
  SeriesBatch batch = MakeRegularBatch(7, 1000000, 40000, 100, 3, 1);
  std::string blob;
  ASSERT_TRUE(codec.EncodeRts(batch, 40000, &blob).ok());
  SeriesBatch out;
  ASSERT_TRUE(
      codec.DecodeRts(Slice(blob), 7, 1000000, 40000, {}, 3, &out).ok());
  ExpectBatchEq(batch, out);
}

TEST(ValueBlobTest, RtsRejectsIrregular) {
  ValueBlobCodec codec{CompressionSpec{}};
  SeriesBatch batch = MakeRegularBatch(7, 0, 100, 10, 1, 2);
  batch.timestamps[5] += 1;
  std::string blob;
  EXPECT_TRUE(codec.EncodeRts(batch, 100, &blob).IsInvalidArgument());
}

TEST(ValueBlobTest, IrtsRoundTripWithJitter) {
  ValueBlobCodec codec{CompressionSpec{}};
  Random rng(3);
  SeriesBatch batch;
  batch.id = 42;
  batch.columns.resize(2);
  Timestamp t = 5000;
  for (int i = 0; i < 200; ++i) {
    t += rng.UniformRange(1, 100000);
    batch.timestamps.push_back(t);
    batch.columns[0].push_back(rng.NextDouble());
    batch.columns[1].push_back(rng.OneIn(3) ? kNaN : rng.NextDouble());
  }
  std::string blob;
  ASSERT_TRUE(codec.EncodeIrts(batch, &blob).ok());
  SeriesBatch out;
  ASSERT_TRUE(codec.DecodeIrts(Slice(blob), 42, batch.timestamps[0], {}, 2,
                               &out)
                  .ok());
  ExpectBatchEq(batch, out);
}

TEST(ValueBlobTest, IrtsRejectsDecreasingTimestamps) {
  ValueBlobCodec codec{CompressionSpec{}};
  SeriesBatch batch;
  batch.columns.resize(1);
  batch.timestamps = {100, 50};
  batch.columns[0] = {1.0, 2.0};
  std::string blob;
  EXPECT_TRUE(codec.EncodeIrts(batch, &blob).IsInvalidArgument());
}

TEST(ValueBlobTest, EmptyBatchRejected) {
  ValueBlobCodec codec{CompressionSpec{}};
  SeriesBatch batch;
  std::string blob;
  EXPECT_TRUE(codec.EncodeRts(batch, 100, &blob).IsInvalidArgument());
  EXPECT_TRUE(codec.EncodeIrts(batch, &blob).IsInvalidArgument());
  std::vector<OperationalRecord> none;
  EXPECT_TRUE(codec.EncodeMg(none, 0, &blob).IsInvalidArgument());
}

TEST(ValueBlobTest, TagOrientedPartialDecode) {
  ValueBlobCodec codec{CompressionSpec{}};
  SeriesBatch batch = MakeRegularBatch(1, 0, 1000, 50, 8, 4);
  std::string blob;
  ASSERT_TRUE(codec.EncodeRts(batch, 1000, &blob).ok());
  SeriesBatch out;
  ASSERT_TRUE(codec.DecodeRts(Slice(blob), 1, 0, 1000, {2, 5}, 8, &out).ok());
  ASSERT_EQ(out.columns.size(), 8u);
  // Requested tags decoded exactly.
  for (size_t i = 0; i < 50; ++i) {
    EXPECT_EQ(out.columns[2][i], batch.columns[2][i]);
    EXPECT_EQ(out.columns[5][i], batch.columns[5][i]);
  }
  // Unrequested tags are all-missing placeholders.
  for (int t : {0, 1, 3, 4, 6, 7}) {
    for (size_t i = 0; i < 50; ++i) {
      EXPECT_TRUE(std::isnan(out.columns[t][i])) << t;
    }
  }
}

TEST(ValueBlobTest, MgRoundTripSparseRecords) {
  ValueBlobCodec codec{CompressionSpec{}};
  Random rng(5);
  std::vector<OperationalRecord> records;
  Timestamp base = 1000000;
  for (int i = 0; i < 300; ++i) {
    OperationalRecord r;
    r.ts = base + i * 500;
    r.id = 1000 + rng.Uniform(50);
    r.tags.resize(6, kNaN);
    // Sparse: each record reports 2 of 6 tags.
    r.tags[rng.Uniform(6)] = rng.NextDouble();
    r.tags[rng.Uniform(6)] = rng.NextDouble();
    records.push_back(r);
  }
  // EncodeMg requires (ts, id) order; already ts-ordered.
  std::string blob;
  ASSERT_TRUE(codec.EncodeMg(records, base, &blob).ok());
  std::vector<OperationalRecord> out;
  ASSERT_TRUE(codec.DecodeMg(Slice(blob), base, {}, 6, &out).ok());
  ASSERT_EQ(out.size(), records.size());
  for (size_t i = 0; i < records.size(); ++i) {
    EXPECT_EQ(out[i].id, records[i].id) << i;
    EXPECT_EQ(out[i].ts, records[i].ts) << i;
    for (int t = 0; t < 6; ++t) {
      if (std::isnan(records[i].tags[t])) {
        EXPECT_TRUE(std::isnan(out[i].tags[t]));
      } else {
        EXPECT_EQ(out[i].tags[t], records[i].tags[t]);
      }
    }
  }
}

TEST(ValueBlobTest, MgPartialTagDecode) {
  ValueBlobCodec codec{CompressionSpec{}};
  std::vector<OperationalRecord> records;
  for (int i = 0; i < 10; ++i) {
    records.push_back({i, i * 100, {1.0 * i, 2.0 * i, 3.0 * i}});
  }
  std::string blob;
  ASSERT_TRUE(codec.EncodeMg(records, 0, &blob).ok());
  std::vector<OperationalRecord> out;
  ASSERT_TRUE(codec.DecodeMg(Slice(blob), 0, {1}, 3, &out).ok());
  for (int i = 0; i < 10; ++i) {
    EXPECT_TRUE(std::isnan(out[i].tags[0]));
    EXPECT_EQ(out[i].tags[1], 2.0 * i);
    EXPECT_TRUE(std::isnan(out[i].tags[2]));
  }
}

TEST(ValueBlobTest, MgRejectsRaggedRecords) {
  ValueBlobCodec codec{CompressionSpec{}};
  std::vector<OperationalRecord> records = {{1, 0, {1.0, 2.0}},
                                            {2, 1, {1.0}}};
  std::string blob;
  EXPECT_TRUE(codec.EncodeMg(records, 0, &blob).IsInvalidArgument());
}

TEST(ValueBlobTest, DecodeTagCountMismatchFails) {
  ValueBlobCodec codec{CompressionSpec{}};
  SeriesBatch batch = MakeRegularBatch(1, 0, 1000, 10, 3, 6);
  std::string blob;
  ASSERT_TRUE(codec.EncodeRts(batch, 1000, &blob).ok());
  SeriesBatch out;
  EXPECT_FALSE(codec.DecodeRts(Slice(blob), 1, 0, 1000, {}, 5, &out).ok());
}

TEST(ValueBlobTest, CompressionShrinkagePropagatesIntoBlobs) {
  // The paper's data-model compression claim: packing b points into one
  // blob with id/timestamp compression shrinks storage vs row storage.
  ValueBlobCodec lossless{CompressionSpec{}};
  SeriesBatch batch = MakeRegularBatch(1, 0, 40000, 500, 1, 7);
  // Make values smooth so XOR/linear pays.
  for (size_t i = 0; i < 500; ++i) {
    batch.columns[0][i] = 20 + 0.001 * static_cast<double>(i);
  }
  std::string blob;
  ASSERT_TRUE(lossless.EncodeRts(batch, 40000, &blob).ok());
  // Row storage would be >= 16 bytes/point (ts + value); expect well below.
  EXPECT_LT(blob.size(), 500 * 12);

  CompressionSpec lossy;
  lossy.max_error = 0.01;
  ValueBlobCodec lossy_codec{lossy};
  std::string lossy_blob;
  ASSERT_TRUE(lossy_codec.EncodeRts(batch, 40000, &lossy_blob).ok());
  EXPECT_LT(lossy_blob.size(), blob.size());
}

class MgPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(MgPropertyTest, RandomGroupsRoundTrip) {
  ValueBlobCodec codec{CompressionSpec{}};
  Random rng(GetParam());
  std::vector<OperationalRecord> records;
  Timestamp t = 0;
  size_t n = 1 + rng.Uniform(500);
  for (size_t i = 0; i < n; ++i) {
    t += rng.Uniform(1000);
    OperationalRecord r;
    r.ts = t;
    r.id = static_cast<SourceId>(rng.Uniform(1000000));
    r.tags.resize(4);
    for (int tag = 0; tag < 4; ++tag) {
      r.tags[tag] = rng.OneIn(4) ? kNaN : rng.UniformDouble(-1000, 1000);
    }
    records.push_back(r);
  }
  std::string blob;
  ASSERT_TRUE(codec.EncodeMg(records, records[0].ts, &blob).ok());
  std::vector<OperationalRecord> out;
  ASSERT_TRUE(codec.DecodeMg(Slice(blob), records[0].ts, {}, 4, &out).ok());
  ASSERT_EQ(out.size(), records.size());
  for (size_t i = 0; i < n; ++i) {
    EXPECT_EQ(out[i].id, records[i].id);
    EXPECT_EQ(out[i].ts, records[i].ts);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MgPropertyTest,
                         ::testing::Values(21, 22, 23, 24));

}  // namespace
}  // namespace odh::core
