#include "core/reorganizer.h"

#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/random.h"
#include "core/odh.h"

namespace odh::core {
namespace {

OdhOptions MeterOptions() {
  OdhOptions options;
  options.batch_size = 32;
  options.mg_group_size = 4;
  options.sql_metadata_router = false;
  return options;
}

class ReorganizerTest : public ::testing::Test {
 protected:
  ReorganizerTest() : odh_(MeterOptions()) {
    type_ = odh_.DefineSchemaType("meters", {"kwh", "volt"}).value();
    for (SourceId id = 0; id < 8; ++id) {
      ODH_CHECK_OK(
          odh_.RegisterSource(id, type_, 15 * kMicrosPerMinute, true));
    }
    // 6 readings per meter at exact 15-minute intervals.
    for (int reading = 0; reading < 6; ++reading) {
      for (SourceId id = 0; id < 8; ++id) {
        ODH_CHECK_OK(odh_.Ingest({id, reading * 15 * kMicrosPerMinute,
                                  {id * 10.0 + reading, 230.0}}));
      }
    }
    ODH_CHECK_OK(odh_.FlushAll());
  }

  OdhSystem odh_;
  int type_;
};

TEST_F(ReorganizerTest, MovesMgIntoRts) {
  EXPECT_GT(odh_.store()->mg_stats(type_).blob_count, 0);
  EXPECT_EQ(odh_.store()->rts_stats(type_).blob_count, 0);

  ReorganizeReport report = odh_.Reorganize(type_, kMaxTimestamp).value();
  EXPECT_EQ(report.points_moved, 48);
  EXPECT_EQ(report.rts_blobs_written, 8);  // One per meter: exact intervals.
  EXPECT_EQ(report.irts_blobs_written, 0);
  EXPECT_EQ(odh_.store()->mg_stats(type_).blob_count, 0);
  EXPECT_EQ(odh_.store()->rts_stats(type_).point_count, 48);
}

TEST_F(ReorganizerTest, DataIdenticalAfterReorganization) {
  auto before = odh_.engine()->Execute(
      "SELECT id, ts, kwh FROM meters_v ORDER BY id, ts");
  ASSERT_TRUE(before.ok());
  odh_.Reorganize(type_, kMaxTimestamp).value();
  auto after = odh_.engine()->Execute(
      "SELECT id, ts, kwh FROM meters_v ORDER BY id, ts");
  ASSERT_TRUE(after.ok());
  ASSERT_EQ(before->rows.size(), after->rows.size());
  for (size_t i = 0; i < before->rows.size(); ++i) {
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(before->rows[i][c], after->rows[i][c]) << i << "," << c;
    }
  }
}

TEST_F(ReorganizerTest, PartialReorganizationKeepsRecentInMg) {
  // Only reorganize the first 30 minutes; later windows stay in MG.
  Timestamp cutoff = 30 * kMicrosPerMinute;
  ReorganizeReport report = odh_.Reorganize(type_, cutoff).value();
  EXPECT_GT(report.points_moved, 0);
  EXPECT_LT(report.points_moved, 48);
  EXPECT_GT(odh_.store()->mg_stats(type_).point_count, 0);
  // Total still intact.
  auto r = odh_.engine()->Execute("SELECT COUNT(*) FROM meters_v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(48));
}

TEST_F(ReorganizerTest, IrregularMetersBecomeIrts) {
  OdhSystem odh(MeterOptions());
  int type = odh.DefineSchemaType("w", {"v"}).value();
  ODH_CHECK_OK(odh.RegisterSource(1, type, 23 * kMicrosPerMinute, false));
  Random rng(1);
  Timestamp t = 0;
  for (int i = 0; i < 10; ++i) {
    t += rng.UniformRange(10, 30) * kMicrosPerMinute;
    ODH_CHECK_OK(odh.Ingest({1, t, {1.0 * i}}));
  }
  ODH_CHECK_OK(odh.FlushAll());
  ReorganizeReport report = odh.Reorganize(type, kMaxTimestamp).value();
  EXPECT_EQ(report.irts_blobs_written, 1);
  EXPECT_EQ(report.rts_blobs_written, 0);
  auto r = odh.engine()->Execute("SELECT COUNT(*) FROM w_v WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(10));
}

// Regression: group sizes that do not divide the source count produce MG
// blobs spanning two reading rounds with equal begin_ts; per-source series
// must still come out time-ordered (this once aborted with "timestamps
// must be non-decreasing").
TEST_F(ReorganizerTest, UnevenGroupsAcrossRoundsStayOrdered) {
  OdhOptions options;
  options.batch_size = 256;
  options.mg_group_size = 1024;
  options.sql_metadata_router = false;
  OdhSystem odh(options);
  int type = odh.DefineSchemaType("meters", {"kwh"}).value();
  const int64_t meters = 1500;  // Not a multiple of batch or group size.
  for (SourceId id = 1; id <= meters; ++id) {
    ODH_CHECK_OK(odh.RegisterSource(id, type, 15 * kMicrosPerMinute, true));
  }
  for (int round = 0; round < 6; ++round) {
    for (SourceId id = 1; id <= meters; ++id) {
      ODH_CHECK_OK(odh.Ingest(
          {id, round * 15 * kMicrosPerMinute, {1.0 * round}}));
    }
  }
  ODH_CHECK_OK(odh.FlushAll());
  auto report = odh.Reorganize(type, kMaxTimestamp);
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_EQ(report->points_moved, meters * 6);
  // Every meter's history is complete and ordered.
  auto cursor = odh.HistoricalQuery(type, 777, 0, kMaxTimestamp).value();
  OperationalRecord rec;
  int count = 0;
  Timestamp prev = kMinTimestamp;
  while (cursor->Next(&rec).value()) {
    EXPECT_GE(rec.ts, prev);
    prev = rec.ts;
    ++count;
  }
  EXPECT_EQ(count, 6);
}

TEST_F(ReorganizerTest, CompactionReclaimsMgSpace) {
  uint64_t before = odh_.database()->TotalBytesStored();
  odh_.Reorganize(type_, kMaxTimestamp).value();
  // The reorganized per-source form plus compacted (empty) MG container
  // must not exceed the pre-reorganization footprint.
  EXPECT_LE(odh_.database()->TotalBytesStored(), before);
  EXPECT_EQ(odh_.store()->mg_stats(type_).blob_count, 0);
  // Data remains fully queryable through the rebuilt container path.
  auto r = odh_.engine()->Execute("SELECT COUNT(*) FROM meters_v");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->rows[0][0], Datum::Int64(48));
}

TEST_F(ReorganizerTest, ReorganizeTwiceIsIdempotent) {
  odh_.Reorganize(type_, kMaxTimestamp).value();
  ReorganizeReport second = odh_.Reorganize(type_, kMaxTimestamp).value();
  EXPECT_EQ(second.points_moved, 0);
  EXPECT_EQ(second.mg_blobs_consumed, 0);
}

}  // namespace
}  // namespace odh::core
