#include "core/compression.h"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/random.h"
#include "core/bits.h"

namespace odh::core {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

std::vector<double> Decoded(const std::vector<double>& values,
                            const CompressionSpec& spec) {
  std::string buf;
  EXPECT_TRUE(EncodeColumn(values.data(), values.size(), spec, &buf).ok());
  std::vector<double> out;
  EXPECT_TRUE(DecodeColumn(Slice(buf), values.size(), &out).ok());
  return out;
}

CompressionSpec Forced(ValueCodec codec, double max_error = 0) {
  CompressionSpec spec;
  spec.force = true;
  spec.forced_codec = codec;
  spec.max_error = max_error;
  return spec;
}

TEST(BitsTest, WriterReaderRoundTrip) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Write(0b101, 3);
  writer.Write(0xDEADBEEF, 32);
  writer.WriteBit(true);
  writer.Write(0, 7);
  writer.Finish();
  BitReader reader{Slice(buf)};
  uint64_t v;
  ASSERT_TRUE(reader.Read(3, &v));
  EXPECT_EQ(v, 0b101u);
  ASSERT_TRUE(reader.Read(32, &v));
  EXPECT_EQ(v, 0xDEADBEEFu);
  bool bit;
  ASSERT_TRUE(reader.ReadBit(&bit));
  EXPECT_TRUE(bit);
  ASSERT_TRUE(reader.Read(7, &v));
  EXPECT_EQ(v, 0u);
}

TEST(BitsTest, ReadPastEndFails) {
  std::string buf;
  BitWriter writer(&buf);
  writer.Write(1, 4);
  writer.Finish();
  BitReader reader{Slice(buf)};
  uint64_t v;
  EXPECT_TRUE(reader.Read(8, &v));   // Padded byte.
  EXPECT_FALSE(reader.Read(1, &v));  // Past the end.
}

TEST(BitsTest, BitWidth) {
  EXPECT_EQ(BitWidth(0), 1);
  EXPECT_EQ(BitWidth(1), 1);
  EXPECT_EQ(BitWidth(2), 2);
  EXPECT_EQ(BitWidth(255), 8);
  EXPECT_EQ(BitWidth(256), 9);
}

TEST(CompressionTest, RawRoundTrip) {
  std::vector<double> v = {1.5, -2.25, 0.0, 1e300};
  EXPECT_EQ(Decoded(v, Forced(ValueCodec::kRaw)), v);
}

TEST(CompressionTest, XorRoundTripIsLossless) {
  Random rng(7);
  std::vector<double> v;
  double x = 100;
  for (int i = 0; i < 500; ++i) {
    x += rng.NextGaussian();
    v.push_back(x);
  }
  EXPECT_EQ(Decoded(v, Forced(ValueCodec::kXor)), v);
}

TEST(CompressionTest, XorCompressesConstantSeries) {
  std::vector<double> v(1000, 42.5);
  std::string buf;
  ASSERT_TRUE(
      EncodeColumn(v.data(), v.size(), Forced(ValueCodec::kXor), &buf).ok());
  // 1000 repeated values: 1 full + 999 single bits + bitmap.
  EXPECT_LT(buf.size(), 300u);
  EXPECT_EQ(Decoded(v, Forced(ValueCodec::kXor)), v);
}

TEST(CompressionTest, NaNPresenceRestored) {
  std::vector<double> v = {1.0, kNaN, 3.0, kNaN, kNaN, 6.0};
  for (ValueCodec codec : {ValueCodec::kRaw, ValueCodec::kXor}) {
    std::vector<double> out = Decoded(v, Forced(codec));
    ASSERT_EQ(out.size(), v.size());
    for (size_t i = 0; i < v.size(); ++i) {
      if (std::isnan(v[i])) {
        EXPECT_TRUE(std::isnan(out[i])) << i;
      } else {
        EXPECT_EQ(out[i], v[i]) << i;
      }
    }
  }
}

TEST(CompressionTest, AllMissingColumn) {
  std::vector<double> v(10, kNaN);
  std::vector<double> out = Decoded(v, Forced(ValueCodec::kXor));
  for (double x : out) EXPECT_TRUE(std::isnan(x));
}

TEST(CompressionTest, QuantizedRespectsErrorBound) {
  Random rng(9);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.UniformDouble(-50, 50));
  const double e = 0.25;
  std::vector<double> out = Decoded(v, Forced(ValueCodec::kQuantized, e));
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::fabs(out[i] - v[i]), e + 1e-9) << i;
  }
}

TEST(CompressionTest, QuantizedCompresses) {
  Random rng(10);
  std::vector<double> v;
  for (int i = 0; i < 1000; ++i) v.push_back(rng.UniformDouble(0, 10));
  std::string buf;
  ASSERT_TRUE(EncodeColumn(v.data(), v.size(),
                           Forced(ValueCodec::kQuantized, 0.05), &buf)
                  .ok());
  // 10/0.1 = 100 levels -> 7 bits/value vs 64 raw.
  EXPECT_LT(buf.size(), 1000 * 2);
  EXPECT_GT(8000.0 / buf.size(), 4.0);  // Paper: 4-16x for quantization.
}

TEST(CompressionTest, QuantizedHugeRangeFallsBackLosslessly) {
  std::vector<double> v = {0.0, 1e18, -1e18, 5.0};
  std::vector<double> out = Decoded(v, Forced(ValueCodec::kQuantized, 1e-6));
  EXPECT_EQ(out, v);  // Fallback to XOR is lossless.
}

TEST(CompressionTest, LinearRespectsErrorBoundOnSmoothSignal) {
  std::vector<double> v;
  for (int i = 0; i < 2000; ++i) {
    v.push_back(20 + 5 * std::sin(i * 0.01));
  }
  const double e = 0.1;
  std::vector<double> out = Decoded(v, Forced(ValueCodec::kLinear, e));
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_LE(std::fabs(out[i] - v[i]), e + 1e-9) << i;
  }
  // And it should compress drastically (paper: linear for smooth signals).
  std::string buf;
  ASSERT_TRUE(EncodeColumn(v.data(), v.size(), Forced(ValueCodec::kLinear, e),
                           &buf)
                  .ok());
  EXPECT_GT(static_cast<double>(v.size() * 8) / buf.size(), 10.0);
}

TEST(CompressionTest, LinearExactOnStraightLine) {
  std::vector<double> v;
  for (int i = 0; i < 100; ++i) v.push_back(3.0 + 0.5 * i);
  std::string buf;
  ASSERT_TRUE(EncodeColumn(v.data(), v.size(), Forced(ValueCodec::kLinear, 0.01),
                           &buf)
                  .ok());
  // A line needs only two pivots.
  EXPECT_LT(buf.size(), 64u);
  std::vector<double> out = Decoded(v, Forced(ValueCodec::kLinear, 0.01));
  for (size_t i = 0; i < v.size(); ++i) {
    EXPECT_NEAR(out[i], v[i], 0.01) << i;
  }
}

TEST(CompressionTest, LinearSinglePoint) {
  std::vector<double> v = {7.5};
  std::vector<double> out = Decoded(v, Forced(ValueCodec::kLinear, 0.1));
  EXPECT_NEAR(out[0], 7.5, 0.1);
}

TEST(CompressionTest, LossyCodecWithoutBoundRejected) {
  std::vector<double> v = {1, 2, 3};
  std::string buf;
  EXPECT_TRUE(EncodeColumn(v.data(), v.size(), Forced(ValueCodec::kLinear, 0),
                           &buf)
                  .IsInvalidArgument());
}

TEST(CompressionTest, SelectorPrefersLinearForSmooth) {
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(100 + 0.01 * i);
  CompressionSpec spec;
  spec.max_error = 0.1;
  EXPECT_EQ(SelectCodec(v.data(), v.size(), spec), ValueCodec::kLinear);
}

TEST(CompressionTest, SelectorPrefersQuantizedForNoisy) {
  Random rng(4);
  std::vector<double> v;
  for (int i = 0; i < 500; ++i) v.push_back(rng.UniformDouble(0, 100));
  CompressionSpec spec;
  spec.max_error = 0.5;
  EXPECT_EQ(SelectCodec(v.data(), v.size(), spec), ValueCodec::kQuantized);
}

TEST(CompressionTest, SelectorLosslessUsesXor) {
  std::vector<double> v(100, 1.0);
  CompressionSpec spec;  // max_error = 0.
  EXPECT_EQ(SelectCodec(v.data(), v.size(), spec), ValueCodec::kXor);
}

TEST(CompressionTest, SelectorTinyBlocksUseRaw) {
  std::vector<double> v = {1.0, 2.0};
  CompressionSpec spec;
  spec.max_error = 0.5;
  EXPECT_EQ(SelectCodec(v.data(), v.size(), spec), ValueCodec::kRaw);
}

TEST(CompressionTest, TimestampRoundTripRegularAndJittered) {
  Random rng(11);
  std::vector<Timestamp> ts;
  Timestamp t = 1700000000000000;
  for (int i = 0; i < 300; ++i) {
    t += 40000 + (rng.Uniform(3) == 0 ? rng.UniformRange(-5, 5) : 0);
    ts.push_back(t);
  }
  std::string buf;
  EncodeTimestamps(ts.data(), ts.size(), ts[0], &buf);
  // Delta-of-delta: mostly zero after the first two -> ~1 byte/point.
  EXPECT_LT(buf.size(), ts.size() * 3);
  Slice in(buf);
  std::vector<Timestamp> out;
  ASSERT_TRUE(DecodeTimestamps(&in, ts.size(), ts[0], &out).ok());
  EXPECT_EQ(out, ts);
}

// Property sweep: every codec respects its contract on random inputs.
struct CodecParam {
  ValueCodec codec;
  double max_error;
  uint64_t seed;
};

class CodecPropertyTest : public ::testing::TestWithParam<CodecParam> {};

TEST_P(CodecPropertyTest, ContractHolds) {
  const CodecParam param = GetParam();
  Random rng(param.seed);
  for (int trial = 0; trial < 30; ++trial) {
    size_t n = 1 + rng.Uniform(400);
    std::vector<double> v;
    double walk = rng.UniformDouble(-100, 100);
    for (size_t i = 0; i < n; ++i) {
      if (rng.OneIn(8)) {
        v.push_back(kNaN);
        continue;
      }
      walk += rng.NextGaussian();
      v.push_back(walk);
    }
    std::string buf;
    ASSERT_TRUE(EncodeColumn(v.data(), n,
                             Forced(param.codec, param.max_error), &buf)
                    .ok());
    std::vector<double> out;
    ASSERT_TRUE(DecodeColumn(Slice(buf), n, &out).ok());
    ASSERT_EQ(out.size(), n);
    for (size_t i = 0; i < n; ++i) {
      if (std::isnan(v[i])) {
        EXPECT_TRUE(std::isnan(out[i]));
        continue;
      }
      if (param.max_error == 0) {
        EXPECT_EQ(out[i], v[i]) << trial << ":" << i;
      } else {
        EXPECT_LE(std::fabs(out[i] - v[i]), param.max_error + 1e-9)
            << trial << ":" << i;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Codecs, CodecPropertyTest,
    ::testing::Values(CodecParam{ValueCodec::kRaw, 0, 1},
                      CodecParam{ValueCodec::kXor, 0, 2},
                      CodecParam{ValueCodec::kLinear, 0.5, 3},
                      CodecParam{ValueCodec::kLinear, 0.01, 4},
                      CodecParam{ValueCodec::kQuantized, 0.5, 5},
                      CodecParam{ValueCodec::kQuantized, 0.05, 6}));

TEST(CompressionTest, CorruptInputFailsCleanly) {
  std::vector<double> v = {1, 2, 3, 4, 5};
  std::string buf;
  ASSERT_TRUE(
      EncodeColumn(v.data(), v.size(), Forced(ValueCodec::kXor), &buf).ok());
  std::vector<double> out;
  EXPECT_FALSE(DecodeColumn(Slice(buf.data(), 1), v.size(), &out).ok());
  EXPECT_FALSE(DecodeColumn(Slice("", 0), v.size(), &out).ok());
}

}  // namespace
}  // namespace odh::core
