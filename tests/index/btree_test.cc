#include "index/btree.h"

#include <gtest/gtest.h>

#include <map>
#include <string>

#include "common/key_codec.h"
#include "common/random.h"

namespace odh::index {
namespace {

class BTreeTest : public ::testing::Test {
 protected:
  BTreeTest() : disk_(4096), pool_(&disk_, 64) {
    tree_ = BTree::Create(&pool_, "idx").value();
  }

  static std::string Key(int64_t v) {
    std::string out;
    KeyEncoder enc(&out);
    enc.AddInt64(v);
    return out;
  }

  storage::SimDisk disk_;
  storage::BufferPool pool_;
  std::unique_ptr<BTree> tree_;
};

TEST_F(BTreeTest, EmptyTreeBehaviour) {
  EXPECT_EQ(tree_->num_entries(), 0);
  EXPECT_TRUE(tree_->Get(Key(1)).status().IsNotFound());
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, InsertAndGet) {
  ASSERT_TRUE(tree_->Insert(Key(5), "five").ok());
  ASSERT_TRUE(tree_->Insert(Key(3), "three").ok());
  ASSERT_TRUE(tree_->Insert(Key(9), "nine").ok());
  EXPECT_EQ(tree_->num_entries(), 3);
  EXPECT_EQ(tree_->Get(Key(3)).value(), "three");
  EXPECT_EQ(tree_->Get(Key(5)).value(), "five");
  EXPECT_EQ(tree_->Get(Key(9)).value(), "nine");
  EXPECT_TRUE(tree_->Get(Key(4)).status().IsNotFound());
}

TEST_F(BTreeTest, OverwriteDoesNotGrowCount) {
  ASSERT_TRUE(tree_->Insert(Key(1), "a").ok());
  ASSERT_TRUE(tree_->Insert(Key(1), "b").ok());
  EXPECT_EQ(tree_->num_entries(), 1);
  EXPECT_EQ(tree_->Get(Key(1)).value(), "b");
}

TEST_F(BTreeTest, Delete) {
  ASSERT_TRUE(tree_->Insert(Key(1), "a").ok());
  ASSERT_TRUE(tree_->Insert(Key(2), "b").ok());
  ASSERT_TRUE(tree_->Delete(Key(1)).ok());
  EXPECT_EQ(tree_->num_entries(), 1);
  EXPECT_TRUE(tree_->Get(Key(1)).status().IsNotFound());
  EXPECT_TRUE(tree_->Delete(Key(1)).IsNotFound());
  EXPECT_EQ(tree_->Get(Key(2)).value(), "b");
}

TEST_F(BTreeTest, SplitsProduceMultipleLevels) {
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i), "v" + std::to_string(i)).ok());
  }
  EXPECT_EQ(tree_->num_entries(), 2000);
  EXPECT_GT(tree_->height(), 1);
  for (int64_t i = 0; i < 2000; ++i) {
    ASSERT_EQ(tree_->Get(Key(i)).value(), "v" + std::to_string(i)) << i;
  }
}

TEST_F(BTreeTest, IteratorFullScanInOrder) {
  for (int64_t i = 999; i >= 0; --i) {
    ASSERT_TRUE(tree_->Insert(Key(i), std::to_string(i)).ok());
  }
  auto it = tree_->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (int64_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(it.Valid()) << i;
    EXPECT_EQ(it.value().ToString(), std::to_string(i));
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, IteratorSeekRange) {
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i * 10), std::to_string(i * 10)).ok());
  }
  auto it = tree_->NewIterator();
  // Seek between keys lands on the next larger key.
  ASSERT_TRUE(it.Seek(Key(45)).ok());
  ASSERT_TRUE(it.Valid());
  EXPECT_EQ(it.value().ToString(), "50");
  // Seek past the end is invalid.
  ASSERT_TRUE(it.Seek(Key(10000)).ok());
  EXPECT_FALSE(it.Valid());
}

TEST_F(BTreeTest, ReopenPreservesContents) {
  for (int64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(tree_->Insert(Key(i), std::to_string(i)).ok());
  }
  tree_.reset();
  ASSERT_TRUE(pool_.FlushAll().ok());
  auto reopened = BTree::Open(&pool_, "idx");
  ASSERT_TRUE(reopened.ok());
  EXPECT_EQ((*reopened)->num_entries(), 500);
  EXPECT_EQ((*reopened)->Get(Key(123)).value(), "123");
}

TEST_F(BTreeTest, RejectsOversizedEntry) {
  std::string huge(5000, 'x');
  EXPECT_TRUE(tree_->Insert(Key(1), huge).IsInvalidArgument());
}

// Property test: a randomized op sequence matches std::map.
struct PropertyParam {
  uint64_t seed;
  int ops;
  int key_space;
};

class BTreePropertyTest : public ::testing::TestWithParam<PropertyParam> {};

TEST_P(BTreePropertyTest, MatchesReferenceMap) {
  const PropertyParam param = GetParam();
  storage::SimDisk disk(4096);
  storage::BufferPool pool(&disk, 32);
  auto tree = BTree::Create(&pool, "t").value();
  std::map<std::string, std::string> reference;
  Random rng(param.seed);

  auto make_key = [&](int64_t v) {
    std::string out;
    KeyEncoder enc(&out);
    enc.AddInt64(v);
    return out;
  };

  for (int op = 0; op < param.ops; ++op) {
    int64_t k = static_cast<int64_t>(
        rng.Uniform(static_cast<uint64_t>(param.key_space)));
    std::string key = make_key(k);
    switch (rng.Uniform(4)) {
      case 0:
      case 1: {  // Insert (50%).
        std::string value = "v" + std::to_string(rng.Uniform(1000));
        ASSERT_TRUE(tree->Insert(key, value).ok());
        reference[key] = value;
        break;
      }
      case 2: {  // Lookup.
        auto got = tree->Get(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_TRUE(got.status().IsNotFound());
        } else {
          ASSERT_TRUE(got.ok());
          EXPECT_EQ(got.value(), it->second);
        }
        break;
      }
      case 3: {  // Delete.
        Status s = tree->Delete(key);
        auto it = reference.find(key);
        if (it == reference.end()) {
          EXPECT_TRUE(s.IsNotFound());
        } else {
          EXPECT_TRUE(s.ok());
          reference.erase(it);
        }
        break;
      }
    }
  }

  EXPECT_EQ(tree->num_entries(), static_cast<int64_t>(reference.size()));
  // Full scan must match the reference in order and content.
  auto it = tree->NewIterator();
  ASSERT_TRUE(it.SeekToFirst().ok());
  for (const auto& [key, value] : reference) {
    ASSERT_TRUE(it.Valid());
    EXPECT_EQ(it.key().ToString(), key);
    EXPECT_EQ(it.value().ToString(), value);
    ASSERT_TRUE(it.Next().ok());
  }
  EXPECT_FALSE(it.Valid());
}

INSTANTIATE_TEST_SUITE_P(
    RandomOps, BTreePropertyTest,
    ::testing::Values(PropertyParam{1, 2000, 100},
                      PropertyParam{2, 5000, 1000},
                      PropertyParam{3, 5000, 50},
                      PropertyParam{4, 8000, 10000},
                      PropertyParam{5, 3000, 3}));

}  // namespace
}  // namespace odh::index
