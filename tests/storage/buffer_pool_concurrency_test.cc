#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "storage/buffer_pool.h"
#include "storage/sim_disk.h"

namespace odh::storage {
namespace {

/// Stress tests for the sharded buffer pool: many threads fetching,
/// allocating and dirtying pages of one file, with capacity pressure so
/// evictions and write-backs race against fetches. Run these under
/// ODH_SANITIZE=thread to get the full value.
class BufferPoolConcurrencyTest : public ::testing::Test {
 protected:
  // 256 frames -> 16 shards (kMinFramesPerShard = 16).
  BufferPoolConcurrencyTest() : disk_(4096), pool_(&disk_, 256) {
    file_ = disk_.CreateFile("data").value();
  }

  void FillPage(char* data, uint32_t token) {
    const size_t usable = pool_.usable_page_size();
    for (size_t i = 0; i + sizeof(token) <= usable; i += sizeof(token)) {
      std::memcpy(data + i, &token, sizeof(token));
    }
  }

  bool CheckPage(const char* data, uint32_t token) {
    const size_t usable = pool_.usable_page_size();
    for (size_t i = 0; i + sizeof(token) <= usable; i += sizeof(token)) {
      uint32_t got;
      std::memcpy(&got, data + i, sizeof(got));
      if (got != token) return false;
    }
    return true;
  }

  SimDisk disk_;
  BufferPool pool_;
  FileId file_ = 0;
};

TEST_F(BufferPoolConcurrencyTest, PoolShardsLargeCapacity) {
  EXPECT_EQ(pool_.num_shards(), 16u);
  SimDisk small_disk(4096);
  BufferPool small_pool(&small_disk, 4);
  EXPECT_EQ(small_pool.num_shards(), 1u);  // Tiny pools stay unsharded.
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentNewPagesAreAllDistinct) {
  constexpr int kThreads = 8;
  constexpr int kPagesPerThread = 100;
  std::vector<std::vector<PageNo>> pages(kThreads);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kPagesPerThread; ++i) {
        PageNo page_no;
        auto ref = pool_.NewPage(file_, &page_no);
        ASSERT_TRUE(ref.ok()) << ref.status().ToString();
        FillPage(ref->data(), static_cast<uint32_t>(page_no) + 1);
        ref->MarkDirty();
        pages[t].push_back(page_no);
      }
    });
  }
  for (auto& thread : threads) thread.join();

  std::vector<bool> seen(kThreads * kPagesPerThread, false);
  for (const auto& list : pages) {
    for (PageNo p : list) {
      ASSERT_LT(p, seen.size());
      EXPECT_FALSE(seen[p]) << "page allocated twice: " << p;
      seen[p] = true;
    }
  }
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentFetchesUnderEvictionPressure) {
  // 512 pages through a 256-frame pool: every thread's working set
  // overflows its shards, forcing concurrent evict/write-back/fetch.
  constexpr uint32_t kPages = 512;
  for (uint32_t p = 0; p < kPages; ++p) {
    PageNo page_no;
    auto ref = pool_.NewPage(file_, &page_no);
    ASSERT_TRUE(ref.ok());
    FillPage(ref->data(), page_no + 1);
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());

  constexpr int kThreads = 8;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      // Each thread walks the file from a different offset so fetches and
      // evictions interleave across shards.
      for (uint32_t i = 0; i < kPages; ++i) {
        uint32_t p = (i * 37 + static_cast<uint32_t>(t) * 61) % kPages;
        auto ref = pool_.FetchPage(file_, p);
        if (!ref.ok() || !CheckPage(ref->data(), p + 1)) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  // Every fetched-from-disk page passed its CRC verify.
  EXPECT_EQ(pool_.checksum_failure_count(), 0u);
  EXPECT_GT(pool_.checksum_verify_count(), 0u);
}

TEST_F(BufferPoolConcurrencyTest, ConcurrentDirtyingSurvivesFlushAll) {
  constexpr uint32_t kPages = 64;
  std::vector<PageNo> page_nos(kPages);
  for (uint32_t p = 0; p < kPages; ++p) {
    auto ref = pool_.NewPage(file_, &page_nos[p]);
    ASSERT_TRUE(ref.ok());
    FillPage(ref->data(), 1);
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());

  // Writers rewrite disjoint page ranges while another thread fetches.
  constexpr int kWriters = 4;
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&, t] {
      for (uint32_t p = t * (kPages / kWriters);
           p < (t + 1) * (kPages / kWriters); ++p) {
        auto ref = pool_.FetchPage(file_, page_nos[p]);
        ASSERT_TRUE(ref.ok());
        FillPage(ref->data(), page_nos[p] + 100);
        ref->MarkDirty();
      }
    });
  }
  std::atomic<bool> read_failed{false};
  threads.emplace_back([&] {
    for (uint32_t p = 0; p < kPages; ++p) {
      auto ref = pool_.FetchPage(file_, page_nos[p]);
      if (!ref.ok()) {
        read_failed.store(true);
        return;
      }
    }
  });
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(read_failed.load());
  ASSERT_TRUE(pool_.FlushAll().ok());

  // Re-read through a fresh pool: all updates are durable and checksummed.
  BufferPool verify_pool(&disk_, 256);
  for (uint32_t p = 0; p < kPages; ++p) {
    auto ref = verify_pool.FetchPage(file_, page_nos[p]);
    ASSERT_TRUE(ref.ok()) << ref.status().ToString();
    EXPECT_TRUE(CheckPage(ref->data(), page_nos[p] + 100)) << "page " << p;
  }
  EXPECT_EQ(verify_pool.checksum_failure_count(), 0u);
}

TEST_F(BufferPoolConcurrencyTest, TransientFaultsRetriedUnderConcurrency) {
  FaultPolicy policy(/*seed=*/99);
  policy.set_write_fault_rate(0.02);
  disk_.set_fault_policy(&policy);

  constexpr int kThreads = 4;
  constexpr int kPagesPerThread = 64;
  std::atomic<bool> failed{false};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPagesPerThread; ++i) {
        PageNo page_no;
        auto ref = pool_.NewPage(file_, &page_no);
        if (!ref.ok()) {
          failed.store(true);
          return;
        }
        FillPage(ref->data(), page_no + 7);
        ref->MarkDirty();
      }
    });
  }
  for (auto& thread : threads) thread.join();
  EXPECT_FALSE(failed.load());
  ASSERT_TRUE(pool_.FlushAll().ok());
  disk_.set_fault_policy(nullptr);

  BufferPool verify_pool(&disk_, 256);
  for (uint32_t p = 0; p < kThreads * kPagesPerThread; ++p) {
    auto ref = verify_pool.FetchPage(file_, p);
    ASSERT_TRUE(ref.ok());
    EXPECT_TRUE(CheckPage(ref->data(), p + 7));
  }
}

}  // namespace
}  // namespace odh::storage
