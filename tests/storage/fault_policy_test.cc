#include "storage/fault_policy.h"

#include <gtest/gtest.h>

#include <vector>

namespace odh::storage {
namespace {

TEST(FaultPolicyTest, NoFaultsByDefault) {
  FaultPolicy policy;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(policy.OnRead().kind, FaultDecision::Kind::kNone);
    EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kNone);
    EXPECT_EQ(policy.OnAllocate().kind, FaultDecision::Kind::kNone);
  }
  EXPECT_EQ(policy.reads_seen(), 100u);
  EXPECT_EQ(policy.writes_seen(), 100u);
  EXPECT_EQ(policy.allocates_seen(), 100u);
}

TEST(FaultPolicyTest, ScheduledFaultsFireOnce) {
  FaultPolicy policy;
  policy.FailNthRead(2);
  policy.FailNthWrite(1);
  policy.FailNthAllocate(3);
  EXPECT_EQ(policy.OnRead().kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(policy.OnRead().kind, FaultDecision::Kind::kTransient);
  EXPECT_EQ(policy.OnRead().kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kTransient);
  EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(policy.OnAllocate().kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(policy.OnAllocate().kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(policy.OnAllocate().kind, FaultDecision::Kind::kTransient);
}

TEST(FaultPolicyTest, TornWriteCarriesKeepBytes) {
  FaultPolicy policy;
  policy.TearNthWrite(2, 777);
  EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kNone);
  FaultDecision torn = policy.OnWrite();
  EXPECT_EQ(torn.kind, FaultDecision::Kind::kTorn);
  EXPECT_EQ(torn.torn_bytes, 777u);
}

TEST(FaultPolicyTest, CrashWinsOverOtherSchedules) {
  FaultPolicy policy;
  policy.CrashAtWrite(2);
  policy.FailNthWrite(2);  // Crash takes precedence on the same op.
  EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kCrash);
}

TEST(FaultPolicyTest, PermanentAppliesFromNOnward) {
  FaultPolicy policy;
  policy.FailWritesPermanentlyAt(3);
  EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kNone);
  EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kNone);
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(policy.OnWrite().kind, FaultDecision::Kind::kPermanent);
  }
}

TEST(FaultPolicyTest, RateFaultsDeterministicPerSeed) {
  auto sample = [](uint64_t seed) {
    FaultPolicy policy(seed);
    policy.set_read_fault_rate(0.25);
    std::vector<int> kinds;
    for (int i = 0; i < 256; ++i) {
      kinds.push_back(static_cast<int>(policy.OnRead().kind));
    }
    return kinds;
  };
  EXPECT_EQ(sample(42), sample(42));
  EXPECT_NE(sample(42), sample(43));
}

TEST(FaultPolicyTest, RateRoughlyMatchesProbability) {
  FaultPolicy policy(1);
  policy.set_write_fault_rate(0.5);
  int faults = 0;
  for (int i = 0; i < 2000; ++i) {
    if (policy.OnWrite().kind == FaultDecision::Kind::kTransient) ++faults;
  }
  EXPECT_GT(faults, 800);
  EXPECT_LT(faults, 1200);
}

}  // namespace
}  // namespace odh::storage
