#include "storage/checksum.h"

#include <gtest/gtest.h>

#include <cstring>
#include <string>

namespace odh::storage {
namespace {

TEST(Crc32cTest, KnownVectors) {
  // RFC 3720 / the classic CRC32C check value.
  EXPECT_EQ(Crc32c("123456789", 9), 0xE3069283u);
  EXPECT_EQ(Crc32c("", 0), 0u);
  // 32 bytes of zeros (iSCSI test vector).
  std::string zeros(32, '\0');
  EXPECT_EQ(Crc32c(zeros.data(), zeros.size()), 0x8A9136AAu);
  std::string ffs(32, '\xff');
  EXPECT_EQ(Crc32c(ffs.data(), ffs.size()), 0x62A8AB43u);
}

TEST(Crc32cTest, ExtendMatchesOneShot) {
  const std::string data = "the quick brown fox jumps over the lazy dog";
  uint32_t whole = Crc32c(data.data(), data.size());
  for (size_t split = 0; split <= data.size(); ++split) {
    uint32_t partial = ExtendCrc32c(0, data.data(), split);
    uint32_t rest =
        ExtendCrc32c(partial, data.data() + split, data.size() - split);
    EXPECT_EQ(rest, whole) << "split at " << split;
  }
}

TEST(Crc32cTest, SensitiveToSingleBitFlips) {
  std::string data(4096, 'p');
  uint32_t base = Crc32c(data.data(), data.size());
  for (size_t pos : {size_t{0}, size_t{1}, size_t{2047}, size_t{4095}}) {
    std::string mutated = data;
    mutated[pos] ^= 0x01;
    EXPECT_NE(Crc32c(mutated.data(), mutated.size()), base) << pos;
  }
}

TEST(Crc32cTest, UnalignedStarts) {
  // The slicing-by-8 loop reads words; make sure odd offsets agree with a
  // byte-by-byte reference via the Extend identity.
  std::string data = "0123456789abcdefghijklmnopqrstuvwxyz";
  for (size_t off = 0; off < 8; ++off) {
    uint32_t direct = Crc32c(data.data() + off, data.size() - off);
    uint32_t extended = ExtendCrc32c(0, data.data() + off, data.size() - off);
    EXPECT_EQ(direct, extended);
  }
}

TEST(IsZeroFilledTest, Basics) {
  std::string zeros(4096, '\0');
  EXPECT_TRUE(IsZeroFilled(zeros.data(), zeros.size()));
  EXPECT_TRUE(IsZeroFilled(zeros.data(), 0));
  for (size_t pos : {size_t{0}, size_t{5}, size_t{4095}}) {
    std::string mutated = zeros;
    mutated[pos] = 1;
    EXPECT_FALSE(IsZeroFilled(mutated.data(), mutated.size())) << pos;
  }
  // Odd lengths exercise the byte tail.
  EXPECT_TRUE(IsZeroFilled(zeros.data(), 13));
}

}  // namespace
}  // namespace odh::storage
