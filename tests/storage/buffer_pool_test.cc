#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

namespace odh::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(256), pool_(&disk_, 4) {
    file_ = disk_.CreateFile("data").value();
  }

  SimDisk disk_;
  BufferPool pool_;
  FileId file_;
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndPersists) {
  PageNo page_no;
  {
    auto ref = pool_.NewPage(file_, &page_no);
    ASSERT_TRUE(ref.ok());
    for (size_t i = 0; i < disk_.page_size(); ++i) {
      ASSERT_EQ(ref->data()[i], '\0');
    }
    std::memset(ref->data(), 'a', disk_.page_size());
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  std::string buf(disk_.page_size(), 0);
  ASSERT_TRUE(disk_.ReadPage(file_, page_no, buf.data()).ok());
  EXPECT_EQ(buf, std::string(disk_.page_size(), 'a'));
}

TEST_F(BufferPoolTest, FetchHitsCache) {
  PageNo page_no;
  pool_.NewPage(file_, &page_no).value().Release();
  uint64_t misses_before = pool_.miss_count();
  auto a = pool_.FetchPage(file_, page_no);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool_.miss_count(), misses_before);
  EXPECT_GT(pool_.hit_count(), 0u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  // Fill beyond capacity so earlier pages get evicted.
  std::vector<PageNo> pages;
  for (int i = 0; i < 10; ++i) {
    PageNo p;
    auto ref = pool_.NewPage(file_, &p);
    ASSERT_TRUE(ref.ok());
    std::memset(ref->data(), 'A' + i, disk_.page_size());
    ref->MarkDirty();
    pages.push_back(p);
  }
  // Read everything back through the pool; contents must have survived
  // eviction round trips.
  for (int i = 0; i < 10; ++i) {
    auto ref = pool_.FetchPage(file_, pages[i]);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[0], 'A' + i) << i;
  }
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  std::vector<PageRef> pinned;
  for (int i = 0; i < 4; ++i) {
    PageNo p;
    auto ref = pool_.NewPage(file_, &p);
    ASSERT_TRUE(ref.ok());
    pinned.push_back(std::move(ref).value());
  }
  PageNo p;
  auto overflow = pool_.NewPage(file_, &p);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  // Releasing one pin frees a frame.
  pinned.pop_back();
  EXPECT_TRUE(pool_.NewPage(file_, &p).ok());
}

TEST_F(BufferPoolTest, MovedFromRefIsInvalid) {
  PageNo p;
  PageRef a = pool_.NewPage(file_, &p).value();
  PageRef b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
}

TEST_F(BufferPoolTest, InvalidateFileDropsCachedPages) {
  FileId other = disk_.CreateFile("other").value();
  PageNo p1, p2;
  {
    PageRef a = pool_.NewPage(file_, &p1).value();
    a.data()[0] = 'x';
    a.MarkDirty();
  }
  {
    PageRef b = pool_.NewPage(other, &p2).value();
    b.data()[0] = 'y';
    b.MarkDirty();
  }
  ASSERT_TRUE(pool_.InvalidateFile(file_).ok());
  // The other file's cached page is untouched and still flushable.
  ASSERT_TRUE(pool_.FlushAll().ok());
  std::string buf(disk_.page_size(), 0);
  ASSERT_TRUE(disk_.ReadPage(other, p2, buf.data()).ok());
  EXPECT_EQ(buf[0], 'y');
  // The invalidated page was never written back ("x" discarded).
  ASSERT_TRUE(disk_.ReadPage(file_, p1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');
}

TEST_F(BufferPoolTest, InvalidatePinnedFileFails) {
  PageNo p;
  PageRef pinned = pool_.NewPage(file_, &p).value();
  EXPECT_EQ(pool_.InvalidateFile(file_).code(),
            StatusCode::kFailedPrecondition);
  pinned.Release();
  EXPECT_TRUE(pool_.InvalidateFile(file_).ok());
}

TEST_F(BufferPoolTest, InvalidateFreesFramesForReuse) {
  // Fill the pool with pages of file_, invalidate, then the whole capacity
  // is usable again without eviction I/O.
  for (int i = 0; i < 4; ++i) {
    PageNo p;
    pool_.NewPage(file_, &p).value().Release();
  }
  ASSERT_TRUE(pool_.InvalidateFile(file_).ok());
  uint64_t misses_before = pool_.miss_count();
  std::vector<PageRef> pinned;
  FileId fresh = disk_.CreateFile("fresh").value();
  for (int i = 0; i < 4; ++i) {
    PageNo p;
    pinned.push_back(pool_.NewPage(fresh, &p).value());
  }
  EXPECT_EQ(pool_.miss_count(), misses_before);  // NewPage never misses.
}

TEST_F(BufferPoolTest, RepinnedDirtyPageNotLost) {
  PageNo p;
  {
    PageRef ref = pool_.NewPage(file_, &p).value();
    ref.data()[0] = 'z';
    ref.MarkDirty();
  }
  // Force eviction churn.
  for (int i = 0; i < 8; ++i) {
    PageNo q;
    pool_.NewPage(file_, &q).value().Release();
  }
  PageRef again = pool_.FetchPage(file_, p).value();
  EXPECT_EQ(again.data()[0], 'z');
}

}  // namespace
}  // namespace odh::storage
