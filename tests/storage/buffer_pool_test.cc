#include "storage/buffer_pool.h"

#include <gtest/gtest.h>

#include <cstring>

#include "common/coding.h"
#include "storage/checksum.h"
#include "storage/fault_policy.h"

namespace odh::storage {
namespace {

class BufferPoolTest : public ::testing::Test {
 protected:
  BufferPoolTest() : disk_(256), pool_(&disk_, 4) {
    file_ = disk_.CreateFile("data").value();
  }

  SimDisk disk_;
  BufferPool pool_;
  FileId file_;
};

TEST_F(BufferPoolTest, NewPageIsZeroedAndPersists) {
  const size_t usable = pool_.usable_page_size();
  PageNo page_no;
  {
    auto ref = pool_.NewPage(file_, &page_no);
    ASSERT_TRUE(ref.ok());
    for (size_t i = 0; i < usable; ++i) {
      ASSERT_EQ(ref->data()[i], '\0');
    }
    std::memset(ref->data(), 'a', usable);
    ref->MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  std::string buf(disk_.page_size(), 0);
  ASSERT_TRUE(disk_.ReadPage(file_, page_no, buf.data()).ok());
  EXPECT_EQ(buf.substr(0, usable), std::string(usable, 'a'));
  // The pool stamped a valid CRC32C trailer past the usable bytes.
  EXPECT_EQ(DecodeFixed32(buf.data() + usable), Crc32c(buf.data(), usable));
  EXPECT_GE(pool_.checksum_stamp_count(), 1u);
}

TEST_F(BufferPoolTest, FetchHitsCache) {
  PageNo page_no;
  pool_.NewPage(file_, &page_no).value().Release();
  uint64_t misses_before = pool_.miss_count();
  auto a = pool_.FetchPage(file_, page_no);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool_.miss_count(), misses_before);
  EXPECT_GT(pool_.hit_count(), 0u);
}

TEST_F(BufferPoolTest, EvictionWritesBackDirtyPages) {
  // Fill beyond capacity so earlier pages get evicted.
  std::vector<PageNo> pages;
  for (int i = 0; i < 10; ++i) {
    PageNo p;
    auto ref = pool_.NewPage(file_, &p);
    ASSERT_TRUE(ref.ok());
    std::memset(ref->data(), 'A' + i, pool_.usable_page_size());
    ref->MarkDirty();
    pages.push_back(p);
  }
  // Read everything back through the pool; contents must have survived
  // eviction round trips.
  for (int i = 0; i < 10; ++i) {
    auto ref = pool_.FetchPage(file_, pages[i]);
    ASSERT_TRUE(ref.ok());
    EXPECT_EQ(ref->data()[0], 'A' + i) << i;
  }
}

TEST_F(BufferPoolTest, AllPinnedExhaustsPool) {
  std::vector<PageRef> pinned;
  for (int i = 0; i < 4; ++i) {
    PageNo p;
    auto ref = pool_.NewPage(file_, &p);
    ASSERT_TRUE(ref.ok());
    pinned.push_back(std::move(ref).value());
  }
  PageNo p;
  auto overflow = pool_.NewPage(file_, &p);
  EXPECT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  // Releasing one pin frees a frame.
  pinned.pop_back();
  EXPECT_TRUE(pool_.NewPage(file_, &p).ok());
}

TEST_F(BufferPoolTest, MovedFromRefIsInvalid) {
  PageNo p;
  PageRef a = pool_.NewPage(file_, &p).value();
  PageRef b = std::move(a);
  EXPECT_FALSE(a.valid());  // NOLINT(bugprone-use-after-move)
  EXPECT_TRUE(b.valid());
}

TEST_F(BufferPoolTest, InvalidateFileDropsCachedPages) {
  FileId other = disk_.CreateFile("other").value();
  PageNo p1, p2;
  {
    PageRef a = pool_.NewPage(file_, &p1).value();
    a.data()[0] = 'x';
    a.MarkDirty();
  }
  {
    PageRef b = pool_.NewPage(other, &p2).value();
    b.data()[0] = 'y';
    b.MarkDirty();
  }
  ASSERT_TRUE(pool_.InvalidateFile(file_).ok());
  // The other file's cached page is untouched and still flushable.
  ASSERT_TRUE(pool_.FlushAll().ok());
  std::string buf(disk_.page_size(), 0);
  ASSERT_TRUE(disk_.ReadPage(other, p2, buf.data()).ok());
  EXPECT_EQ(buf[0], 'y');
  // The invalidated page was never written back ("x" discarded).
  ASSERT_TRUE(disk_.ReadPage(file_, p1, buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');
}

TEST_F(BufferPoolTest, InvalidatePinnedFileFails) {
  PageNo p;
  PageRef pinned = pool_.NewPage(file_, &p).value();
  EXPECT_EQ(pool_.InvalidateFile(file_).code(),
            StatusCode::kFailedPrecondition);
  pinned.Release();
  EXPECT_TRUE(pool_.InvalidateFile(file_).ok());
}

TEST_F(BufferPoolTest, InvalidateFreesFramesForReuse) {
  // Fill the pool with pages of file_, invalidate, then the whole capacity
  // is usable again without eviction I/O.
  for (int i = 0; i < 4; ++i) {
    PageNo p;
    pool_.NewPage(file_, &p).value().Release();
  }
  ASSERT_TRUE(pool_.InvalidateFile(file_).ok());
  uint64_t misses_before = pool_.miss_count();
  std::vector<PageRef> pinned;
  FileId fresh = disk_.CreateFile("fresh").value();
  for (int i = 0; i < 4; ++i) {
    PageNo p;
    pinned.push_back(pool_.NewPage(fresh, &p).value());
  }
  EXPECT_EQ(pool_.miss_count(), misses_before);  // NewPage never misses.
}

TEST_F(BufferPoolTest, RepinnedDirtyPageNotLost) {
  PageNo p;
  {
    PageRef ref = pool_.NewPage(file_, &p).value();
    ref.data()[0] = 'z';
    ref.MarkDirty();
  }
  // Force eviction churn.
  for (int i = 0; i < 8; ++i) {
    PageNo q;
    pool_.NewPage(file_, &q).value().Release();
  }
  PageRef again = pool_.FetchPage(file_, p).value();
  EXPECT_EQ(again.data()[0], 'z');
}

TEST_F(BufferPoolTest, ChecksumVerifiedOnDiskRead) {
  PageNo p;
  {
    PageRef ref = pool_.NewPage(file_, &p).value();
    ref.data()[0] = 'v';
    ref.MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  pool_.DropCleanPages();
  uint64_t verifies_before = pool_.checksum_verify_count();
  PageRef again = pool_.FetchPage(file_, p).value();
  EXPECT_EQ(again.data()[0], 'v');
  EXPECT_GT(pool_.checksum_verify_count(), verifies_before);
  EXPECT_EQ(pool_.checksum_failure_count(), 0u);
}

TEST_F(BufferPoolTest, CorruptedPageSurfacesAsDataLoss) {
  PageNo p;
  {
    PageRef ref = pool_.NewPage(file_, &p).value();
    std::memset(ref.data(), 'd', pool_.usable_page_size());
    ref.MarkDirty();
  }
  ASSERT_TRUE(pool_.FlushAll().ok());
  pool_.DropCleanPages();
  // Flip one payload bit behind the pool's back.
  std::string buf(disk_.page_size(), 0);
  ASSERT_TRUE(disk_.ReadPage(file_, p, buf.data()).ok());
  buf[7] ^= 0x01;
  ASSERT_TRUE(disk_.WritePage(file_, p, buf.data()).ok());
  auto fetched = pool_.FetchPage(file_, p);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsDataLoss());
  EXPECT_EQ(pool_.checksum_failure_count(), 1u);
}

TEST_F(BufferPoolTest, TornWriteDetectedOnReadBack) {
  FaultPolicy policy;
  PageNo p;
  {
    PageRef ref = pool_.NewPage(file_, &p).value();
    std::memset(ref.data(), 't', pool_.usable_page_size());
    ref.MarkDirty();
  }
  // Tear the flush: the disk acks it but persists only 64 bytes. Only the
  // checksum can expose this.
  policy.TearNthWrite(1, 64);
  disk_.set_fault_policy(&policy);
  ASSERT_TRUE(pool_.FlushAll().ok());
  EXPECT_EQ(disk_.stats().torn_writes, 1u);
  disk_.set_fault_policy(nullptr);
  pool_.DropCleanPages();
  auto fetched = pool_.FetchPage(file_, p);
  ASSERT_FALSE(fetched.ok());
  EXPECT_TRUE(fetched.status().IsDataLoss());
}

TEST_F(BufferPoolTest, TransientFaultsRetriedTransparently) {
  FaultPolicy policy;
  PageNo p;
  {
    PageRef ref = pool_.NewPage(file_, &p).value();
    ref.data()[0] = 'r';
    ref.MarkDirty();
  }
  policy.FailNthWrite(1);  // First flush attempt bounces, retry succeeds.
  policy.FailNthRead(1);   // Same for the read-back.
  disk_.set_fault_policy(&policy);
  ASSERT_TRUE(pool_.FlushAll().ok());
  pool_.DropCleanPages();
  PageRef again = pool_.FetchPage(file_, p).value();
  EXPECT_EQ(again.data()[0], 'r');
  EXPECT_EQ(pool_.io_retry_count(), 2u);
  EXPECT_EQ(disk_.stats().transient_faults, 2u);
}

TEST_F(BufferPoolTest, FailedEvictionLeavesFrameDirtyAndRetriable) {
  FaultPolicy policy;
  PageNo p;
  {
    PageRef ref = pool_.NewPage(file_, &p).value();
    ref.data()[0] = 'k';
    ref.MarkDirty();
  }
  // Every write fails until the policy is detached: eviction cannot write
  // the victim back.
  policy.FailWritesPermanentlyAt(1);
  disk_.set_fault_policy(&policy);
  PageNo q;
  std::vector<PageRef> pinned;
  for (int i = 0; i < 3; ++i) {
    pinned.push_back(pool_.NewPage(file_, &q).value());  // Fills the pool.
  }
  auto overflow = pool_.NewPage(file_, &q);  // Must evict 'k' -> fails.
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kIoError);
  // The fault clears (device replaced); the dirty frame is still cached and
  // the next flush persists it — no data lost.
  disk_.set_fault_policy(nullptr);
  ASSERT_TRUE(pool_.FlushAll().ok());
  pool_.DropCleanPages();
  PageRef again = pool_.FetchPage(file_, p).value();
  EXPECT_EQ(again.data()[0], 'k');
}

TEST_F(BufferPoolTest, FlushAllWritesFramesInAscendingOrder) {
  // Pin four pages so each lands in a distinct frame, dirty them all, and
  // flush. Frames are written back in ascending frame (allocation) order —
  // the page allocated first hits the disk first.
  std::vector<PageNo> pages(4);
  {
    std::vector<PageRef> pinned;
    for (int i = 0; i < 4; ++i) {
      PageRef ref = pool_.NewPage(file_, &pages[i]).value();
      ref.data()[0] = static_cast<char>('0' + i);
      ref.MarkDirty();
      pinned.push_back(std::move(ref));
    }
  }
  FaultPolicy policy;
  // Crash after the second write: exactly the first two frames' pages must
  // be durable, proving the writeback order.
  policy.CrashAtWrite(3);
  disk_.set_fault_policy(&policy);
  EXPECT_FALSE(pool_.FlushAll().ok());
  EXPECT_TRUE(disk_.crashed());
  auto survivor = disk_.CloneDurable();
  std::string buf(disk_.page_size(), 0);
  ASSERT_TRUE(survivor->ReadPage(file_, pages[0], buf.data()).ok());
  EXPECT_EQ(buf[0], '0');
  ASSERT_TRUE(survivor->ReadPage(file_, pages[1], buf.data()).ok());
  EXPECT_EQ(buf[0], '1');
  ASSERT_TRUE(survivor->ReadPage(file_, pages[2], buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');  // Never reached the disk.
  ASSERT_TRUE(survivor->ReadPage(file_, pages[3], buf.data()).ok());
  EXPECT_EQ(buf[0], '\0');
}

}  // namespace
}  // namespace odh::storage
