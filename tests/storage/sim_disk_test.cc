#include "storage/sim_disk.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <vector>

#include "storage/fault_policy.h"

namespace odh::storage {
namespace {

TEST(SimDiskTest, CreateOpenDelete) {
  SimDisk disk;
  auto created = disk.CreateFile("a");
  ASSERT_TRUE(created.ok());
  auto opened = disk.OpenFile("a");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(created.value(), opened.value());
  EXPECT_TRUE(disk.CreateFile("a").status().code() ==
              StatusCode::kAlreadyExists);
  ASSERT_TRUE(disk.DeleteFile("a").ok());
  EXPECT_TRUE(disk.OpenFile("a").status().IsNotFound());
  EXPECT_TRUE(disk.DeleteFile("a").IsNotFound());
}

TEST(SimDiskTest, AllocateReadWrite) {
  SimDisk disk(512);
  FileId f = disk.CreateFile("f").value();
  auto p0 = disk.AllocatePage(f);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0.value(), 0u);
  EXPECT_EQ(disk.AllocatePage(f).value(), 1u);

  std::string buf(512, 'x');
  ASSERT_TRUE(disk.WritePage(f, 0, buf.data()).ok());
  std::string out(512, 0);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out, buf);

  // Fresh pages read back zeroed.
  ASSERT_TRUE(disk.ReadPage(f, 1, out.data()).ok());
  EXPECT_EQ(out, std::string(512, '\0'));
}

TEST(SimDiskTest, BadAccessesFail) {
  SimDisk disk;
  FileId f = disk.CreateFile("f").value();
  std::string buf(disk.page_size(), 0);
  EXPECT_FALSE(disk.ReadPage(f, 0, buf.data()).ok());
  EXPECT_FALSE(disk.WritePage(f, 5, buf.data()).ok());
  EXPECT_FALSE(disk.ReadPage(99, 0, buf.data()).ok());
}

TEST(SimDiskTest, ErrorCodesDistinguishCauses) {
  SimDisk disk;
  FileId f = disk.CreateFile("f").value();
  std::string buf(disk.page_size(), 0);
  // Out-of-range page on a valid file vs. a file that never existed.
  EXPECT_EQ(disk.ReadPage(f, 3, buf.data()).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(disk.WritePage(f, 3, buf.data()).code(),
            StatusCode::kOutOfRange);
  EXPECT_TRUE(disk.ReadPage(99, 0, buf.data()).IsNotFound());
  EXPECT_TRUE(disk.AllocatePage(99).status().IsNotFound());
  // A deleted file's id stays invalid (no silent reuse).
  ASSERT_TRUE(disk.DeleteFile("f").ok());
  EXPECT_TRUE(disk.ReadPage(f, 0, buf.data()).IsNotFound());
  EXPECT_TRUE(disk.PageCount(f).status().IsNotFound());
}

TEST(SimDiskTest, StatsAccounting) {
  SimDisk disk(1024);
  FileId f = disk.CreateFile("f").value();
  (void)disk.AllocatePage(f);
  (void)disk.AllocatePage(f);
  std::string buf(1024, 'y');
  (void)disk.WritePage(f, 0, buf.data());
  (void)disk.WritePage(f, 1, buf.data());
  (void)disk.WritePage(f, 1, buf.data());
  (void)disk.ReadPage(f, 0, buf.data());

  const IoStats& s = disk.stats();
  EXPECT_EQ(s.pages_allocated, 2u);
  EXPECT_EQ(s.page_writes, 3u);
  EXPECT_EQ(s.bytes_written, 3u * 1024);
  EXPECT_EQ(s.page_reads, 1u);
  EXPECT_EQ(s.bytes_read, 1024u);

  disk.ResetStats();
  EXPECT_EQ(disk.stats().page_writes, 0u);
}

TEST(SimDiskTest, StorageSizeTracksFiles) {
  SimDisk disk(1000);
  FileId a = disk.CreateFile("a").value();
  FileId b = disk.CreateFile("b").value();
  (void)disk.AllocatePage(a);
  (void)disk.AllocatePage(a);
  (void)disk.AllocatePage(b);
  EXPECT_EQ(disk.TotalBytesStored(), 3000u);
  EXPECT_EQ(disk.FileBytes(a).value(), 2000u);
  ASSERT_TRUE(disk.DeleteFile("a").ok());
  EXPECT_EQ(disk.TotalBytesStored(), 1000u);
}

TEST(SimDiskTest, ListFiles) {
  SimDisk disk;
  (void)disk.CreateFile("b");
  (void)disk.CreateFile("a");
  auto names = disk.ListFiles();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

TEST(SimDiskFaultTest, ScheduledTransientFaultHitsExactOp) {
  SimDisk disk(512);
  FaultPolicy policy;
  policy.FailNthWrite(2);
  disk.set_fault_policy(&policy);
  FileId f = disk.CreateFile("f").value();
  (void)disk.AllocatePage(f);
  std::string buf(512, 'z');
  EXPECT_TRUE(disk.WritePage(f, 0, buf.data()).ok());        // Write #1.
  Status faulted = disk.WritePage(f, 0, buf.data());         // Write #2.
  EXPECT_TRUE(faulted.IsUnavailable());
  EXPECT_TRUE(disk.WritePage(f, 0, buf.data()).ok());        // Write #3.
  EXPECT_EQ(disk.stats().transient_faults, 1u);
  // The faulted write left the page untouched... but #1 and #3 landed.
  std::string out(512, 0);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out, buf);
}

TEST(SimDiskFaultTest, PermanentWriteFaultPersists) {
  SimDisk disk(512);
  FaultPolicy policy;
  policy.FailWritesPermanentlyAt(2);
  disk.set_fault_policy(&policy);
  FileId f = disk.CreateFile("f").value();
  (void)disk.AllocatePage(f);
  std::string buf(512, 'z');
  EXPECT_TRUE(disk.WritePage(f, 0, buf.data()).ok());
  EXPECT_EQ(disk.WritePage(f, 0, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.WritePage(f, 0, buf.data()).code(), StatusCode::kIoError);
  EXPECT_EQ(disk.stats().permanent_faults, 2u);
  // Reads still work: only the write path died.
  EXPECT_TRUE(disk.ReadPage(f, 0, buf.data()).ok());
}

TEST(SimDiskFaultTest, TornWriteAcksButPersistsPrefix) {
  SimDisk disk(512);
  FaultPolicy policy;
  policy.TearNthWrite(1, 100);
  disk.set_fault_policy(&policy);
  FileId f = disk.CreateFile("f").value();
  (void)disk.AllocatePage(f);
  std::string buf(512, 'x');
  // The lying firmware reports success.
  EXPECT_TRUE(disk.WritePage(f, 0, buf.data()).ok());
  EXPECT_EQ(disk.stats().torn_writes, 1u);
  std::string out(512, 0);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out.substr(0, 100), std::string(100, 'x'));
  EXPECT_EQ(out.substr(100), std::string(412, '\0'));
}

TEST(SimDiskFaultTest, CrashKillsDiskAndCloneDurableReboots) {
  SimDisk disk(512);
  FaultPolicy policy;
  policy.CrashAtWrite(2);
  disk.set_fault_policy(&policy);
  FileId f = disk.CreateFile("f").value();
  (void)disk.AllocatePage(f);
  (void)disk.AllocatePage(f);
  std::string buf(512, 'a');
  ASSERT_TRUE(disk.WritePage(f, 0, buf.data()).ok());
  // Power cut mid-second-write: nothing of it lands, and the disk is dead.
  EXPECT_FALSE(disk.WritePage(f, 1, buf.data()).ok());
  EXPECT_TRUE(disk.crashed());
  EXPECT_FALSE(disk.ReadPage(f, 0, buf.data()).ok());
  EXPECT_FALSE(disk.AllocatePage(f).ok());
  EXPECT_FALSE(disk.CreateFile("g").ok());

  // Reboot: durable pages survive with the same file ids; the half-written
  // page reads back as it was before the crash.
  auto rebooted = disk.CloneDurable();
  ASSERT_NE(rebooted, nullptr);
  EXPECT_FALSE(rebooted->crashed());
  EXPECT_EQ(rebooted->OpenFile("f").value(), f);
  std::string out(512, 0);
  ASSERT_TRUE(rebooted->ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out, std::string(512, 'a'));
  ASSERT_TRUE(rebooted->ReadPage(f, 1, out.data()).ok());
  EXPECT_EQ(out, std::string(512, '\0'));
  // The clone is healthy and writable.
  EXPECT_TRUE(rebooted->WritePage(f, 1, buf.data()).ok());
}

TEST(SimDiskFaultTest, RateFaultsAreSeedDeterministic) {
  auto run = [](uint64_t seed) {
    SimDisk disk(512);
    FaultPolicy policy(seed);
    policy.set_write_fault_rate(0.3);
    disk.set_fault_policy(&policy);
    FileId f = disk.CreateFile("f").value();
    (void)disk.AllocatePage(f);
    std::string buf(512, 'r');
    std::vector<bool> outcomes;
    for (int i = 0; i < 64; ++i) {
      outcomes.push_back(disk.WritePage(f, 0, buf.data()).ok());
    }
    return outcomes;
  };
  auto a = run(7), b = run(7), c = run(8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  // The rate actually fires somewhere in the sequence.
  EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

}  // namespace
}  // namespace odh::storage
