#include "storage/sim_disk.h"

#include <gtest/gtest.h>

#include <cstring>

namespace odh::storage {
namespace {

TEST(SimDiskTest, CreateOpenDelete) {
  SimDisk disk;
  auto created = disk.CreateFile("a");
  ASSERT_TRUE(created.ok());
  auto opened = disk.OpenFile("a");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(created.value(), opened.value());
  EXPECT_TRUE(disk.CreateFile("a").status().code() ==
              StatusCode::kAlreadyExists);
  ASSERT_TRUE(disk.DeleteFile("a").ok());
  EXPECT_TRUE(disk.OpenFile("a").status().IsNotFound());
  EXPECT_TRUE(disk.DeleteFile("a").IsNotFound());
}

TEST(SimDiskTest, AllocateReadWrite) {
  SimDisk disk(512);
  FileId f = disk.CreateFile("f").value();
  auto p0 = disk.AllocatePage(f);
  ASSERT_TRUE(p0.ok());
  EXPECT_EQ(p0.value(), 0u);
  EXPECT_EQ(disk.AllocatePage(f).value(), 1u);

  std::string buf(512, 'x');
  ASSERT_TRUE(disk.WritePage(f, 0, buf.data()).ok());
  std::string out(512, 0);
  ASSERT_TRUE(disk.ReadPage(f, 0, out.data()).ok());
  EXPECT_EQ(out, buf);

  // Fresh pages read back zeroed.
  ASSERT_TRUE(disk.ReadPage(f, 1, out.data()).ok());
  EXPECT_EQ(out, std::string(512, '\0'));
}

TEST(SimDiskTest, BadAccessesFail) {
  SimDisk disk;
  FileId f = disk.CreateFile("f").value();
  std::string buf(disk.page_size(), 0);
  EXPECT_FALSE(disk.ReadPage(f, 0, buf.data()).ok());
  EXPECT_FALSE(disk.WritePage(f, 5, buf.data()).ok());
  EXPECT_FALSE(disk.ReadPage(99, 0, buf.data()).ok());
}

TEST(SimDiskTest, StatsAccounting) {
  SimDisk disk(1024);
  FileId f = disk.CreateFile("f").value();
  (void)disk.AllocatePage(f);
  (void)disk.AllocatePage(f);
  std::string buf(1024, 'y');
  (void)disk.WritePage(f, 0, buf.data());
  (void)disk.WritePage(f, 1, buf.data());
  (void)disk.WritePage(f, 1, buf.data());
  (void)disk.ReadPage(f, 0, buf.data());

  const IoStats& s = disk.stats();
  EXPECT_EQ(s.pages_allocated, 2u);
  EXPECT_EQ(s.page_writes, 3u);
  EXPECT_EQ(s.bytes_written, 3u * 1024);
  EXPECT_EQ(s.page_reads, 1u);
  EXPECT_EQ(s.bytes_read, 1024u);

  disk.ResetStats();
  EXPECT_EQ(disk.stats().page_writes, 0u);
}

TEST(SimDiskTest, StorageSizeTracksFiles) {
  SimDisk disk(1000);
  FileId a = disk.CreateFile("a").value();
  FileId b = disk.CreateFile("b").value();
  (void)disk.AllocatePage(a);
  (void)disk.AllocatePage(a);
  (void)disk.AllocatePage(b);
  EXPECT_EQ(disk.TotalBytesStored(), 3000u);
  EXPECT_EQ(disk.FileBytes(a).value(), 2000u);
  ASSERT_TRUE(disk.DeleteFile("a").ok());
  EXPECT_EQ(disk.TotalBytesStored(), 1000u);
}

TEST(SimDiskTest, ListFiles) {
  SimDisk disk;
  (void)disk.CreateFile("b");
  (void)disk.CreateFile("a");
  auto names = disk.ListFiles();
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "a");
  EXPECT_EQ(names[1], "b");
}

}  // namespace
}  // namespace odh::storage
