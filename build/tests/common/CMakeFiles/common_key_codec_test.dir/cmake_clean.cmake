file(REMOVE_RECURSE
  "CMakeFiles/common_key_codec_test.dir/key_codec_test.cc.o"
  "CMakeFiles/common_key_codec_test.dir/key_codec_test.cc.o.d"
  "common_key_codec_test"
  "common_key_codec_test.pdb"
  "common_key_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_key_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
