file(REMOVE_RECURSE
  "CMakeFiles/common_datum_test.dir/datum_test.cc.o"
  "CMakeFiles/common_datum_test.dir/datum_test.cc.o.d"
  "common_datum_test"
  "common_datum_test.pdb"
  "common_datum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_datum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
