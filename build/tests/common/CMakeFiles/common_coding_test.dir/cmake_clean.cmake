file(REMOVE_RECURSE
  "CMakeFiles/common_coding_test.dir/coding_test.cc.o"
  "CMakeFiles/common_coding_test.dir/coding_test.cc.o.d"
  "common_coding_test"
  "common_coding_test.pdb"
  "common_coding_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/common_coding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
