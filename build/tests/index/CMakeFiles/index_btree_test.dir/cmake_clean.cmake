file(REMOVE_RECURSE
  "CMakeFiles/index_btree_test.dir/btree_test.cc.o"
  "CMakeFiles/index_btree_test.dir/btree_test.cc.o.d"
  "index_btree_test"
  "index_btree_test.pdb"
  "index_btree_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_btree_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
