# CMake generated Testfile for 
# Source directory: /root/repo/tests/index
# Build directory: /root/repo/build/tests/index
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/index/index_btree_test[1]_include.cmake")
