# Empty dependencies file for storage_sim_disk_test.
# This may be replaced when dependencies are built.
