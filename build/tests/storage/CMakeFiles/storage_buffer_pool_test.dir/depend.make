# Empty dependencies file for storage_buffer_pool_test.
# This may be replaced when dependencies are built.
