# Empty compiler generated dependencies file for core_writer_test.
# This may be replaced when dependencies are built.
