file(REMOVE_RECURSE
  "CMakeFiles/core_writer_test.dir/writer_test.cc.o"
  "CMakeFiles/core_writer_test.dir/writer_test.cc.o.d"
  "core_writer_test"
  "core_writer_test.pdb"
  "core_writer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_writer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
