file(REMOVE_RECURSE
  "CMakeFiles/core_compression_test.dir/compression_test.cc.o"
  "CMakeFiles/core_compression_test.dir/compression_test.cc.o.d"
  "core_compression_test"
  "core_compression_test.pdb"
  "core_compression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
