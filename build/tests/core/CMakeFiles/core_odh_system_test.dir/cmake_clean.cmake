file(REMOVE_RECURSE
  "CMakeFiles/core_odh_system_test.dir/odh_system_test.cc.o"
  "CMakeFiles/core_odh_system_test.dir/odh_system_test.cc.o.d"
  "core_odh_system_test"
  "core_odh_system_test.pdb"
  "core_odh_system_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_odh_system_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
