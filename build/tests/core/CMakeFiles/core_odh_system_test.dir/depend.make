# Empty dependencies file for core_odh_system_test.
# This may be replaced when dependencies are built.
