# Empty compiler generated dependencies file for core_reorganizer_test.
# This may be replaced when dependencies are built.
