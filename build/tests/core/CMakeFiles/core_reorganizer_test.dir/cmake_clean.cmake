file(REMOVE_RECURSE
  "CMakeFiles/core_reorganizer_test.dir/reorganizer_test.cc.o"
  "CMakeFiles/core_reorganizer_test.dir/reorganizer_test.cc.o.d"
  "core_reorganizer_test"
  "core_reorganizer_test.pdb"
  "core_reorganizer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reorganizer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
