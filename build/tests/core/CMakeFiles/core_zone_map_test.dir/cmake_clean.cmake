file(REMOVE_RECURSE
  "CMakeFiles/core_zone_map_test.dir/zone_map_test.cc.o"
  "CMakeFiles/core_zone_map_test.dir/zone_map_test.cc.o.d"
  "core_zone_map_test"
  "core_zone_map_test.pdb"
  "core_zone_map_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_zone_map_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
