# Empty dependencies file for core_zone_map_test.
# This may be replaced when dependencies are built.
