file(REMOVE_RECURSE
  "CMakeFiles/core_value_blob_test.dir/value_blob_test.cc.o"
  "CMakeFiles/core_value_blob_test.dir/value_blob_test.cc.o.d"
  "core_value_blob_test"
  "core_value_blob_test.pdb"
  "core_value_blob_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_value_blob_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
