# CMake generated Testfile for 
# Source directory: /root/repo/tests/core
# Build directory: /root/repo/build/tests/core
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/core/core_compression_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_value_blob_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_config_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_writer_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_odh_system_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_reorganizer_test[1]_include.cmake")
include("/root/repo/build/tests/core/core_zone_map_test[1]_include.cmake")
