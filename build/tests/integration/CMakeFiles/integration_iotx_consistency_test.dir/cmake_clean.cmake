file(REMOVE_RECURSE
  "CMakeFiles/integration_iotx_consistency_test.dir/iotx_consistency_test.cc.o"
  "CMakeFiles/integration_iotx_consistency_test.dir/iotx_consistency_test.cc.o.d"
  "integration_iotx_consistency_test"
  "integration_iotx_consistency_test.pdb"
  "integration_iotx_consistency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_iotx_consistency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
