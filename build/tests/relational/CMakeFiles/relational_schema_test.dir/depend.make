# Empty dependencies file for relational_schema_test.
# This may be replaced when dependencies are built.
