file(REMOVE_RECURSE
  "CMakeFiles/relational_schema_test.dir/schema_test.cc.o"
  "CMakeFiles/relational_schema_test.dir/schema_test.cc.o.d"
  "relational_schema_test"
  "relational_schema_test.pdb"
  "relational_schema_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_schema_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
