file(REMOVE_RECURSE
  "CMakeFiles/relational_table_test.dir/table_test.cc.o"
  "CMakeFiles/relational_table_test.dir/table_test.cc.o.d"
  "relational_table_test"
  "relational_table_test.pdb"
  "relational_table_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
