# Empty compiler generated dependencies file for relational_heap_file_test.
# This may be replaced when dependencies are built.
