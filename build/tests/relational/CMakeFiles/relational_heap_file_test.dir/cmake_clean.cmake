file(REMOVE_RECURSE
  "CMakeFiles/relational_heap_file_test.dir/heap_file_test.cc.o"
  "CMakeFiles/relational_heap_file_test.dir/heap_file_test.cc.o.d"
  "relational_heap_file_test"
  "relational_heap_file_test.pdb"
  "relational_heap_file_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_heap_file_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
