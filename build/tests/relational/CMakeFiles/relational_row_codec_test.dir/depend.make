# Empty dependencies file for relational_row_codec_test.
# This may be replaced when dependencies are built.
