file(REMOVE_RECURSE
  "CMakeFiles/relational_row_codec_test.dir/row_codec_test.cc.o"
  "CMakeFiles/relational_row_codec_test.dir/row_codec_test.cc.o.d"
  "relational_row_codec_test"
  "relational_row_codec_test.pdb"
  "relational_row_codec_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_row_codec_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
