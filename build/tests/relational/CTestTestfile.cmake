# CMake generated Testfile for 
# Source directory: /root/repo/tests/relational
# Build directory: /root/repo/build/tests/relational
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/relational/relational_schema_test[1]_include.cmake")
include("/root/repo/build/tests/relational/relational_row_codec_test[1]_include.cmake")
include("/root/repo/build/tests/relational/relational_heap_file_test[1]_include.cmake")
include("/root/repo/build/tests/relational/relational_table_test[1]_include.cmake")
