file(REMOVE_RECURSE
  "CMakeFiles/sql_expr_eval_test.dir/expr_eval_test.cc.o"
  "CMakeFiles/sql_expr_eval_test.dir/expr_eval_test.cc.o.d"
  "sql_expr_eval_test"
  "sql_expr_eval_test.pdb"
  "sql_expr_eval_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_expr_eval_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
