# Empty dependencies file for sql_expr_eval_test.
# This may be replaced when dependencies are built.
