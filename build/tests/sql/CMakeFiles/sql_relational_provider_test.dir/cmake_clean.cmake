file(REMOVE_RECURSE
  "CMakeFiles/sql_relational_provider_test.dir/relational_provider_test.cc.o"
  "CMakeFiles/sql_relational_provider_test.dir/relational_provider_test.cc.o.d"
  "sql_relational_provider_test"
  "sql_relational_provider_test.pdb"
  "sql_relational_provider_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_relational_provider_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
