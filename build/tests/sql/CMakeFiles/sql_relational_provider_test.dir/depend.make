# Empty dependencies file for sql_relational_provider_test.
# This may be replaced when dependencies are built.
