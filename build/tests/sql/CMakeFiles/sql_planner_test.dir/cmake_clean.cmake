file(REMOVE_RECURSE
  "CMakeFiles/sql_planner_test.dir/planner_test.cc.o"
  "CMakeFiles/sql_planner_test.dir/planner_test.cc.o.d"
  "sql_planner_test"
  "sql_planner_test.pdb"
  "sql_planner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sql_planner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
