# CMake generated Testfile for 
# Source directory: /root/repo/tests/sql
# Build directory: /root/repo/build/tests/sql
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/sql/sql_lexer_test[1]_include.cmake")
include("/root/repo/build/tests/sql/sql_parser_test[1]_include.cmake")
include("/root/repo/build/tests/sql/sql_engine_test[1]_include.cmake")
include("/root/repo/build/tests/sql/sql_planner_test[1]_include.cmake")
include("/root/repo/build/tests/sql/sql_relational_provider_test[1]_include.cmake")
include("/root/repo/build/tests/sql/sql_expr_eval_test[1]_include.cmake")
include("/root/repo/build/tests/sql/sql_executor_test[1]_include.cmake")
