file(REMOVE_RECURSE
  "CMakeFiles/benchfw_csv_test.dir/csv_test.cc.o"
  "CMakeFiles/benchfw_csv_test.dir/csv_test.cc.o.d"
  "benchfw_csv_test"
  "benchfw_csv_test.pdb"
  "benchfw_csv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchfw_csv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
