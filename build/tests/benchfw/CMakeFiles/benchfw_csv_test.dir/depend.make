# Empty dependencies file for benchfw_csv_test.
# This may be replaced when dependencies are built.
