# Empty dependencies file for benchfw_generators_test.
# This may be replaced when dependencies are built.
