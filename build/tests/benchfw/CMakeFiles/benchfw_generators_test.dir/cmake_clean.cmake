file(REMOVE_RECURSE
  "CMakeFiles/benchfw_generators_test.dir/generators_test.cc.o"
  "CMakeFiles/benchfw_generators_test.dir/generators_test.cc.o.d"
  "benchfw_generators_test"
  "benchfw_generators_test.pdb"
  "benchfw_generators_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchfw_generators_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
