file(REMOVE_RECURSE
  "CMakeFiles/benchfw_runner_test.dir/runner_test.cc.o"
  "CMakeFiles/benchfw_runner_test.dir/runner_test.cc.o.d"
  "benchfw_runner_test"
  "benchfw_runner_test.pdb"
  "benchfw_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/benchfw_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
