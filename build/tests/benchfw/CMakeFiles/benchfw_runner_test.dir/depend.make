# Empty dependencies file for benchfw_runner_test.
# This may be replaced when dependencies are built.
