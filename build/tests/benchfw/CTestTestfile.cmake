# CMake generated Testfile for 
# Source directory: /root/repo/tests/benchfw
# Build directory: /root/repo/build/tests/benchfw
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/benchfw/benchfw_generators_test[1]_include.cmake")
include("/root/repo/build/tests/benchfw/benchfw_runner_test[1]_include.cmake")
include("/root/repo/build/tests/benchfw/benchfw_csv_test[1]_include.cmake")
