file(REMOVE_RECURSE
  "libodh_common.a"
)
