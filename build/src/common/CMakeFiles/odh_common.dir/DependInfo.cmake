
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/common/coding.cc" "src/common/CMakeFiles/odh_common.dir/coding.cc.o" "gcc" "src/common/CMakeFiles/odh_common.dir/coding.cc.o.d"
  "/root/repo/src/common/datum.cc" "src/common/CMakeFiles/odh_common.dir/datum.cc.o" "gcc" "src/common/CMakeFiles/odh_common.dir/datum.cc.o.d"
  "/root/repo/src/common/key_codec.cc" "src/common/CMakeFiles/odh_common.dir/key_codec.cc.o" "gcc" "src/common/CMakeFiles/odh_common.dir/key_codec.cc.o.d"
  "/root/repo/src/common/status.cc" "src/common/CMakeFiles/odh_common.dir/status.cc.o" "gcc" "src/common/CMakeFiles/odh_common.dir/status.cc.o.d"
  "/root/repo/src/common/stopwatch.cc" "src/common/CMakeFiles/odh_common.dir/stopwatch.cc.o" "gcc" "src/common/CMakeFiles/odh_common.dir/stopwatch.cc.o.d"
  "/root/repo/src/common/table_printer.cc" "src/common/CMakeFiles/odh_common.dir/table_printer.cc.o" "gcc" "src/common/CMakeFiles/odh_common.dir/table_printer.cc.o.d"
  "/root/repo/src/common/types.cc" "src/common/CMakeFiles/odh_common.dir/types.cc.o" "gcc" "src/common/CMakeFiles/odh_common.dir/types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
