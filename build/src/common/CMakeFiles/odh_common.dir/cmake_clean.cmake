file(REMOVE_RECURSE
  "CMakeFiles/odh_common.dir/coding.cc.o"
  "CMakeFiles/odh_common.dir/coding.cc.o.d"
  "CMakeFiles/odh_common.dir/datum.cc.o"
  "CMakeFiles/odh_common.dir/datum.cc.o.d"
  "CMakeFiles/odh_common.dir/key_codec.cc.o"
  "CMakeFiles/odh_common.dir/key_codec.cc.o.d"
  "CMakeFiles/odh_common.dir/status.cc.o"
  "CMakeFiles/odh_common.dir/status.cc.o.d"
  "CMakeFiles/odh_common.dir/stopwatch.cc.o"
  "CMakeFiles/odh_common.dir/stopwatch.cc.o.d"
  "CMakeFiles/odh_common.dir/table_printer.cc.o"
  "CMakeFiles/odh_common.dir/table_printer.cc.o.d"
  "CMakeFiles/odh_common.dir/types.cc.o"
  "CMakeFiles/odh_common.dir/types.cc.o.d"
  "libodh_common.a"
  "libodh_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odh_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
