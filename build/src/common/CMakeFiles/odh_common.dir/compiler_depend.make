# Empty compiler generated dependencies file for odh_common.
# This may be replaced when dependencies are built.
