
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/relational/database.cc" "src/relational/CMakeFiles/odh_relational.dir/database.cc.o" "gcc" "src/relational/CMakeFiles/odh_relational.dir/database.cc.o.d"
  "/root/repo/src/relational/heap_file.cc" "src/relational/CMakeFiles/odh_relational.dir/heap_file.cc.o" "gcc" "src/relational/CMakeFiles/odh_relational.dir/heap_file.cc.o.d"
  "/root/repo/src/relational/row_codec.cc" "src/relational/CMakeFiles/odh_relational.dir/row_codec.cc.o" "gcc" "src/relational/CMakeFiles/odh_relational.dir/row_codec.cc.o.d"
  "/root/repo/src/relational/schema.cc" "src/relational/CMakeFiles/odh_relational.dir/schema.cc.o" "gcc" "src/relational/CMakeFiles/odh_relational.dir/schema.cc.o.d"
  "/root/repo/src/relational/table.cc" "src/relational/CMakeFiles/odh_relational.dir/table.cc.o" "gcc" "src/relational/CMakeFiles/odh_relational.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/odh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/odh_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/odh_index.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
