file(REMOVE_RECURSE
  "libodh_relational.a"
)
