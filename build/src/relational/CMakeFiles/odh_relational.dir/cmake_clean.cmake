file(REMOVE_RECURSE
  "CMakeFiles/odh_relational.dir/database.cc.o"
  "CMakeFiles/odh_relational.dir/database.cc.o.d"
  "CMakeFiles/odh_relational.dir/heap_file.cc.o"
  "CMakeFiles/odh_relational.dir/heap_file.cc.o.d"
  "CMakeFiles/odh_relational.dir/row_codec.cc.o"
  "CMakeFiles/odh_relational.dir/row_codec.cc.o.d"
  "CMakeFiles/odh_relational.dir/schema.cc.o"
  "CMakeFiles/odh_relational.dir/schema.cc.o.d"
  "CMakeFiles/odh_relational.dir/table.cc.o"
  "CMakeFiles/odh_relational.dir/table.cc.o.d"
  "libodh_relational.a"
  "libodh_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odh_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
