# Empty dependencies file for odh_relational.
# This may be replaced when dependencies are built.
