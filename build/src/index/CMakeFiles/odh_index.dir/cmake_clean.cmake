file(REMOVE_RECURSE
  "CMakeFiles/odh_index.dir/btree.cc.o"
  "CMakeFiles/odh_index.dir/btree.cc.o.d"
  "libodh_index.a"
  "libodh_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odh_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
