# Empty compiler generated dependencies file for odh_index.
# This may be replaced when dependencies are built.
