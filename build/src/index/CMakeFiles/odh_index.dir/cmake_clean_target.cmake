file(REMOVE_RECURSE
  "libodh_index.a"
)
