# Empty compiler generated dependencies file for odh_sql.
# This may be replaced when dependencies are built.
