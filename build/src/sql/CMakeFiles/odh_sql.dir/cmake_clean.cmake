file(REMOVE_RECURSE
  "CMakeFiles/odh_sql.dir/ast.cc.o"
  "CMakeFiles/odh_sql.dir/ast.cc.o.d"
  "CMakeFiles/odh_sql.dir/binder.cc.o"
  "CMakeFiles/odh_sql.dir/binder.cc.o.d"
  "CMakeFiles/odh_sql.dir/catalog.cc.o"
  "CMakeFiles/odh_sql.dir/catalog.cc.o.d"
  "CMakeFiles/odh_sql.dir/engine.cc.o"
  "CMakeFiles/odh_sql.dir/engine.cc.o.d"
  "CMakeFiles/odh_sql.dir/executor.cc.o"
  "CMakeFiles/odh_sql.dir/executor.cc.o.d"
  "CMakeFiles/odh_sql.dir/expr_eval.cc.o"
  "CMakeFiles/odh_sql.dir/expr_eval.cc.o.d"
  "CMakeFiles/odh_sql.dir/lexer.cc.o"
  "CMakeFiles/odh_sql.dir/lexer.cc.o.d"
  "CMakeFiles/odh_sql.dir/parser.cc.o"
  "CMakeFiles/odh_sql.dir/parser.cc.o.d"
  "CMakeFiles/odh_sql.dir/planner.cc.o"
  "CMakeFiles/odh_sql.dir/planner.cc.o.d"
  "CMakeFiles/odh_sql.dir/relational_provider.cc.o"
  "CMakeFiles/odh_sql.dir/relational_provider.cc.o.d"
  "libodh_sql.a"
  "libodh_sql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odh_sql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
