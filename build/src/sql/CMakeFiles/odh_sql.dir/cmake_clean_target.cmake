file(REMOVE_RECURSE
  "libodh_sql.a"
)
