file(REMOVE_RECURSE
  "CMakeFiles/odh_benchfw.dir/csv.cc.o"
  "CMakeFiles/odh_benchfw.dir/csv.cc.o.d"
  "CMakeFiles/odh_benchfw.dir/dataset.cc.o"
  "CMakeFiles/odh_benchfw.dir/dataset.cc.o.d"
  "CMakeFiles/odh_benchfw.dir/ld_generator.cc.o"
  "CMakeFiles/odh_benchfw.dir/ld_generator.cc.o.d"
  "CMakeFiles/odh_benchfw.dir/runner.cc.o"
  "CMakeFiles/odh_benchfw.dir/runner.cc.o.d"
  "CMakeFiles/odh_benchfw.dir/target.cc.o"
  "CMakeFiles/odh_benchfw.dir/target.cc.o.d"
  "CMakeFiles/odh_benchfw.dir/td_generator.cc.o"
  "CMakeFiles/odh_benchfw.dir/td_generator.cc.o.d"
  "libodh_benchfw.a"
  "libodh_benchfw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odh_benchfw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
