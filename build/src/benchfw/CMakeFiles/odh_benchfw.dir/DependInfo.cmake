
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchfw/csv.cc" "src/benchfw/CMakeFiles/odh_benchfw.dir/csv.cc.o" "gcc" "src/benchfw/CMakeFiles/odh_benchfw.dir/csv.cc.o.d"
  "/root/repo/src/benchfw/dataset.cc" "src/benchfw/CMakeFiles/odh_benchfw.dir/dataset.cc.o" "gcc" "src/benchfw/CMakeFiles/odh_benchfw.dir/dataset.cc.o.d"
  "/root/repo/src/benchfw/ld_generator.cc" "src/benchfw/CMakeFiles/odh_benchfw.dir/ld_generator.cc.o" "gcc" "src/benchfw/CMakeFiles/odh_benchfw.dir/ld_generator.cc.o.d"
  "/root/repo/src/benchfw/runner.cc" "src/benchfw/CMakeFiles/odh_benchfw.dir/runner.cc.o" "gcc" "src/benchfw/CMakeFiles/odh_benchfw.dir/runner.cc.o.d"
  "/root/repo/src/benchfw/target.cc" "src/benchfw/CMakeFiles/odh_benchfw.dir/target.cc.o" "gcc" "src/benchfw/CMakeFiles/odh_benchfw.dir/target.cc.o.d"
  "/root/repo/src/benchfw/td_generator.cc" "src/benchfw/CMakeFiles/odh_benchfw.dir/td_generator.cc.o" "gcc" "src/benchfw/CMakeFiles/odh_benchfw.dir/td_generator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/odh_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/odh_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/odh_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/odh_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/odh_storage.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/odh_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
