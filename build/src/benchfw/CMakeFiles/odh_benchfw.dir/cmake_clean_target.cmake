file(REMOVE_RECURSE
  "libodh_benchfw.a"
)
