# Empty dependencies file for odh_benchfw.
# This may be replaced when dependencies are built.
