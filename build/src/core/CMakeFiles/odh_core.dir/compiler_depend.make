# Empty compiler generated dependencies file for odh_core.
# This may be replaced when dependencies are built.
