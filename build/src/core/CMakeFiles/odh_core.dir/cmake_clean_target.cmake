file(REMOVE_RECURSE
  "libodh_core.a"
)
