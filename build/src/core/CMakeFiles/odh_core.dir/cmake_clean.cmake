file(REMOVE_RECURSE
  "CMakeFiles/odh_core.dir/compression.cc.o"
  "CMakeFiles/odh_core.dir/compression.cc.o.d"
  "CMakeFiles/odh_core.dir/config.cc.o"
  "CMakeFiles/odh_core.dir/config.cc.o.d"
  "CMakeFiles/odh_core.dir/cost_model.cc.o"
  "CMakeFiles/odh_core.dir/cost_model.cc.o.d"
  "CMakeFiles/odh_core.dir/odh.cc.o"
  "CMakeFiles/odh_core.dir/odh.cc.o.d"
  "CMakeFiles/odh_core.dir/reader.cc.o"
  "CMakeFiles/odh_core.dir/reader.cc.o.d"
  "CMakeFiles/odh_core.dir/reorganizer.cc.o"
  "CMakeFiles/odh_core.dir/reorganizer.cc.o.d"
  "CMakeFiles/odh_core.dir/router.cc.o"
  "CMakeFiles/odh_core.dir/router.cc.o.d"
  "CMakeFiles/odh_core.dir/store.cc.o"
  "CMakeFiles/odh_core.dir/store.cc.o.d"
  "CMakeFiles/odh_core.dir/value_blob.cc.o"
  "CMakeFiles/odh_core.dir/value_blob.cc.o.d"
  "CMakeFiles/odh_core.dir/virtual_table.cc.o"
  "CMakeFiles/odh_core.dir/virtual_table.cc.o.d"
  "CMakeFiles/odh_core.dir/writer.cc.o"
  "CMakeFiles/odh_core.dir/writer.cc.o.d"
  "CMakeFiles/odh_core.dir/zone_map.cc.o"
  "CMakeFiles/odh_core.dir/zone_map.cc.o.d"
  "libodh_core.a"
  "libodh_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odh_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
