
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/compression.cc" "src/core/CMakeFiles/odh_core.dir/compression.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/compression.cc.o.d"
  "/root/repo/src/core/config.cc" "src/core/CMakeFiles/odh_core.dir/config.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/config.cc.o.d"
  "/root/repo/src/core/cost_model.cc" "src/core/CMakeFiles/odh_core.dir/cost_model.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/cost_model.cc.o.d"
  "/root/repo/src/core/odh.cc" "src/core/CMakeFiles/odh_core.dir/odh.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/odh.cc.o.d"
  "/root/repo/src/core/reader.cc" "src/core/CMakeFiles/odh_core.dir/reader.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/reader.cc.o.d"
  "/root/repo/src/core/reorganizer.cc" "src/core/CMakeFiles/odh_core.dir/reorganizer.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/reorganizer.cc.o.d"
  "/root/repo/src/core/router.cc" "src/core/CMakeFiles/odh_core.dir/router.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/router.cc.o.d"
  "/root/repo/src/core/store.cc" "src/core/CMakeFiles/odh_core.dir/store.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/store.cc.o.d"
  "/root/repo/src/core/value_blob.cc" "src/core/CMakeFiles/odh_core.dir/value_blob.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/value_blob.cc.o.d"
  "/root/repo/src/core/virtual_table.cc" "src/core/CMakeFiles/odh_core.dir/virtual_table.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/virtual_table.cc.o.d"
  "/root/repo/src/core/writer.cc" "src/core/CMakeFiles/odh_core.dir/writer.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/writer.cc.o.d"
  "/root/repo/src/core/zone_map.cc" "src/core/CMakeFiles/odh_core.dir/zone_map.cc.o" "gcc" "src/core/CMakeFiles/odh_core.dir/zone_map.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/odh_common.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/odh_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/sql/CMakeFiles/odh_sql.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/odh_index.dir/DependInfo.cmake"
  "/root/repo/build/src/storage/CMakeFiles/odh_storage.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
