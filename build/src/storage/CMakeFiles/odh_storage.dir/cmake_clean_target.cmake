file(REMOVE_RECURSE
  "libodh_storage.a"
)
