# Empty dependencies file for odh_storage.
# This may be replaced when dependencies are built.
