file(REMOVE_RECURSE
  "CMakeFiles/odh_storage.dir/buffer_pool.cc.o"
  "CMakeFiles/odh_storage.dir/buffer_pool.cc.o.d"
  "CMakeFiles/odh_storage.dir/sim_disk.cc.o"
  "CMakeFiles/odh_storage.dir/sim_disk.cc.o.d"
  "libodh_storage.a"
  "libodh_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/odh_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
