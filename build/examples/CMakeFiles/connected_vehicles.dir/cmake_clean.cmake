file(REMOVE_RECURSE
  "CMakeFiles/connected_vehicles.dir/connected_vehicles.cpp.o"
  "CMakeFiles/connected_vehicles.dir/connected_vehicles.cpp.o.d"
  "connected_vehicles"
  "connected_vehicles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/connected_vehicles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
