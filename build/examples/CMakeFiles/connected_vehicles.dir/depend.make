# Empty dependencies file for connected_vehicles.
# This may be replaced when dependencies are built.
