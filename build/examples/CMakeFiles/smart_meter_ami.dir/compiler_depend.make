# Empty compiler generated dependencies file for smart_meter_ami.
# This may be replaced when dependencies are built.
