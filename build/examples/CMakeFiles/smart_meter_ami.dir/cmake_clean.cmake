file(REMOVE_RECURSE
  "CMakeFiles/smart_meter_ami.dir/smart_meter_ami.cpp.o"
  "CMakeFiles/smart_meter_ami.dir/smart_meter_ami.cpp.o.d"
  "smart_meter_ami"
  "smart_meter_ami.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/smart_meter_ami.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
