# Empty dependencies file for wams_pmu.
# This may be replaced when dependencies are built.
