file(REMOVE_RECURSE
  "CMakeFiles/wams_pmu.dir/wams_pmu.cpp.o"
  "CMakeFiles/wams_pmu.dir/wams_pmu.cpp.o.d"
  "wams_pmu"
  "wams_pmu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wams_pmu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
