file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_td_ingest.dir/bench_fig5_td_ingest.cpp.o"
  "CMakeFiles/bench_fig5_td_ingest.dir/bench_fig5_td_ingest.cpp.o.d"
  "bench_fig5_td_ingest"
  "bench_fig5_td_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_td_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
