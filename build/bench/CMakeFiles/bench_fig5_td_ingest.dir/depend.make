# Empty dependencies file for bench_fig5_td_ingest.
# This may be replaced when dependencies are built.
