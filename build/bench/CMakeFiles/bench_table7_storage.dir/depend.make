# Empty dependencies file for bench_table7_storage.
# This may be replaced when dependencies are built.
