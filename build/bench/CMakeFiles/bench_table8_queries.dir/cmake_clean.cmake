file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_queries.dir/bench_table8_queries.cpp.o"
  "CMakeFiles/bench_table8_queries.dir/bench_table8_queries.cpp.o.d"
  "bench_table8_queries"
  "bench_table8_queries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_queries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
