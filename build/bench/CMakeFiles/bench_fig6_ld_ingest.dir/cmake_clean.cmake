file(REMOVE_RECURSE
  "CMakeFiles/bench_fig6_ld_ingest.dir/bench_fig6_ld_ingest.cpp.o"
  "CMakeFiles/bench_fig6_ld_ingest.dir/bench_fig6_ld_ingest.cpp.o.d"
  "bench_fig6_ld_ingest"
  "bench_fig6_ld_ingest.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_ld_ingest.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
