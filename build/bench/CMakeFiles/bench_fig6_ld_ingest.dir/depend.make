# Empty dependencies file for bench_fig6_ld_ingest.
# This may be replaced when dependencies are built.
