file(REMOVE_RECURSE
  "CMakeFiles/bench_fig7_tags.dir/bench_fig7_tags.cpp.o"
  "CMakeFiles/bench_fig7_tags.dir/bench_fig7_tags.cpp.o.d"
  "bench_fig7_tags"
  "bench_fig7_tags.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_tags.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
