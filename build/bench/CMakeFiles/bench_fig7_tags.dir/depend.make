# Empty dependencies file for bench_fig7_tags.
# This may be replaced when dependencies are built.
