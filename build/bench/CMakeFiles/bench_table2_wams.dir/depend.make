# Empty dependencies file for bench_table2_wams.
# This may be replaced when dependencies are built.
