file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_wams.dir/bench_table2_wams.cpp.o"
  "CMakeFiles/bench_table2_wams.dir/bench_table2_wams.cpp.o.d"
  "bench_table2_wams"
  "bench_table2_wams.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_wams.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
