file(REMOVE_RECURSE
  "CMakeFiles/bench_optimizer_plans.dir/bench_optimizer_plans.cpp.o"
  "CMakeFiles/bench_optimizer_plans.dir/bench_optimizer_plans.cpp.o.d"
  "bench_optimizer_plans"
  "bench_optimizer_plans.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_optimizer_plans.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
