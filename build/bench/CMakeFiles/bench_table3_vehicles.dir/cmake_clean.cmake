file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_vehicles.dir/bench_table3_vehicles.cpp.o"
  "CMakeFiles/bench_table3_vehicles.dir/bench_table3_vehicles.cpp.o.d"
  "bench_table3_vehicles"
  "bench_table3_vehicles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_vehicles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
