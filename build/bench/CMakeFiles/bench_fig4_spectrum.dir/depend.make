# Empty dependencies file for bench_fig4_spectrum.
# This may be replaced when dependencies are built.
